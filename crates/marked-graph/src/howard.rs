//! Howard's policy iteration for the minimum cycle mean of one SCC.
//!
//! Howard's algorithm maintains a *policy* — one chosen out-edge per vertex.
//! The policy graph (n vertices, n edges) contains at least one cycle; each
//! policy cycle is evaluated exactly as a [`Ratio`] `total_weight / length`,
//! and every vertex gets a *bias* `h(v)` measuring how much cheaper its
//! policy path is than the cycle mean predicts. An improvement step then
//! switches any vertex to an out-edge with a strictly smaller attached cycle
//! mean, or — among edges tied on the mean — a strictly smaller reduced
//! weight plus target bias. When no edge improves, the smallest policy-cycle
//! mean is the minimum cycle mean of the SCC.
//!
//! On the sparse strongly-connected graphs LIS models produce, Howard
//! converges in a handful of sweeps, each O(E) with zero allocation, which
//! is why it is the default [`crate::mcm::McmEngine`]. Two properties matter
//! for the rest of the crate:
//!
//! * **Exactness** — cycle means are compared with i128 cross-multiplied
//!   [`Ratio`] arithmetic and biases are kept as exact integer numerators
//!   over the cycle-mean denominator, so the returned mean is bit-identical
//!   to Karp's DP.
//! * **Warm starts** — the converged policy is a plain `Vec<u32>` the caller
//!   may persist. After a small token override (the incremental engine's
//!   bread and butter), re-running from the previous policy usually
//!   terminates in one or two sweeps instead of a full cold solve.
//!
//! Policy iteration's worst case is notoriously hard to bound; as a safety
//! net the solve falls back to Karp's DP if it has not converged after
//! `10·n + 64` improvement rounds. In practice this path is unreachable.

use crate::csr::CsrScc;
use crate::mcm;
use crate::ratio::Ratio;

/// Reusable scratch buffers for [`howard_csr`]. One instance can serve any
/// number of SCCs of any size; buffers grow to the largest component seen
/// and are reused without reallocation afterwards.
#[derive(Debug, Default)]
pub struct HowardScratch {
    /// Cycle-mean numerator attached to each vertex (reduced).
    eta_num: Vec<i64>,
    /// Cycle-mean denominator attached to each vertex (reduced, > 0).
    eta_den: Vec<i64>,
    /// Bias numerator of each vertex, in units of `1 / eta_den[v]`.
    h: Vec<i64>,
    /// Whether the vertex has been evaluated under the current policy.
    done: Vec<bool>,
    /// Generation stamp marking membership in the walk in progress.
    walk_gen: Vec<u32>,
    /// Position of each walk vertex inside `path`.
    path_pos: Vec<u32>,
    /// The walk in progress (local vertex indices).
    path: Vec<u32>,
    /// Current walk generation.
    gen: u32,
}

impl HowardScratch {
    /// Creates an empty scratch; buffers are sized lazily on first solve.
    pub fn new() -> HowardScratch {
        HowardScratch::default()
    }

    fn reset(&mut self, n: usize) {
        self.eta_num.clear();
        self.eta_num.resize(n, 0);
        self.eta_den.clear();
        self.eta_den.resize(n, 1);
        self.h.clear();
        self.h.resize(n, 0);
        self.done.clear();
        self.done.resize(n, false);
        self.walk_gen.clear();
        self.walk_gen.resize(n, 0);
        self.path_pos.clear();
        self.path_pos.resize(n, 0);
        self.path.clear();
        self.gen = 0;
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Minimum cycle mean of `csr` via policy iteration.
///
/// `policy` holds one out-edge index (into the CSR edge slabs) per local
/// vertex. If it carries a valid policy from a previous solve of the same
/// component it is used as the warm start; otherwise it is (re)initialized
/// to each vertex's minimum-weight first out-edge. On return it holds the
/// converged policy, ready to warm-start the next query.
///
/// The caller must guarantee every vertex has at least one outgoing edge
/// (true for any strongly connected component with ≥ 1 edge).
pub fn howard_csr(csr: &CsrScc, scratch: &mut HowardScratch, policy: &mut Vec<u32>) -> Ratio {
    let n = csr.n();
    debug_assert!(n > 0, "howard_csr needs a non-empty SCC");
    let valid_warm_start = policy.len() == n
        && policy
            .iter()
            .enumerate()
            .all(|(v, &e)| csr.out(v).contains(&(e as usize)));
    if !valid_warm_start {
        policy.clear();
        for v in 0..n {
            let range = csr.out(v);
            debug_assert!(!range.is_empty(), "SCC vertex without out-edge");
            let mut best = range.start;
            for e in range {
                if csr.weight(e) < csr.weight(best) {
                    best = e;
                }
            }
            policy.push(best as u32);
        }
    }
    scratch.reset(n);
    let max_rounds = 10 * n + 64;
    for _ in 0..max_rounds {
        evaluate(csr, scratch, policy);
        if !improve(csr, scratch, policy) {
            // Converged: in a strongly connected graph the final candidate
            // means are uniform and equal to the minimum cycle mean.
            debug_assert!((1..n).all(|v| {
                scratch.eta_num[v] == scratch.eta_num[0] && scratch.eta_den[v] == scratch.eta_den[0]
            }));
            return Ratio::new(scratch.eta_num[0], scratch.eta_den[0]);
        }
    }
    // Unreachable in practice; fall back to the DP oracle so callers always
    // get an exact answer.
    mcm::karp_csr(csr)
}

/// Evaluates the current policy: assigns every vertex the mean of the policy
/// cycle it drains into and an exact bias relative to that mean.
fn evaluate(csr: &CsrScc, s: &mut HowardScratch, policy: &[u32]) {
    let n = csr.n();
    for d in s.done.iter_mut() {
        *d = false;
    }
    for start in 0..n {
        if s.done[start] {
            continue;
        }
        // Walk the policy successors until we hit an evaluated vertex or
        // close a cycle inside the current walk.
        s.gen = s.gen.wrapping_add(1);
        if s.gen == 0 {
            // Wrapped: clear stale stamps and restart the generation count.
            for g in s.walk_gen.iter_mut() {
                *g = 0;
            }
            s.gen = 1;
        }
        s.path.clear();
        let mut v = start;
        loop {
            if s.done[v] {
                break;
            }
            if s.walk_gen[v] == s.gen {
                // Closed a new policy cycle at position path_pos[v].
                break;
            }
            s.walk_gen[v] = s.gen;
            s.path_pos[v] = s.path.len() as u32;
            s.path.push(v as u32);
            v = csr.target(policy[v] as usize);
        }
        let tail_start = if s.done[v] {
            s.path.len()
        } else {
            let cpos = s.path_pos[v] as usize;
            // Evaluate the cycle path[cpos..] exactly.
            let mut total: i64 = 0;
            let len = (s.path.len() - cpos) as i64;
            for &u in &s.path[cpos..] {
                total += csr.weight(policy[u as usize] as usize);
            }
            let g = gcd(total, len);
            let (num, den) = (total / g, len / g);
            // Root vertex: bias 0 by convention. Walking the cycle backwards
            // from the root keeps every equation
            //   h(u) = w(u, π(u))·den − num + h(π(u))
            // satisfied; the cycle identity total·den = num·len closes it.
            let root = s.path[cpos] as usize;
            s.eta_num[root] = num;
            s.eta_den[root] = den;
            s.h[root] = 0;
            s.done[root] = true;
            let mut succ_h: i64 = 0;
            for i in (cpos + 1..s.path.len()).rev() {
                let u = s.path[i] as usize;
                succ_h += csr.weight(policy[u] as usize) * den - num;
                s.h[u] = succ_h;
                s.eta_num[u] = num;
                s.eta_den[u] = den;
                s.done[u] = true;
            }
            cpos
        };
        // Back-propagate along the tail path[..tail_start] into `v` (the
        // first already-evaluated vertex, or the cycle root just handled).
        let mut succ = v;
        for i in (0..tail_start).rev() {
            let u = s.path[i] as usize;
            let (num, den) = (s.eta_num[succ], s.eta_den[succ]);
            s.h[u] = csr.weight(policy[u] as usize) * den - num + s.h[succ];
            s.eta_num[u] = num;
            s.eta_den[u] = den;
            s.done[u] = true;
            succ = u;
        }
    }
}

/// One improvement sweep. Phase 1 switches to strictly smaller attached
/// cycle means; only if no mean improves anywhere does phase 2 refine biases
/// among mean-tied edges. Returns whether any policy entry changed.
fn improve(csr: &CsrScc, s: &mut HowardScratch, policy: &mut [u32]) -> bool {
    let mut changed = false;
    // Phase 1: chase strictly smaller cycle means.
    for (v, pol) in policy.iter_mut().enumerate() {
        let mut best_num = s.eta_num[v];
        let mut best_den = s.eta_den[v];
        let mut best_edge = *pol;
        for e in csr.out(v) {
            let t = csr.target(e);
            if (s.eta_num[t] as i128) * (best_den as i128)
                < (best_num as i128) * (s.eta_den[t] as i128)
            {
                best_num = s.eta_num[t];
                best_den = s.eta_den[t];
                best_edge = e as u32;
            }
        }
        if best_edge != *pol {
            *pol = best_edge;
            changed = true;
        }
    }
    if changed {
        return true;
    }
    // Phase 2: means are locally optimal; refine biases among edges whose
    // target shares the vertex's (reduced) mean. Shared mean ⇒ shared
    // denominator, so the reduced weights compare as plain i64.
    for (v, pol) in policy.iter_mut().enumerate() {
        let (num, den) = (s.eta_num[v], s.eta_den[v]);
        let mut best = s.h[v];
        let mut best_edge = *pol;
        for e in csr.out(v) {
            let t = csr.target(e);
            if s.eta_num[t] == num && s.eta_den[t] == den {
                let cand = csr.weight(e) * den - num + s.h[t];
                if cand < best {
                    best = cand;
                    best_edge = e as u32;
                }
            }
        }
        if best_edge != *pol {
            *pol = best_edge;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MarkedGraph;
    use crate::scc::SccDecomposition;

    fn solve(g: &MarkedGraph) -> (Ratio, Vec<u32>) {
        let scc = SccDecomposition::compute(g);
        let comp = scc.component_of(g.transition_ids().next().unwrap());
        let csr = CsrScc::build(g, &scc, comp);
        let mut scratch = HowardScratch::new();
        let mut policy = Vec::new();
        let mean = howard_csr(&csr, &mut scratch, &mut policy);
        (mean, policy)
    }

    #[test]
    fn ring_mean_is_tokens_over_length() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..4).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..4 {
            g.add_place(ts[i], ts[(i + 1) % 4], if i == 0 { 2 } else { 0 });
        }
        assert_eq!(solve(&g).0, Ratio::new(2, 4));
    }

    #[test]
    fn nested_cycles_pick_the_minimum() {
        // Outer 3-cycle with 3 tokens (mean 1), inner 2-cycle with 1 token
        // (mean 1/2): Howard must find 1/2.
        let mut g = MarkedGraph::new();
        let a = g.add_transition("a");
        let b = g.add_transition("b");
        let c = g.add_transition("c");
        g.add_place(a, b, 1);
        g.add_place(b, c, 1);
        g.add_place(c, a, 1);
        g.add_place(b, a, 0);
        assert_eq!(solve(&g).0, Ratio::new(1, 2));
    }

    #[test]
    fn warm_start_reconverges_after_weight_patch() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..5).map(|i| g.add_transition(format!("t{i}"))).collect();
        let mut ring = Vec::new();
        for i in 0..5 {
            ring.push(g.add_place(ts[i], ts[(i + 1) % 5], 1));
        }
        g.add_place(ts[2], ts[0], 1); // chord: 3-cycle with 3 tokens
        let scc = SccDecomposition::compute(&g);
        let comp = scc.component_of(ts[0]);
        let mut csr = CsrScc::build(&g, &scc, comp);
        let mut scratch = HowardScratch::new();
        let mut policy = Vec::new();
        assert_eq!(howard_csr(&csr, &mut scratch, &mut policy), Ratio::ONE);
        let converged = policy.clone();
        // Patch one ring edge's tokens and re-solve from the warm policy.
        let e = csr.places.iter().position(|&p| p == ring[4]).unwrap();
        csr.weights[e] = 6;
        let warm = howard_csr(&csr, &mut scratch, &mut policy);
        // Ring now carries 10 tokens over 5 edges (mean 2); the chord cycle
        // ts[0]→ts[1]→ts[2]→ts[0] carries 3 over 3 (mean 1) and wins.
        assert_eq!(warm, Ratio::ONE);
        // And the warm solve must agree with a cold solve of the same CSR.
        let mut cold_policy = Vec::new();
        assert_eq!(howard_csr(&csr, &mut scratch, &mut cold_policy), Ratio::ONE);
        let _ = converged;
    }

    #[test]
    fn self_loop() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("a");
        g.add_place(a, a, 3);
        assert_eq!(solve(&g).0, Ratio::from_integer(3));
    }

    #[test]
    fn parallel_edges_use_the_lighter_one() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("a");
        let b = g.add_transition("b");
        g.add_place(a, b, 4);
        g.add_place(a, b, 1);
        g.add_place(b, a, 1);
        assert_eq!(solve(&g).0, Ratio::ONE);
    }
}
