//! Hierarchical design: compose subsystems, analyze the whole, repair the
//! cheapest way, and dump a waveform of the result.
//!
//! Run with: `cargo run --example hierarchy`

use lis::core::{ideal_mst, instantiate, practical_mst, to_netlist, LisSystem};
use lis::rsopt::{repair, RepairOptions, RepairPlan};
use lis::sim::{to_vcd, CoreModel, LisSimulator, Passthrough, QueueMode};

/// A reusable subsystem: a two-stage compute cluster whose internal result
/// loops back (think processor + coprocessor with a handshake).
fn cluster() -> LisSystem {
    let mut sys = LisSystem::new();
    let cpu = sys.add_block("cpu");
    let acc = sys.add_block("acc");
    sys.add_channel(cpu, acc);
    sys.add_channel(acc, cpu);
    sys
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Top level: the left cluster feeds the right cluster's cpu from both
    // of its blocks — reconvergent paths (the left cluster's internal loop
    // links them). Floorplanning made the cpu-to-cpu wire long.
    let mut soc = LisSystem::new();
    let left = instantiate(&mut soc, &cluster(), "left");
    let right = instantiate(&mut soc, &cluster(), "right");
    let long_link = soc.add_channel(left.blocks[0], right.blocks[0]);
    soc.add_channel(left.blocks[1], right.blocks[0]);
    soc.add_relay_station(long_link);

    println!("{soc}");
    println!("ideal MST:     {}", ideal_mst(&soc));
    println!("practical MST: {}", practical_mst(&soc));

    // Pick the cheapest repair under default costs.
    let plan = repair(&soc, &RepairOptions::default())?;
    match &plan {
        RepairPlan::NothingToDo => println!("no repair needed"),
        RepairPlan::QueueSizing { cost, .. } => println!("repair: queue sizing, cost {cost}"),
        RepairPlan::Insertion { cost, .. } => println!("repair: insertion, cost {cost}"),
    }
    let mut fixed = soc.clone();
    plan.apply(&mut fixed);
    println!("MST after repair: {}", practical_mst(&fixed));

    // Dump a waveform of the repaired system.
    let cores: Vec<Box<dyn CoreModel>> = fixed
        .block_ids()
        .map(|b| {
            let outs = fixed
                .channel_ids()
                .filter(|&c| fixed.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect();
    let mut sim = LisSimulator::new(&fixed, cores, QueueMode::Finite);
    sim.run(64);
    let vcd = to_vcd(&fixed, &sim);
    let out = std::env::temp_dir().join("lis_hierarchy.vcd");
    std::fs::write(&out, vcd)?;
    println!("waveform written to {} (open with GTKWave)", out.display());

    // And persist the repaired netlist.
    let netlist = std::env::temp_dir().join("lis_hierarchy_fixed.lis");
    std::fs::write(&netlist, to_netlist(&fixed))?;
    println!("repaired netlist written to {}", netlist.display());
    Ok(())
}
