//! Table III — tokens and places per P-block of the NP-completeness gadgets.
//!
//! Audits the Vertex-Cover reduction (Section V): builds a one-edge
//! instance, extracts the four ways a cycle can visit a vertex construct
//! (Fig. 14), and verifies the token/place counts the proof relies on, plus
//! the key cycle means (Figs. 10 and 12).

use lis_bench::Table;
use lis_core::{ideal_mst, practical_mst, LisModel};
use lis_gen::{vc_to_qs, VcInstance};
use marked_graph::Ratio;

fn main() {
    let vc = VcInstance::new(2, [(0, 1)]);
    let red = vc_to_qs(&vc);
    let model = LisModel::doubled(&red.system);
    let g = model.graph();

    // Vertex construct of VC vertex 0: channel v0- -> v0+.
    let vch = red.vertex_channel[0];
    let fwd_vertex = model.forward_places(vch)[0];
    let bk_vertex = model.queue_backedge(vch).expect("doubled model");

    // The edge construct gives vertex 0 its entry (rs -> v0+ on channel
    // v1- -> v0+) and exit (v0- -> rs on channel v0- -> v1+).
    let (uv, vu) = red.edge_channels[0];
    let exit_fwd = model.forward_places(uv)[0]; // v0- -> rs
    let exit_bk = model.backward_places(uv)[0]; // rs -> v0- (2 slots)
    let entry_fwd = model.forward_places(vu)[1]; // rs -> v0+
    let entry_bk = model.backward_places(vu)[1]; // v0+ -> rs (queue slot)

    let tokens = |ps: &[marked_graph::PlaceId]| -> u64 { ps.iter().map(|&p| g.tokens(p)).sum() };

    // P-blocks per Fig. 14. P1: enter v0+ forward, take the vertex
    // backedge, leave v0- forward. P2: the mirror traversal using the relay
    // stations' backedges and the forward vertex edge. P3/P4: bounce off one
    // side only.
    let p1 = vec![entry_fwd, bk_vertex, exit_fwd];
    let p2 = vec![exit_bk, fwd_vertex, entry_bk];
    let p3 = vec![entry_fwd, entry_bk];
    let p4 = vec![exit_bk, exit_fwd];

    let mut t = Table::new(
        "Table III: tokens and places per P-block",
        &["P-block", "tokens", "places", "paper"],
    );
    for (name, places, paper) in [
        ("P1", &p1, "2/3"),
        ("P2", &p2, "4/3"),
        ("P3", &p3, "2/2"),
        ("P4", &p4, "2/2"),
    ] {
        t.row(&[
            name.to_string(),
            tokens(places).to_string(),
            places.len().to_string(),
            paper.to_string(),
        ]);
    }
    t.print();

    println!();
    println!("gadget invariants:");
    println!(
        "  Fig. 10 limit ring pins the ideal MST:      theta(G)    = {} (paper: 5/6)",
        ideal_mst(&red.system)
    );
    println!(
        "  Fig. 12 edge-construct cycle after doubling: theta(d[G]) = {} (paper: 4/6)",
        practical_mst(&red.system)
    );
    let report = lis_qs::solve(
        &red.system,
        lis_qs::Algorithm::Exact,
        &lis_qs::QsConfig::default(),
    )
    .expect("bounded instance");
    println!(
        "  minimal extra tokens = {} == min vertex cover = {}",
        report.total_extra,
        vc.min_cover_size()
    );
    assert_eq!(ideal_mst(&red.system), Ratio::new(5, 6));
    assert_eq!(practical_mst(&red.system), Ratio::new(2, 3));
    assert_eq!(report.total_extra as usize, vc.min_cover_size());
}
