//! Table V — exhaustive insertion of two relay stations into the COFDM SoC.
//!
//! Enumerates all C(30,2) = 435 ways to place two relay stations on
//! distinct channels (at most one per channel, as in the paper), counts how
//! many degrade the throughput, and for those runs the heuristic and the
//! exact solver on both the original and the simplified instance, reporting
//! solution sizes and CPU times. The reported times exclude cycle
//! enumeration, as in the paper; the enumeration time is printed separately.

use std::time::Duration;

use lis_bench::{mean, median, timed, ExpOptions, Table};
use lis_cofdm::cofdm_soc;
use lis_core::{ideal_mst, practical_mst, LisModel};
use lis_qs::{
    exact_solve, extract_instance, heuristic_solve, simplify, verify_solution, Algorithm, QsConfig,
    TdInstance,
};
use marked_graph::cycles::count_elementary_cycles;

struct Stats {
    solution: Vec<f64>,
    time_ms: Vec<f64>,
    timeouts: usize,
}

impl Stats {
    fn new() -> Stats {
        Stats {
            solution: Vec::new(),
            time_ms: Vec::new(),
            timeouts: 0,
        }
    }
}

fn main() {
    let opts = ExpOptions::from_args();
    let soc = cofdm_soc();
    let channels: Vec<_> = soc.system.channel_ids().collect();

    // Cycle-enumeration cost, reported like the paper's "10.5 s".
    let doubled = LisModel::doubled(&soc.system);
    let (n_doubled, enum_time) =
        timed(|| count_elementary_cycles(doubled.graph(), 10_000_000).expect("bounded"));
    println!(
        "doubled-graph cycle census: {} cycles in {:.1} ms (paper: 2896 cycles, 10.5 s in 2008)",
        n_doubled,
        enum_time.as_secs_f64() * 1e3
    );

    let mut degraded = 0usize;
    let mut ideals = Vec::new();
    let mut practicals = Vec::new();
    let mut heur_orig = Stats::new();
    let mut heur_simp = Stats::new();
    let mut exact_orig = Stats::new();
    let mut exact_simp = Stats::new();

    let mut q2_degraded = 0usize;
    let mut total = 0usize;
    for i in 0..channels.len() {
        for j in i + 1..channels.len() {
            total += 1;
            let mut sys = soc.system.clone();
            sys.add_relay_station(channels[i]);
            sys.add_relay_station(channels[j]);
            let ideal = ideal_mst(&sys);
            let practical = practical_mst(&sys);
            if practical >= ideal {
                // Also probe the paper's closing observation: with q = 2
                // uniformly, does any placement degrade?
                continue;
            }
            degraded += 1;
            ideals.push(ideal.to_f64());
            practicals.push(practical.to_f64());

            {
                let mut q2 = sys.clone();
                q2.set_uniform_queue_capacity(2);
                if practical_mst(&q2) < ideal_mst(&q2) {
                    q2_degraded += 1;
                }
            }

            // Build the TD instance once; time solvers separately (cycle
            // enumeration excluded, as in the paper).
            let inst = extract_instance(&sys, 10_000_000).expect("bounded");
            let (td, _labels) = TdInstance::from_qs(&inst);

            let (h, dt) = timed(|| heuristic_solve(&td));
            heur_orig.solution.push(h.total() as f64);
            heur_orig.time_ms.push(dt.as_secs_f64() * 1e3);

            let (hs, dt) = timed(|| {
                let s = simplify(&td);
                s.expand(&heuristic_solve(&s.instance))
            });
            heur_simp.solution.push(hs.total() as f64);
            heur_simp.time_ms.push(dt.as_secs_f64() * 1e3);

            let (e, dt) = timed(|| exact_solve(&td, Some(opts.timeout)));
            if e.optimal {
                exact_orig.solution.push(e.solution.total() as f64);
                exact_orig.time_ms.push(dt.as_secs_f64() * 1e3);
            } else {
                exact_orig.timeouts += 1;
            }

            let (es, dt) = timed(|| {
                let s = simplify(&td);
                let out = exact_solve(&s.instance, Some(opts.timeout));
                (s.expand(&out.solution), out.optimal)
            });
            if es.1 {
                exact_simp.solution.push(es.0.total() as f64);
                exact_simp.time_ms.push(dt.as_secs_f64() * 1e3);
            } else {
                exact_simp.timeouts += 1;
            }

            // Sanity: the heuristic solution restores the throughput.
            let report = lis_qs::solve(
                &sys,
                Algorithm::Heuristic,
                &QsConfig {
                    budget: Some(Duration::from_secs(1)),
                    ..QsConfig::default()
                },
            )
            .expect("bounded");
            assert!(verify_solution(&sys, &report));
        }
    }

    println!(
        "{degraded} of {total} two-station insertions degrade the throughput ({:.0}%); paper: 227 of 435 (52%)",
        100.0 * degraded as f64 / total as f64
    );
    println!(
        "with uniform q = 2, {} insertions degrade (paper: none)",
        q2_degraded
    );
    println!(
        "average ideal throughput {:.2} (paper 0.81); average degraded throughput {:.2} (paper 0.71)",
        mean(&ideals),
        mean(&practicals)
    );
    println!();

    let mut t = Table::new(
        format!(
            "Table V: QS on the degraded insertions (exact timeout {:?}; times exclude cycle enumeration)",
            opts.timeout
        ),
        &[
            "metric",
            "Heuristic Orig.",
            "Heuristic Simplified",
            "Optimal Orig.",
            "Optimal Simp.",
        ],
    );
    t.row(&[
        "Solution (extra tokens)".to_string(),
        format!("{:.2}", mean(&heur_orig.solution)),
        format!("{:.2}", mean(&heur_simp.solution)),
        format!("{:.2}", mean(&exact_orig.solution)),
        format!("{:.2}", mean(&exact_simp.solution)),
    ]);
    t.row(&[
        "Average CPU Time (ms)".to_string(),
        format!("{:.4}", mean(&heur_orig.time_ms)),
        format!("{:.4}", mean(&heur_simp.time_ms)),
        format!("{:.4}", mean(&exact_orig.time_ms)),
        format!("{:.4}", mean(&exact_simp.time_ms)),
    ]);
    t.row(&[
        "Median CPU Time (ms)".to_string(),
        format!("{:.4}", median(&heur_orig.time_ms)),
        format!("{:.4}", median(&heur_simp.time_ms)),
        format!("{:.4}", median(&exact_orig.time_ms)),
        format!("{:.4}", median(&exact_simp.time_ms)),
    ]);
    t.row(&[
        "Timeouts".to_string(),
        heur_orig.timeouts.to_string(),
        heur_simp.timeouts.to_string(),
        exact_orig.timeouts.to_string(),
        exact_simp.timeouts.to_string(),
    ]);
    t.print();
}
