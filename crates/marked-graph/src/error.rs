//! Error types for marked-graph construction and analysis.

use std::error::Error as StdError;
use std::fmt;

use crate::graph::{PlaceId, TransitionId};

/// Errors produced while building or analyzing a marked graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A place or transition id referenced a vertex that does not exist.
    UnknownTransition(TransitionId),
    /// A place id referenced a place that does not exist.
    UnknownPlace(PlaceId),
    /// A cycle with zero tokens was found: the graph deadlocks.
    ///
    /// The payload lists the transitions on one such cycle, in order.
    DeadlockedCycle(Vec<TransitionId>),
    /// Cycle enumeration exceeded the configured bound.
    TooManyCycles {
        /// The configured enumeration limit that was exceeded.
        limit: usize,
    },
    /// An analysis that requires at least one cycle was run on an acyclic graph.
    Acyclic,
    /// An analysis that requires a nonempty graph was run on an empty one.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTransition(t) => write!(f, "unknown transition id {}", t.index()),
            GraphError::UnknownPlace(p) => write!(f, "unknown place id {}", p.index()),
            GraphError::DeadlockedCycle(ts) => write!(
                f,
                "token-free cycle through {} transitions deadlocks the graph",
                ts.len()
            ),
            GraphError::TooManyCycles { limit } => {
                write!(f, "cycle enumeration exceeded the limit of {limit} cycles")
            }
            GraphError::Acyclic => write!(f, "analysis requires a cyclic graph"),
            GraphError::Empty => write!(f, "analysis requires a nonempty graph"),
        }
    }
}

impl StdError for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::UnknownTransition(TransitionId::new(3)).to_string(),
            "unknown transition id 3"
        );
        assert_eq!(
            GraphError::TooManyCycles { limit: 10 }.to_string(),
            "cycle enumeration exceeded the limit of 10 cycles"
        );
        assert!(GraphError::DeadlockedCycle(vec![TransitionId::new(0)])
            .to_string()
            .contains("deadlocks"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<GraphError>();
    }
}
