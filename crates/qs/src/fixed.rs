//! Fixed (uniform) queue sizing — Section IV and Fig. 17 of the paper.
//!
//! Uniform queues trade optimality for simplicity: one parameter instead of
//! one per channel. This module finds the smallest uniform capacity that
//! preserves the ideal MST and computes per-channel *sufficient* capacities
//! (the Lu–Koh "big enough" certificate) from the deficient-cycle analysis.

use lis_core::{conservative_fixed_q, fixed_q_preserves_mst, ChannelId, LisSystem};

use crate::deficit::extract_instance;
use crate::error::QsError;
use crate::td::TdInstance;

/// The smallest uniform queue capacity `q` that makes the practical MST
/// equal the ideal MST.
///
/// Always terminates: `q = r + 1` (total relay stations plus one) is
/// sufficient for any topology (Table II), so the answer lies in
/// `1 ..= r + 1`. Binary search over that range — feasibility is monotone
/// in `q` because adding backedge tokens can only raise cycle means.
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_qs::minimal_uniform_q;
///
/// let (sys, _, _) = figures::fig1();
/// assert_eq!(minimal_uniform_q(&sys), 2);
/// let sys4 = figures::fig2_family(3); // 4 stacked stations
/// assert_eq!(minimal_uniform_q(&sys4), 5);
/// ```
pub fn minimal_uniform_q(sys: &LisSystem) -> u64 {
    let (mut lo, mut hi) = (1u64, conservative_fixed_q(sys));
    debug_assert!(fixed_q_preserves_mst(sys, hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fixed_q_preserves_mst(sys, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Per-channel queue capacities that are *sufficient* to restore the ideal
/// MST: each adjustable channel gets `1 + max deficit` over the deficient
/// cycles through it (the initial assignment of the paper's heuristic,
/// which is feasible by construction); all other channels keep their
/// current capacity.
///
/// This is the certificate behind Lu & Koh's "finite queues can match
/// infinite queues" result: a concrete, polynomially computable bound,
/// generally larger than the optimized solutions of
/// [`solve`](crate::solve).
///
/// # Errors
///
/// Returns [`QsError::TooManyCycles`] if cycle enumeration exceeds
/// `cycle_limit`.
///
/// # Examples
///
/// ```
/// use lis_core::{figures, practical_mst};
/// use lis_qs::sufficient_queue_capacities;
/// use marked_graph::Ratio;
///
/// let (sys, _, lower) = figures::fig1();
/// let caps = sufficient_queue_capacities(&sys, 10_000)?;
/// let mut sized = sys.clone();
/// for (c, q) in caps {
///     sized.set_queue_capacity(c, q)?;
/// }
/// assert_eq!(practical_mst(&sized), Ratio::ONE);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sufficient_queue_capacities(
    sys: &LisSystem,
    cycle_limit: usize,
) -> Result<Vec<(ChannelId, u64)>, QsError> {
    let inst = extract_instance(sys, cycle_limit)?;
    let (td, labels) = TdInstance::from_qs(&inst);
    let caps = labels
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let max_deficit = td
                .set(i)
                .iter()
                .map(|&cy| td.deficit(cy))
                .max()
                .unwrap_or(0);
            (c, sys.queue_capacity(c) + max_deficit)
        })
        .collect();
    Ok(caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;
    use lis_core::{ideal_mst, practical_mst};

    #[test]
    fn minimal_q_on_known_systems() {
        let (fig1, _, _) = figures::fig1();
        assert_eq!(minimal_uniform_q(&fig1), 2);
        let (fig2r, _, _) = figures::fig2_right();
        assert_eq!(minimal_uniform_q(&fig2r), 1); // already balanced
        let (fig15, _) = figures::fig15();
        assert_eq!(minimal_uniform_q(&fig15), 2);
    }

    #[test]
    fn minimal_q_scales_with_stacked_stations() {
        for extra in 0..4u32 {
            let sys = figures::fig2_family(extra);
            assert_eq!(minimal_uniform_q(&sys), u64::from(extra) + 2);
        }
    }

    #[test]
    fn sufficient_capacities_restore_ideal_mst() {
        for sys in [
            figures::fig1().0,
            figures::fig15().0,
            figures::fig2_family(2),
        ] {
            let caps = sufficient_queue_capacities(&sys, 100_000).unwrap();
            let mut sized = sys.clone();
            for (c, q) in caps {
                sized.set_queue_capacity(c, q).unwrap();
            }
            assert_eq!(practical_mst(&sized), ideal_mst(&sys));
        }
    }

    #[test]
    fn sufficient_capacities_empty_when_not_degraded() {
        let (sys, _, _) = figures::fig2_right();
        let caps = sufficient_queue_capacities(&sys, 10_000).unwrap();
        assert!(caps.is_empty());
    }

    #[test]
    fn sufficient_bound_is_never_tighter_than_exact_optimum() {
        let (sys, _) = figures::fig15();
        let caps = sufficient_queue_capacities(&sys, 100_000).unwrap();
        let bound_total: u64 = caps.iter().map(|&(c, q)| q - sys.queue_capacity(c)).sum();
        let exact = crate::solve::solve(
            &sys,
            crate::solve::Algorithm::Exact,
            &crate::solve::QsConfig::default(),
        )
        .unwrap();
        assert!(bound_total >= exact.total_extra);
    }
}
