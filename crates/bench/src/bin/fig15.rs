//! Fig. 15 — the counterexample where relay-station insertion cannot
//! restore the ideal MST, while queue sizing can.
//!
//! Exhaustively searches all placements of up to three additional relay
//! stations (the search is complete for each budget) and contrasts the best
//! achievable throughput with the queue-sizing solution.

use lis_bench::Table;
use lis_core::{figures, ideal_mst, practical_mst};
use lis_qs::{solve, verify_solution, Algorithm, QsConfig};
use lis_rsopt::exhaustive_insertion;

fn main() {
    let (sys, channels) = figures::fig15();
    println!("{}", sys);
    println!(
        "ideal MST theta(G) = {} (paper: 5/6); practical theta(d[G]) = {} (paper: 3/4)",
        ideal_mst(&sys),
        practical_mst(&sys)
    );
    println!();

    let mut t = Table::new(
        "Fig. 15: best practical MST achievable by relay-station insertion",
        &[
            "extra stations",
            "best practical MST",
            "ideal MST after",
            "reaches 5/6?",
        ],
    );
    for budget in 0..=3u32 {
        let best = exhaustive_insertion(&sys, budget);
        t.row(&[
            budget.to_string(),
            best.practical.to_string(),
            best.ideal.to_string(),
            if best.practical >= ideal_mst(&sys) {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    t.print();

    println!();
    println!("why: any station on (A,C) or (C,E) ruins the ideal MST:");
    for (label, idx) in [("(A,C)", 5usize), ("(C,E)", 6usize)] {
        let mut s = sys.clone();
        s.add_relay_station(channels[idx]);
        println!(
            "  +1 station on {label}: ideal MST drops to {}",
            ideal_mst(&s)
        );
    }

    println!();
    let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).expect("bounded instance");
    println!(
        "queue sizing, by contrast, restores theta(d[G]) = {} with {} extra token(s):",
        report.target, report.total_extra
    );
    for (c, w) in &report.extra_tokens {
        println!(
            "  queue of channel {} -> {} grows by {w}",
            sys.block_name(sys.channel_from(*c)),
            sys.block_name(sys.channel_to(*c))
        );
    }
    assert!(verify_solution(&sys, &report));
}
