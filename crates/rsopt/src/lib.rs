//! Relay-station insertion as a throughput optimization (Section VI).
//!
//! Besides fixing wire-delay violations, relay stations can *equalize* the
//! latencies of reconvergent paths (Casu & Macchiarulo), removing the
//! stalls that backpressure causes — the Fig. 2 example gains back its full
//! throughput with one extra station on the lower channel. But the technique
//! is not universal: the paper's Fig. 15 counterexample has no
//! relay-station placement that recovers the ideal MST, because every
//! candidate edge sits on a small cycle whose *ideal* throughput the new
//! station would ruin. (Finding an optimal placement is NP-complete, like
//! queue sizing; the proof lives in the authors' technical report.)
//!
//! This crate provides three tools:
//!
//! * [`equalize_dag`] — exact slack matching for acyclic systems (longest-
//!   path balancing);
//! * [`greedy_insertion`] — iterative best-single-station insertion for
//!   general topologies;
//! * [`exhaustive_insertion`] — optimal placement by enumeration of all
//!   multisets up to a budget (small systems; used to *prove* the Fig. 15
//!   impossibility in tests and to drive the Table V case study).
//!
//! # Examples
//!
//! ```
//! use lis_core::figures;
//! use lis_rsopt::exhaustive_insertion;
//! use marked_graph::Ratio;
//!
//! // Fig. 2: one station on the lower channel restores MST 1.
//! let (sys, _, lower) = figures::fig1();
//! let best = exhaustive_insertion(&sys, 1);
//! assert_eq!(best.practical, Ratio::ONE);
//! assert_eq!(best.placements, vec![(lower, 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod strategy;

pub use strategy::{repair, CostModel, RepairOptions, RepairPlan};

use lis_core::{block_graph, ideal_mst, practical_mst, ChannelId, LisSystem};
use marked_graph::{Ratio, SccDecomposition};

/// The outcome of a relay-station insertion search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertionResult {
    /// Extra stations per channel (only channels that received any).
    pub placements: Vec<(ChannelId, u32)>,
    /// The practical MST `θ(d[G])` after insertion.
    pub practical: Ratio,
    /// The ideal MST `θ(G)` after insertion (insertion can lower it!).
    pub ideal: Ratio,
    /// Total stations inserted.
    pub inserted: u32,
}

/// Applies an insertion result to a system.
pub fn apply_insertion(sys: &mut LisSystem, result: &InsertionResult) {
    for &(c, n) in &result.placements {
        for _ in 0..n {
            sys.add_relay_station(c);
        }
    }
}

fn evaluate(sys: &LisSystem, placements: &[(ChannelId, u32)]) -> InsertionResult {
    let mut s = sys.clone();
    for &(c, n) in placements {
        for _ in 0..n {
            s.add_relay_station(c);
        }
    }
    InsertionResult {
        placements: placements.iter().copied().filter(|&(_, n)| n > 0).collect(),
        practical: practical_mst(&s),
        ideal: ideal_mst(&s),
        inserted: placements.iter().map(|&(_, n)| n).sum(),
    }
}

/// Finds the placement of at most `budget` additional relay stations that
/// maximizes the practical MST, by exhaustive enumeration of all multisets
/// over the channels.
///
/// Ties are broken toward fewer stations, then toward a higher ideal MST.
/// The search space has size `C(channels + budget, budget)`; keep `budget`
/// small.
pub fn exhaustive_insertion(sys: &LisSystem, budget: u32) -> InsertionResult {
    let channels: Vec<ChannelId> = sys.channel_ids().collect();
    let mut best = evaluate(sys, &[]);

    fn rec(
        sys: &LisSystem,
        channels: &[ChannelId],
        idx: usize,
        left: u32,
        current: &mut Vec<(ChannelId, u32)>,
        best: &mut InsertionResult,
    ) {
        if idx == channels.len() {
            let r = evaluate(sys, current);
            let better = (r.practical, std::cmp::Reverse(r.inserted), r.ideal)
                > (best.practical, std::cmp::Reverse(best.inserted), best.ideal);
            if better {
                *best = r;
            }
            return;
        }
        for n in 0..=left {
            if n > 0 {
                current.push((channels[idx], n));
            }
            rec(sys, channels, idx + 1, left - n, current, best);
            if n > 0 {
                current.pop();
            }
        }
    }

    let mut current = Vec::new();
    rec(sys, &channels, 0, budget, &mut current, &mut best);
    best
}

/// Greedy insertion: repeatedly add the single station that most improves
/// the practical MST (never below the current value), up to `budget`
/// stations. Stops early when no single insertion helps.
pub fn greedy_insertion(sys: &LisSystem, budget: u32) -> InsertionResult {
    greedy_frontier(sys, budget)
        .pop()
        .expect("frontier always holds the zero-station prefix")
}

/// Greedy insertion with every intermediate prefix recorded: entry `k` is
/// the greedy placement after exactly `k` stations (entry 0 is the bare
/// system), so the result enumerates the whole budget/throughput trade-off
/// curve in one pass. Stops early when no single insertion helps, giving
/// `1 + min(budget, useful insertions)` entries; the last entry equals
/// [`greedy_insertion`] with the same budget.
///
/// Design-space sweeps use these prefixes as their relay-station axis: each
/// prefix is one station configuration whose queue capacities are then
/// swept independently.
pub fn greedy_frontier(sys: &LisSystem, budget: u32) -> Vec<InsertionResult> {
    let mut current = sys.clone();
    let mut placed: Vec<(ChannelId, u32)> = Vec::new();
    let mut frontier = vec![InsertionResult {
        placements: Vec::new(),
        practical: practical_mst(&current),
        ideal: ideal_mst(&current),
        inserted: 0,
    }];
    let mut inserted = 0;
    while inserted < budget {
        let now = practical_mst(&current);
        let mut best: Option<(ChannelId, Ratio)> = None;
        for c in current.channel_ids() {
            let mut trial = current.clone();
            trial.add_relay_station(c);
            let m = practical_mst(&trial);
            if m > now && best.is_none_or(|(_, b)| m > b) {
                best = Some((c, m));
            }
        }
        let Some((c, _)) = best else { break };
        current.add_relay_station(c);
        match placed.iter_mut().find(|(pc, _)| *pc == c) {
            Some((_, n)) => *n += 1,
            None => placed.push((c, 1)),
        }
        inserted += 1;
        frontier.push(InsertionResult {
            placements: placed.clone(),
            practical: practical_mst(&current),
            ideal: ideal_mst(&current),
            inserted,
        });
    }
    frontier
}

/// Path equalization for acyclic systems (the Casu–Macchiarulo technique,
/// in its provably sufficient form): pads channels so that every pair of
/// reconvergent paths carries the same number of **relay stations**.
///
/// Why relay-station counts and not latencies: in the doubled graph of a
/// DAG, a cycle alternates forward and backward channel traversals; a
/// forward traversal of a channel with `r` stations contributes
/// `tokens − places = −r`, a backward traversal `+r` (with any queue
/// capacity ≥ 1). Assigning each block a potential `φ` — its maximum
/// station count over incoming paths — and padding every channel to
/// `φ(to) − φ(from)` stations makes that sum telescope to zero around
/// *every* cycle, so no cycle mean drops below one and the practical MST is
/// exactly the ideal MST of 1. (Padding by latency instead fails when
/// reconvergent paths have unequal block counts.)
///
/// Returns `None` if the block graph has directed cycles or self-loops
/// (padding an edge on a cycle changes the ideal MST, so DAG-style
/// equalization does not apply — see the Fig. 15 counterexample).
///
/// # Examples
///
/// ```
/// use lis_core::{figures, practical_mst};
/// use lis_rsopt::equalize_dag;
/// use marked_graph::Ratio;
///
/// let (sys, _, _) = figures::fig1();
/// let balanced = equalize_dag(&sys).expect("Fig. 1 is acyclic");
/// assert_eq!(practical_mst(&balanced), Ratio::ONE);
/// ```
pub fn equalize_dag(sys: &LisSystem) -> Option<LisSystem> {
    let g = block_graph(sys);
    let scc = SccDecomposition::compute(&g);
    if scc.count() != sys.block_count() {
        return None; // directed cycle present
    }
    for c in sys.channel_ids() {
        if sys.channel_from(c) == sys.channel_to(c) {
            return None; // self-loop
        }
    }

    // Maximum relay-station count over incoming paths, per block. Tarjan
    // numbers components in reverse topological order, so processing blocks
    // by descending component id visits producers before consumers.
    let n = sys.block_count();
    let mut phi = vec![0u32; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(scc.component_of(marked_graph::TransitionId::new(b))));
    for &b in &order {
        for c in sys.channel_ids() {
            if sys.channel_from(c).index() == b {
                let t = sys.channel_to(c).index();
                phi[t] = phi[t].max(phi[b] + sys.relay_stations_on(c));
            }
        }
    }

    let mut out = sys.clone();
    for c in sys.channel_ids() {
        let u = sys.channel_from(c).index();
        let v = sys.channel_to(c).index();
        let slack = phi[v] - phi[u] - sys.relay_stations_on(c);
        for _ in 0..slack {
            out.add_relay_station(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;

    #[test]
    fn fig2_exhaustive_finds_the_lower_channel() {
        let (sys, _, lower) = figures::fig1();
        let best = exhaustive_insertion(&sys, 2);
        assert_eq!(best.practical, Ratio::ONE);
        // One station suffices; the tie-break prefers fewer.
        assert_eq!(best.inserted, 1);
        assert_eq!(best.placements, vec![(lower, 1)]);
    }

    #[test]
    fn fig2_greedy_matches() {
        let (sys, _, lower) = figures::fig1();
        let best = greedy_insertion(&sys, 2);
        assert_eq!(best.practical, Ratio::ONE);
        assert_eq!(best.placements, vec![(lower, 1)]);
    }

    #[test]
    fn fig15_cannot_be_fixed_by_insertion() {
        // The paper's counterexample: ideal MST 5/6, practical 3/4, and no
        // insertion of up to 3 stations reaches 5/6.
        let (sys, _) = figures::fig15();
        let ideal = ideal_mst(&sys);
        assert_eq!(ideal, Ratio::new(5, 6));
        for budget in 0..=3 {
            let best = exhaustive_insertion(&sys, budget);
            assert!(
                best.practical < ideal,
                "budget {budget} unexpectedly reached {}",
                best.practical
            );
        }
        // ...while queue sizing does fix it (the contrast of Section VI).
        let report =
            lis_qs::solve(&sys, lis_qs::Algorithm::Exact, &lis_qs::QsConfig::default()).unwrap();
        assert!(lis_qs::verify_solution(&sys, &report));
    }

    #[test]
    fn exhaustive_zero_budget_is_identity() {
        let (sys, _, _) = figures::fig1();
        let best = exhaustive_insertion(&sys, 0);
        assert_eq!(best.inserted, 0);
        assert_eq!(best.practical, Ratio::new(2, 3));
        assert!(best.placements.is_empty());
    }

    #[test]
    fn apply_insertion_roundtrip() {
        let (sys, _, _) = figures::fig1();
        let best = exhaustive_insertion(&sys, 1);
        let mut applied = sys.clone();
        apply_insertion(&mut applied, &best);
        assert_eq!(practical_mst(&applied), best.practical);
        assert_eq!(ideal_mst(&applied), best.ideal);
    }

    #[test]
    fn equalize_dag_balances_station_counts_not_latencies() {
        // a -> b -> d (2 block hops) and a -> d directly (1 hop), with one
        // station on the long path. Station-count balancing pads the short
        // channel with exactly one station — even though the resulting
        // latencies (3 vs 2) differ — and fully restores MST 1. Padding to
        // equal *latency* (2 stations) would leave the MST at 5/6.
        let mut sys = LisSystem::new();
        let a = sys.add_block("a");
        let b = sys.add_block("b");
        let d = sys.add_block("d");
        let long1 = sys.add_channel(a, b);
        sys.add_channel(b, d);
        let short = sys.add_channel(a, d);
        // Without relay stations every forward place carries a token, so
        // mismatched path lengths alone cause no degradation.
        assert_eq!(practical_mst(&sys), Ratio::ONE);
        let mut unbalanced = sys.clone();
        unbalanced.add_relay_station(long1);
        assert_eq!(practical_mst(&unbalanced), Ratio::new(3, 4));
        let balanced = equalize_dag(&unbalanced).unwrap();
        assert_eq!(balanced.relay_stations_on(short), 1);
        assert_eq!(practical_mst(&balanced), Ratio::ONE);
        // Latency-style padding (2 stations on the short channel) is worse:
        let mut latency_padded = unbalanced.clone();
        latency_padded.add_relay_station(short);
        latency_padded.add_relay_station(short);
        assert_eq!(practical_mst(&latency_padded), Ratio::new(5, 6));
    }

    #[test]
    fn equalize_dag_rejects_cycles() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("a");
        let b = sys.add_block("b");
        sys.add_channel(a, b);
        sys.add_channel(b, a);
        assert!(equalize_dag(&sys).is_none());
    }

    #[test]
    fn equalize_dag_rejects_self_loops() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("a");
        sys.add_channel(a, a);
        assert!(equalize_dag(&sys).is_none());
    }

    #[test]
    fn equalize_restores_full_mst_when_hop_counts_match() {
        // Two reconvergent paths with the SAME number of blocks (one
        // intermediate each) but different pipelining: equalization fully
        // recovers MST 1 — the Fig. 2 situation, one level bigger.
        let mut sys = LisSystem::new();
        let s = sys.add_block("s");
        let m1 = sys.add_block("m1");
        let m2 = sys.add_block("m2");
        let t = sys.add_block("t");
        let up = sys.add_channel(s, m1);
        sys.add_channel(m1, t);
        sys.add_channel(s, m2);
        sys.add_channel(m2, t);
        sys.add_relay_station(up);
        assert!(practical_mst(&sys) < Ratio::ONE);
        let balanced = equalize_dag(&sys).unwrap();
        assert_eq!(practical_mst(&balanced), Ratio::ONE);
        assert_eq!(ideal_mst(&balanced), Ratio::ONE);
        // Latency was balanced by pipelining one of the lower channels.
        let total_rs = balanced.relay_station_count();
        assert_eq!(total_rs, 2);
    }

    #[test]
    fn equalize_pads_multi_level_dag() {
        // Three parallel paths with 0, 1, and 2 intermediate blocks; the
        // direct channel carries 2 stations. Equalization brings every
        // s-to-t path to 2 stations and restores MST 1.
        let mut sys = LisSystem::new();
        let s = sys.add_block("s");
        let m1 = sys.add_block("m1");
        let m2a = sys.add_block("m2a");
        let m2b = sys.add_block("m2b");
        let t = sys.add_block("t");
        let direct = sys.add_channel(s, t);
        let mid_in = sys.add_channel(s, m1);
        let mid_out = sys.add_channel(m1, t);
        let long_in = sys.add_channel(s, m2a);
        let long_mid = sys.add_channel(m2a, m2b);
        let long_out = sys.add_channel(m2b, t);
        sys.add_relay_station(direct);
        sys.add_relay_station(direct);
        let before = practical_mst(&sys);
        assert!(before < Ratio::ONE);
        let balanced = equalize_dag(&sys).unwrap();
        // Every s-to-t path now carries 2 stations.
        let path_mid = balanced.relay_stations_on(mid_in) + balanced.relay_stations_on(mid_out);
        let path_long = balanced.relay_stations_on(long_in)
            + balanced.relay_stations_on(long_mid)
            + balanced.relay_stations_on(long_out);
        assert_eq!(path_mid, 2);
        assert_eq!(path_long, 2);
        assert_eq!(practical_mst(&balanced), Ratio::ONE);
        assert_eq!(ideal_mst(&balanced), Ratio::ONE);
    }

    #[test]
    fn greedy_never_decreases_practical_mst() {
        let (sys, _) = figures::fig15();
        let before = practical_mst(&sys);
        let r = greedy_insertion(&sys, 3);
        assert!(r.practical >= before);
    }

    #[test]
    fn greedy_frontier_records_every_prefix() {
        let (sys, _, lower) = figures::fig1();
        let frontier = greedy_frontier(&sys, 3);
        // Entry 0 is the bare system; one station fixes Fig. 2, after which
        // nothing helps, so the frontier stops at two entries.
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[0].inserted, 0);
        assert_eq!(frontier[0].practical, Ratio::new(2, 3));
        assert!(frontier[0].placements.is_empty());
        assert_eq!(frontier[1].inserted, 1);
        assert_eq!(frontier[1].practical, Ratio::ONE);
        assert_eq!(frontier[1].placements, vec![(lower, 1)]);
        // The last entry is exactly the greedy_insertion answer, and the
        // practical MST never decreases along the frontier.
        assert_eq!(frontier.last().unwrap(), &greedy_insertion(&sys, 3));
        for pair in frontier.windows(2) {
            assert!(pair[1].practical >= pair[0].practical);
            assert_eq!(pair[1].inserted, pair[0].inserted + 1);
        }
    }
}
