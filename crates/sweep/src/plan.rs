//! Deterministic expansion of a [`SweepSpec`] into a job plan.
//!
//! The plan fixes, up front, the exact set of grid points and their order:
//! groups (relay-station configurations) in specification order, and within
//! each group the cartesian product of the capacity axes with the **last
//! axis varying fastest** (odometer order). Point numbering is global and
//! dense, so a plan of `P` points always yields rows `0..P` in that order —
//! regardless of how many worker threads evaluate them.

use lis_core::{ChannelId, LisSystem};
use lis_rsopt::greedy_frontier;

use crate::spec::{StationGoal, SweepSpec};

/// Hard ceiling on grid points per sweep, so one request cannot pin a
/// worker forever. Validation rejects larger grids up front.
pub const MAX_POINTS: usize = 65_536;

/// Ceiling on per-channel station additions (matches the `/insert` route's
/// budget cap) and on the total greedy budget.
pub const MAX_STATIONS: u32 = 16;

/// Ceiling on any swept queue capacity: large enough for any real design,
/// small enough that token arithmetic stays far from overflow.
pub const MAX_CAPACITY: u64 = 1_000_000;

/// Why a spec cannot be planned against a given base system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An axis or configuration names a channel the netlist does not have.
    UnknownChannel(usize),
    /// Two capacity axes name the same channel.
    DuplicateAxis(usize),
    /// An axis has no values.
    EmptyAxis(usize),
    /// A capacity value is zero or above [`MAX_CAPACITY`].
    BadCapacity(u64),
    /// A station budget or per-channel count exceeds [`MAX_STATIONS`].
    TooManyStations(u32),
    /// No station configurations were given.
    NoConfigs,
    /// The grid would exceed [`MAX_POINTS`].
    TooManyPoints(usize),
    /// The stall axis is malformed (empty, p > 1000, zero trials/cycles,
    /// or an oversized workload).
    BadStallAxis(String),
    /// The burst axis is malformed (same rules as the stall axis, plus the
    /// OFF→ON probability must be in 1..=1000).
    BadBurstAxis(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownChannel(c) => write!(f, "unknown channel index {c}"),
            SweepError::DuplicateAxis(c) => {
                write!(f, "channel {c} appears in more than one capacity axis")
            }
            SweepError::EmptyAxis(c) => write!(f, "capacity axis for channel {c} has no values"),
            SweepError::BadCapacity(v) => {
                write!(f, "queue capacity {v} out of range 1..={MAX_CAPACITY}")
            }
            SweepError::TooManyStations(n) => {
                write!(f, "station count {n} exceeds the cap of {MAX_STATIONS}")
            }
            SweepError::NoConfigs => write!(f, "station configuration list is empty"),
            SweepError::TooManyPoints(n) => {
                write!(f, "grid has {n} points, more than the cap of {MAX_POINTS}")
            }
            SweepError::BadStallAxis(msg) => write!(f, "bad stall axis: {msg}"),
            SweepError::BadBurstAxis(msg) => write!(f, "bad burst axis: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One relay-station configuration with its slice of the point space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Group index (specification order).
    pub group: usize,
    /// Stations added per channel, relative to the base system.
    pub placements: Vec<(ChannelId, u32)>,
    /// Total stations added.
    pub inserted: u32,
    /// Global index of this group's first point.
    pub first_point: usize,
}

/// The expanded, validated job plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    /// Station groups in order.
    pub groups: Vec<GroupPlan>,
    /// Validated capacity axes as `(channel, values)`.
    pub axes: Vec<(ChannelId, Vec<u64>)>,
    /// Points per group (product of axis lengths; 1 when no axes).
    pub points_per_group: usize,
    /// Total grid points.
    pub points: usize,
}

impl SweepPlan {
    /// The capacity assignment of point `local` within its group, in axis
    /// order (odometer: last axis fastest).
    pub fn capacities_at(&self, local: usize) -> Vec<(ChannelId, u64)> {
        debug_assert!(local < self.points_per_group.max(1));
        let mut rem = local;
        let mut out = Vec::with_capacity(self.axes.len());
        // Walk axes right-to-left so the last axis is the fastest digit,
        // then restore axis order.
        for (c, values) in self.axes.iter().rev() {
            let i = rem % values.len();
            rem /= values.len();
            out.push((*c, values[i]));
        }
        out.reverse();
        out
    }
}

/// Validates `spec` against `base` and expands the deterministic plan.
///
/// # Errors
///
/// See [`SweepError`].
pub fn plan(base: &LisSystem, spec: &SweepSpec) -> Result<SweepPlan, SweepError> {
    let n_channels = base.channel_count();
    let channel = |idx: usize| -> Result<ChannelId, SweepError> {
        if idx < n_channels {
            Ok(ChannelId::new(idx))
        } else {
            Err(SweepError::UnknownChannel(idx))
        }
    };

    let mut axes = Vec::with_capacity(spec.capacities.len());
    let mut seen = std::collections::HashSet::new();
    for axis in &spec.capacities {
        let c = channel(axis.channel)?;
        if !seen.insert(axis.channel) {
            return Err(SweepError::DuplicateAxis(axis.channel));
        }
        if axis.values.is_empty() {
            return Err(SweepError::EmptyAxis(axis.channel));
        }
        for &v in &axis.values {
            if v == 0 || v > MAX_CAPACITY {
                return Err(SweepError::BadCapacity(v));
            }
        }
        axes.push((c, axis.values.clone()));
    }
    let points_per_group = axes
        .iter()
        .map(|(_, v)| v.len())
        .try_fold(1usize, |acc, n| {
            acc.checked_mul(n).filter(|&p| p <= MAX_POINTS)
        })
        .ok_or(SweepError::TooManyPoints(usize::MAX))?;

    let configs: Vec<Vec<(ChannelId, u32)>> = match &spec.stations {
        StationGoal::Base => vec![Vec::new()],
        StationGoal::Budget(b) => {
            if *b > MAX_STATIONS {
                return Err(SweepError::TooManyStations(*b));
            }
            greedy_frontier(base, *b)
                .into_iter()
                .map(|r| r.placements)
                .collect()
        }
        StationGoal::Configs(configs) => {
            if configs.is_empty() {
                return Err(SweepError::NoConfigs);
            }
            let mut out = Vec::with_capacity(configs.len());
            for cfg in configs {
                let mut placements = Vec::with_capacity(cfg.len());
                for &(idx, n) in cfg {
                    if n > MAX_STATIONS {
                        return Err(SweepError::TooManyStations(n));
                    }
                    placements.push((channel(idx)?, n));
                }
                out.push(placements);
            }
            out
        }
    };

    if let Some(stalls) = &spec.stalls {
        if stalls.per_mille.is_empty() {
            return Err(SweepError::BadStallAxis("no probabilities".into()));
        }
        if let Some(&p) = stalls.per_mille.iter().find(|&&p| p > 1000) {
            return Err(SweepError::BadStallAxis(format!(
                "probability {p}‰ exceeds 1000‰"
            )));
        }
        if stalls.trials == 0 || stalls.cycles == 0 {
            return Err(SweepError::BadStallAxis(
                "trials and cycles must be positive".into(),
            ));
        }
        if u64::from(stalls.trials) > 4096 || stalls.cycles > 1_000_000 {
            return Err(SweepError::BadStallAxis(
                "at most 4096 trials and 1000000 cycles per point".into(),
            ));
        }
    }

    if let Some(bursts) = &spec.bursts {
        if bursts.off_per_mille.is_empty() {
            return Err(SweepError::BadBurstAxis("no OFF probabilities".into()));
        }
        if let Some(&p) = bursts.off_per_mille.iter().find(|&&p| p > 1000) {
            return Err(SweepError::BadBurstAxis(format!(
                "probability {p}‰ exceeds 1000‰"
            )));
        }
        if bursts.on_per_mille == 0 || bursts.on_per_mille > 1000 {
            return Err(SweepError::BadBurstAxis(
                "OFF→ON probability must be in 1..=1000 per-mille".into(),
            ));
        }
        if bursts.trials == 0 || bursts.cycles == 0 {
            return Err(SweepError::BadBurstAxis(
                "trials and cycles must be positive".into(),
            ));
        }
        if u64::from(bursts.trials) > 4096 || bursts.cycles > 1_000_000 {
            return Err(SweepError::BadBurstAxis(
                "at most 4096 trials and 1000000 cycles per point".into(),
            ));
        }
    }

    let points = points_per_group
        .checked_mul(configs.len())
        .filter(|&p| p <= MAX_POINTS)
        .ok_or_else(|| SweepError::TooManyPoints(points_per_group.saturating_mul(configs.len())))?;

    let groups = configs
        .into_iter()
        .enumerate()
        .map(|(group, placements)| GroupPlan {
            group,
            inserted: placements.iter().map(|&(_, n)| n).sum(),
            placements,
            first_point: group * points_per_group,
        })
        .collect();

    Ok(SweepPlan {
        groups,
        axes,
        points_per_group,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CapacityAxis, StallAxis, SweepMode};
    use lis_core::figures;

    fn axis(channel: usize, values: &[u64]) -> CapacityAxis {
        CapacityAxis {
            channel,
            values: values.to_vec(),
        }
    }

    #[test]
    fn odometer_orders_points_last_axis_fastest() {
        let (sys, _, _) = figures::fig1();
        let mut spec = SweepSpec::analyze();
        spec.capacities = vec![axis(0, &[1, 2]), axis(1, &[1, 2, 3])];
        let p = plan(&sys, &spec).unwrap();
        assert_eq!(p.points, 6);
        assert_eq!(p.points_per_group, 6);
        assert_eq!(p.groups.len(), 1);
        let caps: Vec<Vec<u64>> = (0..6)
            .map(|i| p.capacities_at(i).iter().map(|&(_, v)| v).collect())
            .collect();
        assert_eq!(
            caps,
            vec![
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![2, 1],
                vec![2, 2],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn budget_goal_expands_the_greedy_frontier() {
        let (sys, _, lower) = figures::fig1();
        let mut spec = SweepSpec::analyze();
        spec.stations = StationGoal::Budget(3);
        spec.capacities = vec![axis(1, &[1, 2])];
        let p = plan(&sys, &spec).unwrap();
        // Fig. 1: the frontier is [0 stations, 1 station] (nothing helps
        // after the first), so 2 groups × 2 capacities = 4 points.
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.points, 4);
        assert!(p.groups[0].placements.is_empty());
        assert_eq!(p.groups[1].placements, vec![(lower, 1)]);
        assert_eq!(p.groups[1].first_point, 2);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let (sys, _, _) = figures::fig1();
        let mut spec = SweepSpec::analyze();
        spec.capacities = vec![axis(9, &[1])];
        assert_eq!(
            plan(&sys, &spec).unwrap_err(),
            SweepError::UnknownChannel(9)
        );

        spec.capacities = vec![axis(0, &[1]), axis(0, &[2])];
        assert_eq!(plan(&sys, &spec).unwrap_err(), SweepError::DuplicateAxis(0));

        spec.capacities = vec![axis(0, &[])];
        assert_eq!(plan(&sys, &spec).unwrap_err(), SweepError::EmptyAxis(0));

        spec.capacities = vec![axis(0, &[0])];
        assert_eq!(plan(&sys, &spec).unwrap_err(), SweepError::BadCapacity(0));

        spec.capacities = vec![axis(0, &(1..=600u64).collect::<Vec<_>>()), {
            axis(1, &(1..=600u64).collect::<Vec<_>>())
        }];
        assert!(matches!(
            plan(&sys, &spec).unwrap_err(),
            SweepError::TooManyPoints(_)
        ));

        spec.capacities = Vec::new();
        spec.stations = StationGoal::Budget(99);
        assert_eq!(
            plan(&sys, &spec).unwrap_err(),
            SweepError::TooManyStations(99)
        );

        spec.stations = StationGoal::Configs(Vec::new());
        assert_eq!(plan(&sys, &spec).unwrap_err(), SweepError::NoConfigs);

        spec.stations = StationGoal::Base;
        spec.stalls = Some(StallAxis {
            per_mille: vec![1500],
            trials: 64,
            cycles: 100,
            seed: 0,
        });
        assert!(matches!(
            plan(&sys, &spec).unwrap_err(),
            SweepError::BadStallAxis(_)
        ));
        assert_eq!(spec.mode, SweepMode::Analyze);
    }

    #[test]
    fn empty_axes_give_one_point_per_group() {
        let (sys, _, _) = figures::fig1();
        let spec = SweepSpec::analyze();
        let p = plan(&sys, &spec).unwrap();
        assert_eq!(p.points, 1);
        assert!(p.capacities_at(0).is_empty());
    }
}
