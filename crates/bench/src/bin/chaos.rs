//! Chaos driver for the `lis-server` daemon; records goodput, tail
//! latency, and recovery behavior under deterministic fault injection
//! into `results/chaos.txt`.
//!
//! Three phases, all against in-process daemons on ephemeral ports:
//!
//! 1. **Reference** — a fault-free daemon answers every workload netlist
//!    once; its 200 bodies are the ground truth (analysis is
//!    deterministic and content-addressed, so any later correct answer
//!    must be byte-identical).
//! 2. **Chaos** — a daemon armed with `--spec` (default
//!    `panic:0.05,truncate:0.02,garbage:0.01,slow_read:1ms`) serves the
//!    same workload from `--clients` retrying clients. A request is
//!    **lost** if, after retries, its final outcome is not a 200 with the
//!    reference body. The run also proves schedule determinism: two
//!    plans parsed from the same spec must agree on a decision digest.
//! 3. **Recovery** — `force_panic_burst(2 × workers)` arms a guaranteed
//!    panic streak on the daemon's own plan, then fresh (cache-missing)
//!    requests are driven with a non-retrying prober until one succeeds;
//!    the span from the first post-burst failure to the first success is
//!    the recovery time.
//!
//! Threshold flags (`--max-lost`, `--require-respawns`) turn the binary
//! into a CI gate; `--quick` shrinks the workload and skips the results
//! file.
//!
//! A fourth, opt-in mode (`--store-scenario`, recorded in
//! `results/store_chaos.txt`) SIGKILLs a `lis serve --store` shard
//! *process* and respawns it on the same store directory, gating on the
//! warm-restart hit rate (`--min-warm-hit-rate`, `--max-cold-misses`)
//! and byte identity of the replayed hot set.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lis_core::to_netlist;
use lis_gateway::ChildSpec;
use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use lis_server::wire::{obj, Json};
use lis_server::{
    parse_metric, Client, FaultPlan, RetryPolicy, RetryingClient, Server, ServerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/chaos.txt");
const STORE_OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/store_chaos.txt");

fn netlist(seed: u64) -> String {
    let cfg = GeneratorConfig {
        vertices: 10,
        sccs: 2,
        min_cycles_per_scc: 2,
        relay_stations: 2,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: None,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    to_netlist(&generate(&cfg, &mut rng).system)
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || {
        server.run().expect("daemon run");
    });
    (addr, daemon)
}

fn stop(addr: std::net::SocketAddr, daemon: std::thread::JoinHandle<()>) {
    let mut admin = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(admin.shutdown().expect("shutdown"), 200);
    daemon.join().expect("daemon joined cleanly");
}

fn analyze_body(netlist: &str) -> String {
    obj([("netlist", Json::str(netlist))]).to_string()
}

/// One request's final outcome under chaos: `status == 200` with the
/// reference body means the fault layer was fully absorbed. A transport
/// failure after all retries is recorded as status 0.
struct Outcome {
    index: usize,
    status: u16,
    body: Vec<u8>,
    latency: Duration,
}

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"));
            v.parse()
                .unwrap_or_else(|e| panic!("{name}: {e} (got {v:?})"))
        }
    }
}

/// SIGKILL-and-respawn against a durable store (`--store-scenario`): a
/// `lis serve --store` shard process answers a hot set of designs, dies
/// by SIGKILL, and is respawned on the same store directory. The warm
/// restart must replay the hot set byte-identically *without
/// recomputing*: the gate demands a warm hit rate (RAM hits after the
/// startup warm load, plus disk hits) of at least `--min-warm-hit-rate`
/// (default 0.9) and at most `--max-cold-misses` recomputations
/// (default 0). Requires `target/release/lis` (or `$LIS_BIN`).
#[allow(clippy::too_many_lines)]
fn store_scenario(args: &[String], quick: bool) {
    let hot: usize = arg(args, "--store-requests", if quick { 12 } else { 40 });
    let min_rate: f64 = arg(args, "--min-warm-hit-rate", 0.9);
    let max_cold: u64 = arg(args, "--max-cold-misses", 0);

    let binary = std::env::var("LIS_BIN").map_or_else(
        |_| {
            std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/release/lis"
            ))
        },
        std::path::PathBuf::from,
    );
    let root = std::env::temp_dir().join(format!("lis-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let spec = ChildSpec {
        program: binary,
        workers: 2,
        queue_capacity: 256,
        cache_capacity: hot * 2,
        store_dir: Some(root.clone()),
    };

    let fetch = |addr: std::net::SocketAddr, name: &str| -> f64 {
        let mut client = Client::connect(addr).expect("connect shard");
        let metrics = client.metrics().expect("shard metrics");
        parse_metric(&metrics, name).unwrap_or(0.0)
    };

    // Cold pass: every design computed once, answers recorded as the
    // byte-identity reference, each spilled to the store as it lands.
    eprintln!("store scenario: cold pass ({hot} designs)");
    let workload: Vec<String> = (0..hot as u64)
        .map(|i| analyze_body(&netlist(5_000_000 + i)))
        .collect();
    let mut shard = spec.spawn("store-0").expect(
        "spawn lis shard (build it first: cargo build --release -p lis-cli, or set $LIS_BIN)",
    );
    let reference: Vec<Vec<u8>> = {
        let mut client = Client::connect(shard.addr).expect("connect shard");
        workload
            .iter()
            .map(|body| {
                let resp = client
                    .request("POST", "/analyze", body.as_bytes())
                    .expect("cold request");
                assert_eq!(resp.status, 200, "cold pass must be fault-free");
                resp.body
            })
            .collect()
    };
    // Wait for the write-through spills to catch up with the answers:
    // the counter (and the final fsync) trail the response by a worker
    // hop, and the kill must land *after* durability, not race it.
    let spills = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let spills = fetch(shard.addr, "lis_store_spills_total");
            if spills >= hot as f64 || Instant::now() > deadline {
                break spills;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // The crash: SIGKILL, no drain, no warning — then a respawn that
    // reopens the same store directory.
    eprintln!("store scenario: SIGKILL pid {} and respawn", shard.pid());
    shard.kill();
    drop(shard);
    let mut shard = spec.spawn("store-0").expect("respawn lis shard");
    let warm_loaded = fetch(shard.addr, "lis_store_warm_loaded_total");

    // Replay: byte-identical answers, served warm.
    let mismatches = {
        let mut client = Client::connect(shard.addr).expect("connect respawned shard");
        workload
            .iter()
            .zip(&reference)
            .filter(|(body, expected)| {
                let resp = client
                    .request("POST", "/analyze", body.as_bytes())
                    .expect("replay request");
                resp.status != 200 || &resp.body != *expected
            })
            .count()
    };
    let hits = fetch(shard.addr, "lis_cache_hits_total");
    let misses = fetch(shard.addr, "lis_cache_misses_total");
    let disk_hits = fetch(shard.addr, "lis_store_disk_hits_total");
    let warm_rate = (hits + disk_hits) / hot as f64;
    let cold_misses = (misses - disk_hits).max(0.0) as u64;
    shard.stop();

    let mut report = String::new();
    writeln!(
        report,
        "lis-server store chaos run (SIGKILL + warm restart)\n\
         ===================================================\n\
         workload: {hot} distinct designs on /analyze against one `lis serve\n\
         --store` shard process; the shard is SIGKILLed after the cold pass\n\
         and respawned on the same store directory, then the hot set is\n\
         replayed once. Every replayed answer must be byte-identical to the\n\
         cold answer and must come from the warm-loaded store, not a\n\
         recomputation.\n\
         Regenerate with:\n\
         \x20   cargo build --release && \\\n\
         \x20   cargo run --release -p lis-bench --bin chaos -- --store-scenario\n",
    )
    .expect("write to String");
    writeln!(
        report,
        "cold answers spilled:   {spills:>6.0} / {hot}\n\
         warm-loaded on respawn: {warm_loaded:>6.0}\n\
         replay byte mismatches: {mismatches:>6}\n\
         replay cache hits:      {hits:>6.0}\n\
         replay disk hits:       {disk_hits:>6.0}\n\
         replay cold misses:     {cold_misses:>6}\n\
         warm hit rate:          {:>6.1} %  (gate: >= {:.1} %)",
        warm_rate * 100.0,
        min_rate * 100.0,
    )
    .expect("write to String");

    if !quick {
        std::fs::write(STORE_OUT_PATH, &report).expect("write results/store_chaos.txt");
        eprintln!("wrote {STORE_OUT_PATH}");
    }
    print!("{report}");

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} replayed answer(s) diverged from the cold reference");
        failed = true;
    }
    if warm_rate < min_rate {
        eprintln!(
            "FAIL: warm hit rate {:.3} below the required {min_rate:.3}",
            warm_rate
        );
        failed = true;
    }
    if cold_misses > max_cold {
        eprintln!("FAIL: {cold_misses} cold recomputation(s), more than the allowed {max_cold}");
        failed = true;
    }
    let _ = std::fs::remove_dir_all(&root);
    if failed {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--store-scenario") {
        store_scenario(&args, quick);
        return;
    }
    let requests: usize = arg(&args, "--requests", if quick { 200 } else { 500 });
    let clients: usize = arg(&args, "--clients", 4);
    let workers: usize = arg(&args, "--workers", 4);
    let seed: u64 = arg(&args, "--seed", 42);
    let spec: String = arg(
        &args,
        "--spec",
        format!("panic:0.05,truncate:0.02,garbage:0.01,slow_read:1ms,seed:{seed}"),
    );
    let max_lost: u64 = arg(&args, "--max-lost", 0);
    let require_respawns = args.iter().any(|a| a == "--require-respawns");

    // Distinct netlists: every request is a cache miss on first contact,
    // so every request reaches the worker pool and draws from the
    // injected-panic site.
    let workload: Arc<Vec<String>> = Arc::new((0..requests as u64).map(netlist).collect());

    // Schedule determinism: two plans parsed from one spec must agree on
    // every decision. The digest also goes into the report so two full
    // runs of the bench can be compared byte-for-byte.
    let digest = FaultPlan::parse(&spec)
        .expect("fault spec")
        .schedule_digest(1 << 16);
    assert_eq!(
        digest,
        FaultPlan::parse(&spec)
            .expect("fault spec")
            .schedule_digest(1 << 16),
        "two plans from one spec must produce identical fault schedules"
    );

    // Phase 1: fault-free reference run records the expected bodies.
    eprintln!("phase 1: fault-free reference run ({requests} requests)");
    let expected: Vec<Vec<u8>> = {
        let (addr, daemon) = start(ServerConfig {
            workers,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect");
        let bodies = workload
            .iter()
            .map(|n| {
                let resp = client
                    .request("POST", "/analyze", analyze_body(n).as_bytes())
                    .expect("reference request");
                assert_eq!(resp.status, 200, "reference run must be fault-free");
                resp.body
            })
            .collect();
        stop(addr, daemon);
        bodies
    };

    // Phase 2: the same workload against a fault-injected daemon. The
    // plan Arc is shared with the daemon so phase 3 can arm a burst.
    eprintln!("phase 2: chaos run under spec {spec:?}");
    let plan = Arc::new(FaultPlan::parse(&spec).expect("fault spec"));
    let (addr, daemon) = start(ServerConfig {
        workers,
        faults: Some(Arc::clone(&plan)),
        ..ServerConfig::default()
    });
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let chaos_started = Instant::now();
    let retries_spent: u64 = {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let workload = Arc::clone(&workload);
                let outcomes = Arc::clone(&outcomes);
                std::thread::spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        seed: c as u64,
                        ..RetryPolicy::default()
                    };
                    let mut client = RetryingClient::connect(addr, policy).expect("connect");
                    // Requests are striped across clients.
                    for i in (c..workload.len()).step_by(clients.max(1)) {
                        let body = analyze_body(&workload[i]);
                        let started = Instant::now();
                        let outcome = match client.request("POST", "/analyze", body.as_bytes()) {
                            Ok(resp) => Outcome {
                                index: i,
                                status: resp.status,
                                body: resp.body,
                                latency: started.elapsed(),
                            },
                            Err(_) => Outcome {
                                index: i,
                                status: 0,
                                body: Vec::new(),
                                latency: started.elapsed(),
                            },
                        };
                        outcomes.lock().expect("outcomes lock").push(outcome);
                    }
                    client.retries_used()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client"))
            .sum()
    };
    let chaos_elapsed = chaos_started.elapsed();

    let (lost, transport_failures, p50, p99) = {
        let outcomes = outcomes.lock().expect("outcomes lock");
        let mut lost = 0u64;
        let mut transport_failures = 0u64;
        for o in outcomes.iter() {
            if o.status == 0 {
                transport_failures += 1;
                lost += 1;
            } else if o.status != 200 || o.body != expected[o.index] {
                lost += 1;
            }
        }
        let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
        latencies.sort_unstable();
        let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
        (lost, transport_failures, pick(0.50), pick(0.99))
    };
    let answered = requests as u64 - lost;
    let goodput = answered as f64 / chaos_elapsed.as_secs_f64().max(1e-9);

    // Phase 3: recovery after a guaranteed panic burst. Fresh netlists
    // (cache misses) ensure the burst is consumed by real jobs; a
    // non-retrying prober observes the raw failure streak.
    eprintln!("phase 3: forced panic burst ({} jobs)", 2 * workers);
    plan.force_panic_burst(2 * workers as u64);
    let recovery_ms = {
        let mut prober = RetryingClient::connect(addr, RetryPolicy::none()).expect("connect");
        let mut first_failure: Option<Instant> = None;
        let mut recovery = None;
        for i in 0..10_000u64 {
            let fresh = netlist(9_000_000 + i);
            let body = analyze_body(&fresh);
            let ok = matches!(
                prober.request("POST", "/analyze", body.as_bytes()),
                Ok(resp) if resp.status == 200
            );
            match (ok, first_failure) {
                (false, None) => first_failure = Some(Instant::now()),
                (true, Some(at)) => {
                    recovery = Some(at.elapsed());
                    break;
                }
                _ => {}
            }
        }
        recovery.map(|d| d.as_secs_f64() * 1e3)
    };

    let mut admin = Client::connect(addr).expect("connect");
    let exposition = admin.metrics().expect("metrics");
    let panics = parse_metric(&exposition, "lis_worker_panics_total").unwrap_or(0.0);
    let respawns = parse_metric(&exposition, "lis_worker_respawns_total").unwrap_or(0.0);
    let injected = parse_metric(&exposition, "lis_faults_injected_total").unwrap_or(0.0);
    stop(addr, daemon);

    let mut report = String::new();
    writeln!(
        report,
        "lis-server chaos run\n\
         ====================\n\
         fault spec: {spec}\n\
         schedule digest (64k draws): {digest:#018x}  [identical across runs of this seed]\n\
         workload: {requests} distinct netlists on /analyze, {clients} retrying client(s),\n\
         {workers} worker(s). Reference bodies come from a fault-free daemon; a request\n\
         counts as lost only if its final outcome differs from the reference.\n\
         Regenerate with:\n\
         \x20   cargo run --release -p lis-bench --bin chaos\n",
    )
    .expect("write to String");
    writeln!(
        report,
        "answered identically: {answered:>8} / {requests}\n\
         lost requests:        {lost:>8}   (transport-level: {transport_failures})\n\
         retries spent:        {retries_spent:>8}\n\
         goodput:              {goodput:>8.0} req/s under chaos\n\
         latency p50 / p99:    {:>8.2} ms / {:.2} ms\n\
         worker panics:        {panics:>8.0}\n\
         worker respawns:      {respawns:>8.0}\n\
         faults injected:      {injected:>8.0}\n\
         recovery after burst: {}",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        recovery_ms.map_or(
            "n/a (burst absorbed without a visible failure)".to_string(),
            |ms| format!("{ms:.1} ms (first failure -> next success)"),
        ),
    )
    .expect("write to String");

    if !quick {
        std::fs::write(OUT_PATH, &report).expect("write results/chaos.txt");
        eprintln!("wrote {OUT_PATH}");
    }
    print!("{report}");

    let mut failed = false;
    if lost > max_lost {
        eprintln!("FAIL: {lost} lost request(s), more than the allowed {max_lost}");
        failed = true;
    }
    if require_respawns && respawns < 1.0 {
        eprintln!("FAIL: no worker respawns recorded; fault injection never fired");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
