//! Export of queue-sizing instances as integer linear programs.
//!
//! The prior work the paper compares against (Lu & Koh) solves queue sizing
//! with mixed integer linear programming. The paper deliberately forgoes
//! MILP, but the formulation over enumerated cycles is a one-liner per
//! constraint, and exporting it lets users cross-check this crate's solvers
//! against any external ILP solver (CPLEX, Gurobi, HiGHS, SCIP — all read
//! the LP file format written here):
//!
//! ```text
//! minimize    Σ x_e                 (total extra queue slots)
//! subject to  Σ_{e ∈ adjustable(c)} x_e ≥ deficit(c)   for each deficient cycle c
//!             x_e ≥ 0, integer
//! ```

use std::fmt::Write as _;

use lis_core::{ChannelId, LisSystem};

use crate::deficit::QsInstance;
use crate::td::TdInstance;

/// Renders the ILP for a queue-sizing instance in the LP file format.
///
/// Variable `x_c<i>` is the number of extra slots on channel `i`; one
/// constraint per deficient cycle. When `sys` is provided, each variable
/// carries a comment naming the channel's endpoints.
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_qs::{extract_instance, to_lp};
///
/// let (sys, _, _) = figures::fig1();
/// let inst = extract_instance(&sys, 10_000)?;
/// let lp = to_lp(&inst, Some(&sys));
/// assert!(lp.starts_with("\\ queue sizing"));
/// assert!(lp.contains("Minimize"));
/// assert!(lp.contains("cycle0: x_c1 >= 1"));
/// assert!(lp.contains("General"));
/// # Ok::<(), lis_qs::QsError>(())
/// ```
pub fn to_lp(inst: &QsInstance, sys: Option<&LisSystem>) -> String {
    let (td, labels) = TdInstance::from_qs(inst);
    to_lp_from_td(&td, &labels, sys)
}

/// Renders an abstract Token Deficit instance as an LP, with `labels`
/// naming the channel behind each set.
pub fn to_lp_from_td(td: &TdInstance, labels: &[ChannelId], sys: Option<&LisSystem>) -> String {
    assert_eq!(labels.len(), td.set_count(), "one label per set");
    let var = |i: usize| format!("x_c{}", labels[i].index());

    let mut out = String::new();
    out.push_str("\\ queue sizing as an integer linear program\n");
    out.push_str("\\ variables: extra slots per shell input queue\n");
    if let Some(sys) = sys {
        for (i, &c) in labels.iter().enumerate() {
            let _ = writeln!(
                out,
                "\\ {} = queue of channel {} -> {}",
                var(i),
                sys.block_name(sys.channel_from(c)),
                sys.block_name(sys.channel_to(c))
            );
        }
    }
    out.push_str("Minimize\n obj:");
    if td.set_count() == 0 {
        out.push_str(" 0 x_none");
    }
    for i in 0..td.set_count() {
        if i > 0 {
            out.push_str(" +");
        }
        let _ = write!(out, " {}", var(i));
    }
    out.push_str("\nSubject To\n");
    let mut emitted = 0usize;
    for c in 0..td.cycle_count() {
        if td.deficit(c) == 0 {
            continue;
        }
        let _ = write!(out, " cycle{emitted}:");
        let mut first = true;
        for (i, _) in labels.iter().enumerate() {
            if td.set(i).contains(&c) {
                if !first {
                    out.push_str(" +");
                }
                let _ = write!(out, " {}", var(i));
                first = false;
            }
        }
        let _ = writeln!(out, " >= {}", td.deficit(c));
        emitted += 1;
    }
    if emitted == 0 {
        out.push_str(" trivially: 0 x_none >= 0\n");
    }
    out.push_str("General\n");
    for i in 0..td.set_count() {
        let _ = writeln!(out, " {}", var(i));
    }
    out.push_str("End\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deficit::extract_instance;
    use lis_core::figures;

    #[test]
    fn fig1_lp_structure() {
        let (sys, _, lower) = figures::fig1();
        let inst = extract_instance(&sys, 10_000).unwrap();
        let lp = to_lp(&inst, Some(&sys));
        // One variable (the lower channel), one constraint, integer section.
        assert!(lp.contains(&format!("x_c{}", lower.index())));
        assert!(lp.contains("cycle0:"));
        assert!(!lp.contains("cycle1:"));
        assert!(lp.contains(">= 1"));
        assert!(lp.contains("A -> B"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn table6_lp_has_six_constraints() {
        let soc = lis_cofdm_like();
        let inst = extract_instance(&soc, 1_000_000).unwrap();
        let lp = to_lp(&inst, None);
        let constraints = lp.matches("cycle").count();
        assert_eq!(constraints, inst.cycles.len());
    }

    /// A local stand-in with several deficient cycles (avoid a cyclic dev
    /// dependency on `lis-cofdm`): the Fig. 15 system.
    fn lis_cofdm_like() -> lis_core::LisSystem {
        figures::fig15().0
    }

    #[test]
    fn non_degraded_instance_exports_trivial_lp() {
        let (sys, _, _) = figures::fig2_right();
        let inst = extract_instance(&sys, 10_000).unwrap();
        let lp = to_lp(&inst, Some(&sys));
        assert!(lp.contains("trivially"));
        assert!(lp.contains("Minimize"));
    }

    #[test]
    fn lp_solution_bound_matches_exact_solver() {
        // Parse our own LP back (lightweight check): the number of
        // constraints equals the deficient cycle count, and solving the TD
        // instance exactly satisfies every emitted constraint.
        let (sys, _) = figures::fig15();
        let inst = extract_instance(&sys, 10_000).unwrap();
        let (td, labels) = TdInstance::from_qs(&inst);
        let lp = to_lp_from_td(&td, &labels, Some(&sys));
        let exact = crate::exact::exact_solve(&td, None);
        assert!(td.is_feasible(&exact.solution.weights));
        // Each constraint line mentions at least one variable.
        for line in lp.lines().filter(|l| l.trim_start().starts_with("cycle")) {
            assert!(line.contains("x_c"), "{line}");
            assert!(line.contains(">="), "{line}");
        }
    }

    #[test]
    #[should_panic(expected = "one label per set")]
    fn label_arity_checked() {
        let td = TdInstance::new(vec![1], vec![vec![0]]);
        let _ = to_lp_from_td(&td, &[], None);
    }
}
