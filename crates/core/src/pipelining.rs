//! Multi-cycle (pipelined) cores — the paper's footnote 3.
//!
//! A core with pipeline latency `L > 1` (a three-stage multiplier, say)
//! takes `L` periods from consuming inputs to presenting outputs, while
//! accepting new inputs every period. At the protocol level this is the
//! original shell followed by `L − 1` stages that hold *void* at reset —
//! modeled by chaining the block with `L − 1`
//! [uninitialized blocks](crate::LisSystem::add_uninitialized_block) whose
//! stage-to-stage queues have capacity **two**.
//!
//! Why two slots and not one: under the protocol's registered stop signals,
//! a single-slot elastic stage is a *half-buffer* — it alternates
//! accept/stall and caps the sustainable rate at 1/2. Two slots per stage
//! (the same reason relay stations have a main *and* an auxiliary register)
//! restore full rate. The resulting model is the slack-elastic variant of a
//! pipelined core: it has the exact latency, rate, and reset (void)
//! behavior, plus one extra item of elasticity per stage relative to a
//! rigidly clock-gated pipeline.
//!
//! [`expand_block_latency`] performs that rewrite, so every analysis in
//! this workspace (MST, topology, queue sizing, both simulators) applies
//! unchanged to systems with multi-cycle cores.

use crate::system::{BlockId, ChannelId, LisSystem};

/// Result of a latency expansion.
#[derive(Debug, Clone)]
pub struct LatencyExpansion {
    /// The rewritten system.
    pub system: LisSystem,
    /// The pipeline-stage blocks inserted after the expanded block,
    /// upstream first (empty when `latency == 1`).
    pub stages: Vec<BlockId>,
    /// For each original channel, its id in the rewritten system (ids are
    /// preserved for existing channels; the stage-chain channels are new).
    pub channel_map: Vec<ChannelId>,
}

/// Rewrites `sys` so that block `b` has pipeline latency `latency`: its
/// outputs are routed through `latency − 1` uninitialized two-slot stages
/// (see the module docs for why two slots).
///
/// The stage chain is shared by all of `b`'s output channels (one pipeline,
/// many consumers), matching a real multi-output pipelined core.
///
/// # Panics
///
/// Panics if `latency` is zero or `b` is out of range.
///
/// # Examples
///
/// A latency-3 core inside a feedback loop throttles it to 2 tokens over
/// 4 places — pipeline registers in loops cost throughput that no buffer
/// can restore:
///
/// ```
/// use lis_core::{expand_block_latency, ideal_mst, practical_mst, LisSystem};
/// use marked_graph::Ratio;
///
/// let mut sys = LisSystem::new();
/// let a = sys.add_block("A");
/// let b = sys.add_block("B");
/// sys.add_channel(a, b);
/// sys.add_channel(b, a);
/// assert_eq!(ideal_mst(&sys), Ratio::ONE);
///
/// let expanded = expand_block_latency(&sys, a, 3);
/// assert_eq!(ideal_mst(&expanded.system), Ratio::new(2, 4));
/// assert_eq!(practical_mst(&expanded.system), Ratio::new(1, 2));
/// ```
pub fn expand_block_latency(sys: &LisSystem, b: BlockId, latency: u32) -> LatencyExpansion {
    assert!(latency >= 1, "latency must be at least one period");
    sys.check_block(b).expect("block exists");

    let mut out = LisSystem::new();
    // Copy blocks verbatim (ids preserved).
    for ob in sys.block_ids() {
        if sys.is_initialized(ob) {
            out.add_block(sys.block_name(ob));
        } else {
            out.add_uninitialized_block(sys.block_name(ob));
        }
    }
    // Stage chain after `b`.
    let stages: Vec<BlockId> = (1..latency)
        .map(|i| out.add_uninitialized_block(format!("{}/stage{}", sys.block_name(b), i)))
        .collect();
    let tail = *stages.last().unwrap_or(&b);

    // Copy channels; outputs of `b` re-source from the chain tail.
    let channel_map: Vec<ChannelId> = sys
        .channel_ids()
        .map(|c| {
            let from = if sys.channel_from(c) == b {
                tail
            } else {
                sys.channel_from(c)
            };
            let nc = out.add_channel(from, sys.channel_to(c));
            for _ in 0..sys.relay_stations_on(c) {
                out.add_relay_station(nc);
            }
            out.set_queue_capacity(nc, sys.queue_capacity(c))
                .expect("positive capacity");
            nc
        })
        .collect();

    // Wire the chain: b -> stage1 -> ... -> stage(L-1). Two-slot queues:
    // single-slot stages would halve the sustainable rate (half-buffer
    // effect); two slots make each stage a computing relay station.
    let mut prev = b;
    for &s in &stages {
        let ch = out.add_channel(prev, s);
        out.set_queue_capacity(ch, 2).expect("capacity 2 is valid");
        prev = s;
    }

    LatencyExpansion {
        system: out,
        stages,
        channel_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::mst::{ideal_mst, practical_mst};
    use marked_graph::Ratio;

    #[test]
    fn latency_one_is_identity_modulo_ids() {
        let (sys, _, _) = figures::fig1();
        let e = expand_block_latency(&sys, BlockId::new(0), 1);
        assert!(e.stages.is_empty());
        assert_eq!(e.system.block_count(), sys.block_count());
        assert_eq!(e.system.channel_count(), sys.channel_count());
        assert_eq!(practical_mst(&e.system), practical_mst(&sys));
    }

    #[test]
    fn uninitialized_two_slot_block_equals_relay_station() {
        // A -> X -> B where X is an uninitialized pass-through with q = 2
        // must have exactly the throughput of A -> rs -> B.
        let mut with_block = LisSystem::new();
        let a1 = with_block.add_block("A");
        let x = with_block.add_uninitialized_block("X");
        let b1 = with_block.add_block("B");
        let ax = with_block.add_channel(a1, x);
        with_block.add_channel(x, b1);
        with_block.add_channel(a1, b1); // the Fig. 1 lower channel
        with_block.set_queue_capacity(ax, 2).unwrap();

        let (with_rs, _, _) = figures::fig1();
        assert_eq!(ideal_mst(&with_block), ideal_mst(&with_rs));
        assert_eq!(practical_mst(&with_block), practical_mst(&with_rs));
        assert_eq!(practical_mst(&with_block), Ratio::new(2, 3));
    }

    #[test]
    fn pipelined_core_in_a_loop_throttles_it() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        sys.add_channel(a, b);
        sys.add_channel(b, a);
        for latency in 1..=4u32 {
            let e = expand_block_latency(&sys, a, latency);
            // Loop: 2 initialized shells over (2 + latency - 1) places.
            let expected = Ratio::new(2, 2 + i64::from(latency) - 1);
            assert_eq!(
                ideal_mst(&e.system),
                expected.min(Ratio::ONE),
                "L={latency}"
            );
        }
    }

    #[test]
    fn feed_forward_pipelining_costs_nothing_alone() {
        // A pipelined core in a DAG only adds latency, not throughput loss.
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        sys.add_channel(a, b);
        let e = expand_block_latency(&sys, a, 4);
        assert_eq!(ideal_mst(&e.system), Ratio::ONE);
        assert_eq!(practical_mst(&e.system), Ratio::ONE);
    }

    #[test]
    fn pipelined_core_on_one_reconvergent_path_degrades_and_qs_fixes() {
        // Fig. 2's story with a pipelined core instead of a relay station:
        // A -> M(latency 2) -> B and A -> B directly.
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let m = sys.add_block("M");
        let b = sys.add_block("B");
        sys.add_channel(a, m);
        sys.add_channel(m, b);
        sys.add_channel(a, b);
        let e = expand_block_latency(&sys, m, 2);
        assert_eq!(ideal_mst(&e.system), Ratio::ONE);
        let degraded = practical_mst(&e.system);
        assert!(degraded < Ratio::ONE);
        // One extra slot on the direct channel repairs it, like Fig. 6.
        let mut fixed = e.system.clone();
        fixed.grow_queue(e.channel_map[2], 1);
        assert_eq!(practical_mst(&fixed), Ratio::ONE);
    }

    #[test]
    fn multi_output_blocks_share_the_stage_chain() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        sys.add_channel(a, b);
        sys.add_channel(a, c);
        let e = expand_block_latency(&sys, a, 3);
        assert_eq!(e.stages.len(), 2);
        // Both consumers hang off the single chain tail.
        let tail = *e.stages.last().expect("two stages");
        let consumers: Vec<_> = e
            .system
            .channel_ids()
            .filter(|&ch| e.system.channel_from(ch) == tail)
            .map(|ch| e.system.channel_to(ch))
            .collect();
        assert_eq!(consumers.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_latency_panics() {
        let (sys, _, _) = figures::fig1();
        let _ = expand_block_latency(&sys, BlockId::new(0), 0);
    }
}
