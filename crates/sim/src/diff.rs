//! Differential harness: compiled kernel vs the reference interpreter.
//!
//! The compiled kernel's whole claim is *cycle-exactness*: for every netlist
//! and every clock period, the set of firing shells and relay stations — and
//! therefore every throughput figure and queue occupancy — must be identical
//! to the value-level [`LisSimulator`]. This module steps both side by side
//! and asserts it, mirroring the latency-equivalence harness in
//! [`crate::equiv`]. The sim-smoke CI job runs it over the committed netlist
//! corpus in both queue regimes.

use lis_core::LisSystem;

use crate::core_model::{CoreModel, Passthrough};
use crate::kernel::CompiledSim;
use crate::simulator::{LisSimulator, QueueMode};

/// One pass-through core per block, shaped to the block's fanout — the
/// canonical "protocol only" core set: firing depends only on token
/// presence, so any core set yields the same schedule.
pub fn passthrough_cores(sys: &LisSystem) -> Vec<Box<dyn CoreModel>> {
    sys.block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect()
}

/// Steps the reference interpreter and the compiled kernel in lockstep for
/// `steps` periods and asserts, at every period, identical per-block firing
/// decisions and identical per-channel queue occupancies; at the end,
/// identical cumulative firing counts.
///
/// Returns the number of `(period, observable)` comparisons made.
///
/// # Panics
///
/// Panics on the first divergence — the compiled kernel would be broken.
pub fn assert_compiled_equivalence(sys: &LisSystem, mode: QueueMode, steps: u64) -> usize {
    let mut reference = LisSimulator::new(sys, passthrough_cores(sys), mode);
    let mut compiled = CompiledSim::new(sys, mode);
    compiled.record_traces();
    let mut checked = 0;
    for step in 0..steps {
        reference.step();
        compiled.step();
        for c in sys.channel_ids() {
            assert_eq!(
                compiled.queue_occupancy(c),
                reference.queue_occupancy(c),
                "{mode:?}, period {step}: occupancy of {c:?} diverged"
            );
            checked += 1;
        }
    }
    for b in sys.block_ids() {
        assert_eq!(
            compiled.firings(b),
            reference.firings(b),
            "{mode:?}: cumulative firings of {b:?} diverged"
        );
        assert_eq!(
            compiled.block_fired_trace(b),
            reference.block_fired_trace(b),
            "{mode:?}: firing schedule of {b:?} diverged"
        );
        checked += steps as usize + 1;
    }
    checked
}

/// [`assert_compiled_equivalence`] under both queue regimes.
pub fn assert_compiled_equivalence_both_modes(sys: &LisSystem, steps: u64) -> usize {
    assert_compiled_equivalence(sys, QueueMode::Finite, steps)
        + assert_compiled_equivalence(sys, QueueMode::Infinite, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;

    #[test]
    fn paper_figures_are_cycle_exact() {
        for (name, sys) in [
            ("fig1", figures::fig1().0),
            ("fig2_right", figures::fig2_right().0),
            ("fig6", figures::fig6().0),
            ("fig15", figures::fig15().0),
            ("uplink_downlink", figures::uplink_downlink().0),
        ] {
            let checked = assert_compiled_equivalence_both_modes(&sys, 300);
            assert!(checked > 0, "{name}: nothing compared");
        }
    }

    #[test]
    fn deep_relay_chains_are_cycle_exact() {
        let sys = figures::fig2_family(4);
        assert_compiled_equivalence_both_modes(&sys, 400);
    }
}
