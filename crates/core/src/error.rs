//! Error types for LIS construction and analysis.

use std::error::Error as StdError;
use std::fmt;

use crate::system::{BlockId, ChannelId};

/// Errors produced while building or analyzing a latency-insensitive system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LisError {
    /// A block id referenced a block that does not exist.
    UnknownBlock(BlockId),
    /// A channel id referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// A queue capacity of zero was requested; shells need at least one slot.
    ZeroQueueCapacity(ChannelId),
    /// An underlying marked-graph analysis failed.
    Graph(marked_graph::GraphError),
}

impl fmt::Display for LisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LisError::UnknownBlock(b) => write!(f, "unknown block id {}", b.index()),
            LisError::UnknownChannel(c) => write!(f, "unknown channel id {}", c.index()),
            LisError::ZeroQueueCapacity(c) => {
                write!(f, "channel {} cannot have a zero-capacity queue", c.index())
            }
            LisError::Graph(e) => write!(f, "marked-graph analysis failed: {e}"),
        }
    }
}

impl StdError for LisError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            LisError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<marked_graph::GraphError> for LisError {
    fn from(e: marked_graph::GraphError) -> LisError {
        LisError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LisError::UnknownBlock(BlockId::new(2));
        assert_eq!(e.to_string(), "unknown block id 2");
        let g = LisError::from(marked_graph::GraphError::Acyclic);
        assert!(g.to_string().contains("cyclic"));
        assert!(StdError::source(&g).is_some());
        assert!(StdError::source(&e).is_none());
    }
}
