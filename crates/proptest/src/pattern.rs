//! A practical subset of regex string generation: literal characters,
//! character classes (`[A-Za-z0-9_.-]`, escapes like `\n`), and `{m,n}` /
//! `{n}` repetition. This covers every pattern the workspace's property
//! tests use; anything outside the subset panics loudly at parse time
//! rather than generating surprising strings.

use rand::rngs::StdRng;
use rand::Rng;

/// One parsed pattern atom with its repetition bounds (inclusive).
struct Atom {
    /// Candidate characters, expanded from the class or a single literal.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// A parsed generator for one pattern string.
pub struct Pattern {
    atoms: Vec<Atom>,
}

impl Pattern {
    /// Parses `pattern`, panicking on syntax outside the supported subset.
    pub fn parse(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let candidates = match c {
                '[' => parse_class(&mut chars, pattern),
                '\\' => {
                    vec![unescape(chars.next().unwrap_or_else(|| {
                        panic!("dangling escape in pattern {pattern:?}")
                    }))]
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                    panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
                }
                lit => vec![lit],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_repetition(&mut chars, pattern)
            } else {
                (1, 1)
            };
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        Pattern { atoms }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parses the body of a `[...]` class (the `[` is already consumed),
/// expanding ranges like `A-Z`. A `-` first, last, or after a range is a
/// literal.
fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut members: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                break;
            }
            '\\' => {
                if let Some(p) =
                    pending.replace(unescape(chars.next().unwrap_or_else(|| {
                        panic!("dangling escape in class of pattern {pattern:?}")
                    })))
                {
                    members.push(p);
                }
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked above");
                let hi = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                let hi = if hi == '\\' {
                    unescape(chars.next().unwrap_or_else(|| {
                        panic!("dangling escape in class of pattern {pattern:?}")
                    }))
                } else {
                    hi
                };
                assert!(
                    lo <= hi,
                    "inverted range {lo:?}-{hi:?} in pattern {pattern:?}"
                );
                members.extend(lo..=hi);
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    members.push(p);
                }
            }
        }
    }
    assert!(
        !members.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    members
}

/// Parses `m,n}` or `n}` (the `{` is already consumed). Both bounds are
/// inclusive in the returned pair, matching regex semantics.
fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut first = String::new();
    let mut second: Option<String> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
        match c {
            '}' => break,
            ',' => second = Some(String::new()),
            d if d.is_ascii_digit() => match &mut second {
                Some(s) => s.push(d),
                None => first.push(d),
            },
            other => panic!("bad repetition character {other:?} in pattern {pattern:?}"),
        }
    }
    let min: usize = first
        .parse()
        .unwrap_or_else(|_| panic!("bad repetition bound in pattern {pattern:?}"));
    let max = match second {
        None => min,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition bound in pattern {pattern:?}")),
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::parse(pattern);
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| p.generate(&mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in gen_many("[A-Za-z][A-Za-z0-9_.-]{0,12}", 200) {
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_with_newline() {
        let mut seen_newline = false;
        for s in gen_many("[ -~\\n]{0,300}", 300) {
            assert!(s.len() <= 300);
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || c == '\n', "{c:?}");
                seen_newline |= c == '\n';
            }
        }
        assert!(seen_newline, "newline escape should be reachable");
    }

    #[test]
    fn exact_repetition_and_literals() {
        for s in gen_many("[0-9]{3}", 50) {
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
        assert_eq!(gen_many("abc", 1), vec!["abc".to_string()]);
    }

    #[test]
    fn trailing_dash_is_literal() {
        let p = Pattern::parse("[a-c-]");
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.extend(p.generate(&mut rng).chars());
        }
        assert_eq!(
            seen,
            ['a', 'b', 'c', '-'].into_iter().collect(),
            "class should be exactly a, b, c and literal dash"
        );
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn alternation_rejected() {
        Pattern::parse("a|b");
    }
}
