//! Enumeration of elementary cycles (Johnson's algorithm).
//!
//! The queue-sizing pipeline of the paper needs the explicit list of cycles
//! of the doubled graph (Section VII-A): each deficient cycle becomes a
//! constraint of the Token Deficit problem. The number of elementary cycles
//! can be exponential, so enumeration takes a hard `limit` and fails loudly
//! instead of exhausting memory — mirroring the paper's observation that "the
//! initial listing of all the cycles ... may blow up fairly quickly".

use crate::error::GraphError;
use crate::graph::{MarkedGraph, PlaceId};

/// Default cap on the number of enumerated cycles.
pub const DEFAULT_CYCLE_LIMIT: usize = 1_000_000;

/// Enumerates all elementary cycles of `graph` as closed walks of places.
///
/// Parallel places produce distinct cycles (one per place choice), matching
/// the marked-graph semantics where each place is an independent buffer.
/// Cycles are elementary with respect to *transitions*: no transition is
/// visited twice.
///
/// # Errors
///
/// Returns [`GraphError::TooManyCycles`] if more than `limit` cycles exist.
///
/// # Examples
///
/// ```
/// use marked_graph::{cycles::elementary_cycles, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 1);
/// g.add_place(b, c, 1);
/// g.add_place(c, a, 1);
/// let cycles = elementary_cycles(&g, 100)?;
/// assert_eq!(cycles.len(), 2); // A-B and A-B-C
/// # Ok::<(), marked_graph::GraphError>(())
/// ```
pub fn elementary_cycles(
    graph: &MarkedGraph,
    limit: usize,
) -> Result<Vec<Vec<PlaceId>>, GraphError> {
    let mut enumerator = Johnson::new(graph, limit);
    enumerator.run()?;
    Ok(enumerator.cycles)
}

/// Counts elementary cycles without keeping them (same `limit` behavior).
///
/// # Errors
///
/// Returns [`GraphError::TooManyCycles`] if more than `limit` cycles exist.
pub fn count_elementary_cycles(graph: &MarkedGraph, limit: usize) -> Result<usize, GraphError> {
    let mut enumerator = Johnson::new(graph, limit);
    enumerator.keep = false;
    enumerator.run()?;
    Ok(enumerator.count)
}

struct Johnson<'g> {
    graph: &'g MarkedGraph,
    limit: usize,
    keep: bool,
    count: usize,
    cycles: Vec<Vec<PlaceId>>,
    blocked: Vec<bool>,
    /// `b_sets[v]` = vertices to unblock transitively when `v` unblocks.
    b_sets: Vec<Vec<usize>>,
    /// Current DFS path as places.
    path: Vec<PlaceId>,
    start: usize,
}

impl<'g> Johnson<'g> {
    fn new(graph: &'g MarkedGraph, limit: usize) -> Johnson<'g> {
        let n = graph.transition_count();
        Johnson {
            graph,
            limit,
            keep: true,
            count: 0,
            cycles: Vec::new(),
            blocked: vec![false; n],
            b_sets: vec![Vec::new(); n],
            path: Vec::new(),
            start: 0,
        }
    }

    fn run(&mut self) -> Result<(), GraphError> {
        let n = self.graph.transition_count();
        for s in 0..n {
            self.start = s;
            for v in s..n {
                self.blocked[v] = false;
                self.b_sets[v].clear();
            }
            self.circuit(s)?;
        }
        Ok(())
    }

    fn unblock(&mut self, v: usize) {
        self.blocked[v] = false;
        let pending = std::mem::take(&mut self.b_sets[v]);
        for w in pending {
            if self.blocked[w] {
                self.unblock(w);
            }
        }
    }

    fn record(&mut self) -> Result<(), GraphError> {
        self.count += 1;
        if self.count > self.limit {
            return Err(GraphError::TooManyCycles { limit: self.limit });
        }
        if self.keep {
            self.cycles.push(self.path.clone());
        }
        Ok(())
    }

    fn circuit(&mut self, v: usize) -> Result<bool, GraphError> {
        let mut found = false;
        self.blocked[v] = true;
        for i in 0..self.graph.outputs(crate::graph::TransitionId::new(v)).len() {
            let p = self.graph.outputs(crate::graph::TransitionId::new(v))[i];
            let w = self.graph.target(p).index();
            if w < self.start {
                continue; // restricted to the subgraph on vertices >= start
            }
            if w == self.start {
                self.path.push(p);
                self.record()?;
                self.path.pop();
                found = true;
            } else if !self.blocked[w] {
                self.path.push(p);
                if self.circuit(w)? {
                    found = true;
                }
                self.path.pop();
            }
        }
        if found {
            self.unblock(v);
        } else {
            for i in 0..self.graph.outputs(crate::graph::TransitionId::new(v)).len() {
                let p = self.graph.outputs(crate::graph::TransitionId::new(v))[i];
                let w = self.graph.target(p).index();
                if w >= self.start && !self.b_sets[w].contains(&v) {
                    self.b_sets[w].push(v);
                }
            }
        }
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TransitionId;

    fn ring(n: usize) -> MarkedGraph {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..n).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..n {
            g.add_place(ts[i], ts[(i + 1) % n], 1);
        }
        g
    }

    #[test]
    fn ring_has_one_cycle() {
        let g = ring(5);
        let cs = elementary_cycles(&g, 100).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 5);
        assert_eq!(count_elementary_cycles(&g, 100).unwrap(), 1);
    }

    #[test]
    fn acyclic_has_none() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        g.add_place(a, b, 1);
        g.add_place(a, c, 1);
        g.add_place(b, c, 1);
        assert!(elementary_cycles(&g, 100).unwrap().is_empty());
    }

    #[test]
    fn self_loop_counts() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        g.add_place(a, a, 1);
        let cs = elementary_cycles(&g, 100).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 1);
    }

    #[test]
    fn parallel_edges_give_distinct_cycles() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        g.add_place(a, b, 0);
        g.add_place(b, a, 1);
        let cs = elementary_cycles(&g, 100).unwrap();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn complete_graph_cycle_count() {
        // K4 (directed, both directions): number of elementary cycles is
        // sum over subset sizes k>=2 of C(4,k) * (k-1)!  plus... known value:
        // directed K4 has 20 elementary cycles (6 of len 2, 8 of len 3, 6 of len 4).
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..4).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    g.add_place(ts[i], ts[j], 1);
                }
            }
        }
        let cs = elementary_cycles(&g, 1000).unwrap();
        assert_eq!(cs.len(), 20);
        let mut by_len = [0usize; 5];
        for c in &cs {
            by_len[c.len()] += 1;
        }
        assert_eq!(by_len[2], 6);
        assert_eq!(by_len[3], 8);
        assert_eq!(by_len[4], 6);
    }

    #[test]
    fn limit_is_enforced() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..6).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    g.add_place(ts[i], ts[j], 1);
                }
            }
        }
        assert_eq!(
            elementary_cycles(&g, 10).unwrap_err(),
            GraphError::TooManyCycles { limit: 10 }
        );
    }

    #[test]
    fn cycles_are_closed_walks() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..5).map(|i| g.add_transition(format!("t{i}"))).collect();
        g.add_place(ts[0], ts[1], 1);
        g.add_place(ts[1], ts[2], 1);
        g.add_place(ts[2], ts[0], 1);
        g.add_place(ts[2], ts[3], 1);
        g.add_place(ts[3], ts[4], 1);
        g.add_place(ts[4], ts[2], 1);
        g.add_place(ts[1], ts[3], 1);
        for c in elementary_cycles(&g, 1000).unwrap() {
            // cycle_mean panics on non-closed walks, so this validates shape.
            let _ = g.cycle_mean(&c);
            // Elementary: no repeated transitions.
            let mut seen: Vec<TransitionId> = c.iter().map(|&p| g.source(p)).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), c.len());
        }
    }

    #[test]
    fn two_disjoint_rings() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..6).map(|i| g.add_transition(format!("t{i}"))).collect();
        g.add_place(ts[0], ts[1], 1);
        g.add_place(ts[1], ts[0], 1);
        g.add_place(ts[3], ts[4], 1);
        g.add_place(ts[4], ts[5], 1);
        g.add_place(ts[5], ts[3], 1);
        let cs = elementary_cycles(&g, 100).unwrap();
        assert_eq!(cs.len(), 2);
    }
}
