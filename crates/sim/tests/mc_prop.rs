//! The Monte-Carlo kernel's defining property: a bit-packed 64-trial word
//! is **bit-identical** to 64 independent single-trial runs with the same
//! derived seeds — same firing decision for every lane, transition, and
//! cycle — because both paths draw their stall masks from the same pure
//! `(seed, word, transition, cycle)` sites.

use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use lis_sim::{single_trial_on, CompiledProgram, McKernel, QueueMode, StallSpec, LANES};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded stochastic experiment on a random small system.
#[derive(Debug, Clone)]
struct Scenario {
    sys_seed: u64,
    mc_seed: u64,
    stall_p: f64,
    cycles: u64,
    word: u64,
}

struct ArbScenario;

impl Strategy for ArbScenario {
    type Value = Scenario;
    fn generate(&self, rng: &mut StdRng) -> Scenario {
        Scenario {
            sys_seed: rng.gen_range(0..1000),
            mc_seed: rng.gen_range(0..u64::MAX / 2),
            stall_p: f64::from(rng.gen_range(0..400u32)) / 1000.0,
            cycles: rng.gen_range(20..=60),
            word: rng.gen_range(0..4),
        }
    }
}

fn small_system(seed: u64) -> lis_core::LisSystem {
    let cfg = GeneratorConfig {
        vertices: 8,
        sccs: 2,
        min_cycles_per_scc: 2,
        relay_stations: 3,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: Some(1),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).system
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packed_lanes_are_bit_identical_to_single_trials(s in ArbScenario) {
        let sys = small_system(s.sys_seed);
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, s.stall_p);
        let nt = prog.transition_count();

        let kernel = McKernel::new(prog.clone(), spec.clone(), s.mc_seed);
        let traced = kernel.run_word_traced(s.word, s.cycles);
        prop_assert_eq!(traced.len(), s.cycles as usize * nt);

        for lane in 0..LANES {
            let trial = s.word as usize * LANES + lane;
            let reference = single_trial_on(prog.clone(), &spec, s.mc_seed, trial, s.cycles);
            for cycle in 0..s.cycles {
                for t in 0..nt {
                    let packed = traced[cycle as usize * nt + t] >> lane & 1 == 1;
                    prop_assert_eq!(
                        packed,
                        reference.fired_at(t, cycle),
                        "trial {} diverged at cycle {}, transition {}",
                        trial,
                        cycle,
                        t
                    );
                }
            }
        }
    }

    #[test]
    fn packed_firing_counts_match_single_trials(s in ArbScenario) {
        let sys = small_system(s.sys_seed);
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, s.stall_p);

        let trials = LANES + 7; // exercise the partial second word
        let report = McKernel::new(prog.clone(), spec.clone(), s.mc_seed).run(trials, s.cycles);
        for trial in (0..trials).step_by(13) {
            let reference = single_trial_on(prog.clone(), &spec, s.mc_seed, trial, s.cycles);
            for b in sys.block_ids() {
                prop_assert_eq!(
                    report.block_firings(b, trial),
                    reference.firings(b),
                    "trial {} block {:?}",
                    trial,
                    b
                );
            }
        }
    }
}
