//! The content-addressed result cache.
//!
//! Keys are *content* hashes, not request texts: the netlist is parsed
//! first and hashed in canonical form ([`lis_core::canonical_hash`]), so
//! two requests whose netlists differ only in comments, whitespace, or
//! quoting share a cache entry. The request kind and its options are
//! hashed alongside (an `analyze` and a `qs --exact` of the same system
//! are distinct entries).
//!
//! Values are fully rendered response bodies ([`CachedResponse`]), shared
//! by `Arc` — a hit writes the exact bytes of the original computation to
//! the socket, which is what lets the end-to-end tests assert
//! byte-identical repeat responses.
//!
//! Eviction is FIFO by insertion order, bounded by `capacity`. Analysis
//! results never go stale (the key pins the full input), so recency
//! tracking buys little; FIFO keeps the lock hold times tiny.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::metrics::Metrics;

/// A cache key: canonical system hash plus request-kind hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `lis_core::canonical_hash` of the parsed netlist.
    pub system: u64,
    /// FNV-1a of the request kind and options (see `RequestKind::token`).
    pub request: u64,
}

/// A cached, fully rendered response.
#[derive(Debug, PartialEq, Eq)]
pub struct CachedResponse {
    /// HTTP status of the original computation (200, or a deterministic
    /// failure such as 422).
    pub status: u16,
    /// The exact JSON body bytes originally sent.
    pub body: Vec<u8>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Arc<CachedResponse>>,
    order: VecDeque<CacheKey>,
}

/// A bounded, thread-safe, content-addressed response cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` responses (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a key, counting the outcome in `metrics`.
    pub fn get(&self, key: CacheKey, metrics: &Metrics) -> Option<Arc<CachedResponse>> {
        let hit = self
            .inner
            .lock()
            .expect("cache lock")
            .map
            .get(&key)
            .cloned();
        match &hit {
            Some(_) => metrics.cache_hits.fetch_add(1, Ordering::Relaxed),
            None => metrics.cache_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts a response, evicting the oldest entries beyond capacity.
    /// Re-inserting an existing key refreshes the value without growing
    /// the order queue.
    pub fn insert(&self, key: CacheKey, response: Arc<CachedResponse>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.insert(key, response).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let oldest = inner.order.pop_front().expect("order tracks map");
                inner.map.remove(&oldest);
            }
        }
    }

    /// Looks up a key without counting a hit or miss — the replication
    /// and store read paths, which must not skew the cache metrics the
    /// chaos gates assert on.
    pub fn peek(&self, key: CacheKey) -> Option<Arc<CachedResponse>> {
        self.inner
            .lock()
            .expect("cache lock")
            .map
            .get(&key)
            .cloned()
    }

    /// Cached keys in insertion order (the RAM half of `/store/index`).
    pub fn keys(&self) -> Vec<CacheKey> {
        self.inner
            .lock()
            .expect("cache lock")
            .order
            .iter()
            .copied()
            .collect()
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            system: n,
            request: n ^ 0xdead_beef,
        }
    }

    fn resp(tag: u8) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            status: 200,
            body: vec![tag; 3],
        })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new(8);
        let metrics = Metrics::new();
        assert!(cache.get(key(1), &metrics).is_none());
        cache.insert(key(1), resp(1));
        let hit = cache.get(key(1), &metrics).expect("hit");
        assert_eq!(hit.body, vec![1, 1, 1]);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn same_system_different_request_kind_do_not_collide() {
        let cache = ResultCache::new(8);
        let metrics = Metrics::new();
        let a = CacheKey {
            system: 7,
            request: 1,
        };
        let b = CacheKey {
            system: 7,
            request: 2,
        };
        cache.insert(a, resp(1));
        cache.insert(b, resp(2));
        assert_eq!(cache.get(a, &metrics).unwrap().body, vec![1, 1, 1]);
        assert_eq!(cache.get(b, &metrics).unwrap().body, vec![2, 2, 2]);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = ResultCache::new(2);
        let metrics = Metrics::new();
        cache.insert(key(1), resp(1));
        cache.insert(key(2), resp(2));
        cache.insert(key(3), resp(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(key(1), &metrics).is_none(), "oldest evicted");
        assert!(cache.get(key(2), &metrics).is_some());
        assert!(cache.get(key(3), &metrics).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating_order() {
        let cache = ResultCache::new(2);
        let metrics = Metrics::new();
        cache.insert(key(1), resp(1));
        cache.insert(key(1), resp(9));
        cache.insert(key(2), resp(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(key(1), &metrics).unwrap().body, vec![9, 9, 9]);
    }

    #[test]
    fn peek_does_not_touch_the_hit_counters() {
        let cache = ResultCache::new(8);
        let metrics = Metrics::new();
        cache.insert(key(1), resp(1));
        assert!(cache.peek(key(1)).is_some());
        assert!(cache.peek(key(2)).is_none());
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 0);
        assert_eq!(cache.keys(), vec![key(1)]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        let metrics = Metrics::new();
        cache.insert(key(1), resp(1));
        assert!(cache.is_empty());
        assert!(cache.get(key(1), &metrics).is_none());
    }
}
