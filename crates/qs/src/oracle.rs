//! An incremental throughput oracle for queue-sizing candidates.
//!
//! Queue sizing repeatedly asks one question: *what is `θ(d[G])` if these
//! channels get this many extra slots?* Answering it from scratch means
//! rebuilding the doubled marked graph and re-running Karp per candidate.
//! [`ThroughputOracle`] builds the doubled model **once** and answers each
//! query through [`IncrementalMcm`]: an extra slot on a channel is exactly
//! one extra token on that channel's queue backedge (the model's
//! `queue_backedge` place), which leaves the graph's structure — and hence
//! its SCC decomposition — untouched. Only the components containing a
//! touched backedge are re-solved, and repeated assignments are answered
//! from the memo cache.
//!
//! The oracle also powers [`trim_weights`], an optional post-pass that
//! tightens any feasible solution against the *real* throughput instead of
//! the Token Deficit abstraction. The abstraction is conservative whenever
//! cycle enumeration was truncated by the cycle limit, so oracle trimming
//! can recover tokens the TD solvers could not know were unnecessary.

use std::collections::BTreeMap;

use lis_core::{ChannelId, LisModel, LisSystem};
use marked_graph::incremental::{CacheStats, IncrementalMcm};
use marked_graph::{McmEngine, PlaceId, Ratio};

/// Incremental `θ(d[G])` evaluator for one system under varying extra
/// queue slots.
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_qs::ThroughputOracle;
/// use marked_graph::Ratio;
///
/// let (sys, _, lower) = figures::fig1();
/// let mut oracle = ThroughputOracle::new(&sys);
/// assert_eq!(oracle.base_practical_mst(), Ratio::new(2, 3));
/// // One extra slot on the lower channel restores full throughput.
/// assert_eq!(oracle.practical_mst_with_extra(&[(lower, 1)]), Ratio::ONE);
/// ```
pub struct ThroughputOracle {
    inc: IncrementalMcm,
    /// Per channel index: the queue backedge place and its base tokens
    /// (= the channel's current queue capacity).
    backedges: Vec<Option<(PlaceId, u64)>>,
}

impl ThroughputOracle {
    /// Builds the doubled model of `sys` and its incremental MCM engine
    /// (default algorithm: Howard with warm-started policies).
    pub fn new(sys: &LisSystem) -> ThroughputOracle {
        ThroughputOracle::with_engine(sys, McmEngine::default())
    }

    /// [`ThroughputOracle::new`] with an explicit per-component MCM engine.
    pub fn with_engine(sys: &LisSystem, engine: McmEngine) -> ThroughputOracle {
        let model = LisModel::doubled(sys);
        let backedges = sys
            .channel_ids()
            .map(|c| {
                model
                    .queue_backedge(c)
                    .map(|p| (p, model.graph().tokens(p)))
            })
            .collect();
        let inc = IncrementalMcm::with_engine(model.graph(), engine);
        ThroughputOracle { inc, backedges }
    }

    /// The algorithm running the per-component re-solves.
    pub fn engine(&self) -> McmEngine {
        self.inc.engine()
    }

    /// `θ(d[G])` under the system's current queue capacities, equal to
    /// [`lis_core::practical_mst`].
    pub fn base_practical_mst(&self) -> Ratio {
        cap(self.inc.base_mean())
    }

    /// `θ(d[G])` with `extra` additional slots per channel, equal to
    /// [`lis_core::practical_mst`] on a clone grown with
    /// [`LisSystem::grow_queue`]. Entries for the same channel accumulate,
    /// mirroring repeated `grow_queue` calls.
    pub fn practical_mst_with_extra(&mut self, extra: &[(ChannelId, u64)]) -> Ratio {
        let mut per_channel: BTreeMap<usize, u64> = BTreeMap::new();
        for &(c, w) in extra {
            *per_channel.entry(c.index()).or_insert(0) += w;
        }
        let overrides: Vec<(PlaceId, u64)> = per_channel
            .into_iter()
            .filter_map(|(ci, w)| self.backedges[ci].map(|(p, base)| (p, base + w)))
            .collect();
        cap(self.inc.mcm_with_tokens(&overrides))
    }

    /// Memo-cache counters of the underlying incremental engine.
    pub fn cache_stats(&self) -> CacheStats {
        self.inc.cache_stats()
    }
}

/// `θ = min(1, minimum cycle mean)`, with acyclic graphs at 1.
fn cap(mean: Option<Ratio>) -> Ratio {
    mean.map_or(Ratio::ONE, |m| m.min(Ratio::ONE))
}

/// Greedily trims a feasible per-set assignment against the real
/// throughput: for each set in index order, decrement its weight while the
/// oracle still reports at least `target`. Returns the number of tokens
/// removed.
///
/// One sweep reaches a fixpoint: removing a token can only lower the
/// throughput of other candidates, so once a set is minimal given its
/// predecessors it stays minimal. The sweep order (ascending set index) is
/// fixed, making the result deterministic.
///
/// `labels[i]` names the channel behind set `i`, as produced by
/// [`crate::TdInstance::from_qs`].
pub fn trim_weights(
    weights: &mut [u64],
    labels: &[ChannelId],
    oracle: &mut ThroughputOracle,
    target: Ratio,
) -> u64 {
    assert_eq!(weights.len(), labels.len());
    let as_extra = |weights: &[u64]| -> Vec<(ChannelId, u64)> {
        weights
            .iter()
            .zip(labels)
            .filter(|&(&w, _)| w > 0)
            .map(|(&w, &c)| (c, w))
            .collect()
    };
    let mut removed = 0;
    for i in 0..weights.len() {
        while weights[i] > 0 {
            weights[i] -= 1;
            if oracle.practical_mst_with_extra(&as_extra(weights)) >= target {
                removed += 1;
            } else {
                weights[i] += 1;
                break;
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random connected system with relay stations, for fuzzing.
    fn random_system(seed: u64) -> LisSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = LisSystem::new();
        let n = rng.gen_range(2..7usize);
        let blocks: Vec<_> = (0..n).map(|i| sys.add_block(format!("b{i}"))).collect();
        // A ring keeps everything live, chords add reconvergence.
        let mut channels = Vec::new();
        for i in 0..n {
            channels.push(sys.add_channel(blocks[i], blocks[(i + 1) % n]));
        }
        for _ in 0..rng.gen_range(0..n) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            channels.push(sys.add_channel(blocks[u], blocks[v]));
        }
        for &c in &channels {
            for _ in 0..rng.gen_range(0..3u32) {
                sys.add_relay_station(c);
            }
        }
        sys
    }

    #[test]
    fn matches_practical_mst_on_grown_clones() {
        for seed in 0..20 {
            let sys = random_system(seed);
            let mut oracle = ThroughputOracle::new(&sys);
            assert_eq!(
                oracle.base_practical_mst(),
                lis_core::practical_mst(&sys),
                "seed {seed}: base"
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
            let channels: Vec<ChannelId> = sys.channel_ids().collect();
            for query in 0..15 {
                let k = rng.gen_range(0..4usize);
                let extra: Vec<(ChannelId, u64)> = (0..k)
                    .map(|_| {
                        (
                            channels[rng.gen_range(0..channels.len())],
                            rng.gen_range(0..3u64),
                        )
                    })
                    .collect();
                let mut grown = sys.clone();
                for &(c, w) in &extra {
                    grown.grow_queue(c, w);
                }
                assert_eq!(
                    oracle.practical_mst_with_extra(&extra),
                    lis_core::practical_mst(&grown),
                    "seed {seed} query {query} extra {extra:?}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_are_cache_hits() {
        let (sys, _, lower) = figures::fig1();
        let mut oracle = ThroughputOracle::new(&sys);
        let a = oracle.practical_mst_with_extra(&[(lower, 1)]);
        let misses = oracle.cache_stats().misses;
        let b = oracle.practical_mst_with_extra(&[(lower, 1)]);
        assert_eq!(a, b);
        assert_eq!(
            oracle.cache_stats().misses,
            misses,
            "second query must not re-solve"
        );
    }

    #[test]
    fn trim_removes_redundant_tokens() {
        let (sys, _, lower) = figures::fig1();
        let mut oracle = ThroughputOracle::new(&sys);
        // Hand the trimmer a deliberately wasteful assignment: 3 slots where
        // 1 suffices.
        let mut weights = vec![3u64];
        let labels = vec![lower];
        let removed = trim_weights(&mut weights, &labels, &mut oracle, Ratio::ONE);
        assert_eq!(removed, 2);
        assert_eq!(weights, vec![1]);
        assert_eq!(oracle.practical_mst_with_extra(&[(lower, 1)]), Ratio::ONE);
    }

    #[test]
    fn trim_keeps_necessary_tokens() {
        let (sys, _, lower) = figures::fig1();
        let mut oracle = ThroughputOracle::new(&sys);
        let mut weights = vec![1u64];
        let labels = vec![lower];
        assert_eq!(
            trim_weights(&mut weights, &labels, &mut oracle, Ratio::ONE),
            0
        );
        assert_eq!(weights, vec![1]);
    }
}
