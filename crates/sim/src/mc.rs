//! The bit-parallel Monte-Carlo simulation kernel.
//!
//! One pass over the compiled schedule advances **64 independent trials**:
//! every per-place token count is bit-sliced into binary planes (plane `b`
//! holds bit `b` of all 64 lanes' counts — the doubled model's edge/backedge
//! pair invariant bounds each count, so the plane count is fixed at compile
//! time), the AND-firing rule becomes word-wide boolean algebra, and the
//! marking update is a ripple-carry increment/decrement by the fired mask.
//!
//! Stochastic behavior — bursty sources, jittery channel latencies — enters
//! as per-trial *stall masks*: a stalled transition holds its tokens for a
//! period, exactly the τ the latency-insensitive protocol absorbs. Every
//! stall decision is a pure function of `(seed, trial word, transition,
//! cycle)` drawn through the vendored [`rand`] generator, so a packed run is
//! bit-identical to 64 single-trial runs with the same derived seeds
//! ([`single_trial`] *is* that reference path, and a proptest holds the two
//! together), and a multi-word sweep is byte-identical at any thread count.
//!
//! Stalls only ever *remove* firings, so measured throughput can never
//! exceed the analytical MCM bound `θ` — the cross-check the analysis side
//! (`tests/analysis_vs_simulation.rs`) asserts on every stochastic sweep.

use lis_core::{BlockId, ChannelId, LisSystem};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::compile::CompiledProgram;
use crate::kernel::CompiledSim;
use crate::simulator::QueueMode;

/// Number of trials packed into one machine word.
pub const LANES: usize = 64;

/// Stall-probability resolution: probabilities are quantized to multiples
/// of `1 / 65536` (16 random bit-planes per Bernoulli draw).
const PROB_BITS: u32 = 16;
const PROB_ONE: u32 = 1 << PROB_BITS;

/// Per-transition stall probabilities for a stochastic scenario.
///
/// A stall suppresses a transition for one period even if it is enabled:
/// a stalled *shell* models a bursty source or a core that skips a beat, a
/// stalled *relay station* models a channel whose latency jitters upward.
/// Probabilities are quantized to 16 bits (resolution `1/65536`).
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_sim::{CompiledProgram, QueueMode, StallSpec};
///
/// let (sys, upper, _) = figures::fig1();
/// let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
/// let a = sys.block_by_name("A").expect("exists");
/// let spec = StallSpec::none(&prog)
///     .with_block(&prog, a, 0.10)
///     .with_relay_jitter(&prog, upper, 0.05);
/// assert!(spec.is_stochastic());
/// ```
#[derive(Debug, Clone)]
pub struct StallSpec {
    /// Per transition: quantized stall probability in `[0, 65536]`.
    thresh: Vec<u32>,
}

impl StallSpec {
    /// No stalls anywhere — the deterministic protocol schedule.
    pub fn none(prog: &CompiledProgram) -> StallSpec {
        StallSpec {
            thresh: vec![0; prog.transition_count()],
        }
    }

    /// The same stall probability on every transition (shells and relay
    /// stations alike).
    pub fn uniform(prog: &CompiledProgram, p: f64) -> StallSpec {
        StallSpec {
            thresh: vec![quantize(p); prog.transition_count()],
        }
    }

    /// Sets the stall probability of a block's shell.
    pub fn with_block(mut self, prog: &CompiledProgram, b: BlockId, p: f64) -> StallSpec {
        self.thresh[prog.block_transition(b)] = quantize(p);
        self
    }

    /// Sets the stall probability of every relay station on a channel
    /// (stochastic channel latency).
    pub fn with_relay_jitter(mut self, prog: &CompiledProgram, c: ChannelId, p: f64) -> StallSpec {
        for &rs in prog.relay_transitions(c) {
            self.thresh[rs as usize] = quantize(p);
        }
        self
    }

    /// Whether any transition has a nonzero stall probability.
    pub fn is_stochastic(&self) -> bool {
        self.thresh.iter().any(|&t| t > 0)
    }
}

/// Quantizes a probability to the 16-bit threshold grid.
///
/// # Panics
///
/// Panics unless `0 <= p <= 1`.
fn quantize(p: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&p),
        "stall probability {p} not in [0,1]"
    );
    (p * f64::from(PROB_ONE)).round() as u32
}

/// The derived generator for one `(seed, trial word, transition, cycle)`
/// site. Pure: any caller — packed kernel, single-trial reference, another
/// process — reconstructs the identical stream.
fn site_rng(seed: u64, word: u64, t: u32, cycle: u64) -> StdRng {
    let mut z = seed;
    z ^= word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= (u64::from(t) + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= (cycle + 1).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z)
}

/// 64 independent Bernoulli(thresh / 65536) draws as one mask, consumed
/// from the caller's generator.
///
/// The comparison `rand < thresh` runs bit-sliced MSB-first over 16 random
/// planes, so all 64 lanes cost 16 generator draws instead of 64. The
/// degenerate thresholds consume no draws — every caller (packed kernel,
/// single-trial reference) shares this function, so the streams stay
/// aligned by construction.
fn bernoulli_mask(rng: &mut StdRng, thresh: u32) -> u64 {
    if thresh == 0 {
        return 0;
    }
    if thresh >= PROB_ONE {
        return !0;
    }
    let mut lt = 0u64;
    let mut eq = !0u64;
    for b in (0..PROB_BITS).rev() {
        let plane = rng.next_u64();
        if thresh >> b & 1 == 1 {
            lt |= eq & !plane;
            eq &= plane;
        } else {
            eq &= !plane;
        }
    }
    lt
}

/// 64 independent Bernoulli(thresh / 65536) draws as one mask: lane `l` is
/// set iff trial `word * 64 + l` stalls transition `t` at `cycle`.
fn stall_mask(seed: u64, word: u64, t: u32, cycle: u64, thresh: u32) -> u64 {
    if thresh == 0 {
        return 0;
    }
    if thresh >= PROB_ONE {
        return !0;
    }
    let mut rng = site_rng(seed, word, t, cycle);
    bernoulli_mask(&mut rng, thresh)
}

/// Salt separating the burst chains' random stream from the stall stream:
/// a burst draw at `(seed, word, t, cycle)` must not correlate with the
/// stall draw at the same site.
const BURST_STREAM: u64 = 0xD6E8_FEB8_6659_FD93;

/// A Markov-modulated on/off burst source specification.
///
/// Each transition carries a two-state chain: while ON it fires normally
/// and enters OFF with probability `p_off` per cycle; while OFF it stalls
/// (holds its tokens, emitting the protocol's τ) and returns to ON with
/// probability `p_on` per cycle. Small `p_off` with small `p_on` yields
/// long smooth stretches broken by long silences — the bursty-source
/// regime whose backlog the schedule-derived occupancy bounds must cap.
/// Chains start ON; probabilities are quantized to 16 bits like
/// [`StallSpec`], and every chain step is a pure function of
/// `(seed, trial word, transition, cycle)`, so packed runs stay
/// bit-identical to their single-trial references.
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_sim::{BurstSpec, CompiledProgram, QueueMode};
///
/// let (sys, _, _) = figures::fig1();
/// let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
/// let burst = BurstSpec::sources(&prog, 0.2, 0.5);
/// assert!(burst.is_bursty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstSpec {
    /// Per transition: quantized P(ON → OFF) per cycle.
    enter_off: Vec<u32>,
    /// Per transition: quantized P(OFF → ON) per cycle.
    exit_off: Vec<u32>,
}

impl BurstSpec {
    /// No bursts anywhere: every chain is pinned ON.
    pub fn none(prog: &CompiledProgram) -> BurstSpec {
        let nt = prog.transition_count();
        BurstSpec {
            enter_off: vec![0; nt],
            exit_off: vec![0; nt],
        }
    }

    /// The same on/off chain on every transition.
    pub fn uniform(prog: &CompiledProgram, p_off: f64, p_on: f64) -> BurstSpec {
        let nt = prog.transition_count();
        BurstSpec {
            enter_off: vec![quantize(p_off); nt],
            exit_off: vec![quantize(p_on); nt],
        }
    }

    /// Bursty *sources*: every block's shell carries the chain while relay
    /// stations stay smooth — the NoC scenario where traffic injectors
    /// burst but the fabric itself is reliable.
    pub fn sources(prog: &CompiledProgram, p_off: f64, p_on: f64) -> BurstSpec {
        let mut spec = BurstSpec::none(prog);
        let (off, on) = (quantize(p_off), quantize(p_on));
        for b in 0..prog.block_count() {
            let t = prog.block_transition(BlockId::new(b));
            spec.enter_off[t] = off;
            spec.exit_off[t] = on;
        }
        spec
    }

    /// Sets the chain of one block's shell.
    pub fn with_block(
        mut self,
        prog: &CompiledProgram,
        b: BlockId,
        p_off: f64,
        p_on: f64,
    ) -> BurstSpec {
        let t = prog.block_transition(b);
        self.enter_off[t] = quantize(p_off);
        self.exit_off[t] = quantize(p_on);
        self
    }

    /// Whether any transition can ever leave the ON state.
    pub fn is_bursty(&self) -> bool {
        self.enter_off.iter().any(|&t| t > 0)
    }
}

/// Per-lane ON/OFF state of every transition's burst chain (bit `l` of
/// `on[t]` = lane `l`'s chain is ON). Stepped identically by the packed
/// kernel and the single-trial reference, so the two stay bit-identical.
struct BurstState {
    on: Vec<u64>,
}

impl BurstState {
    fn new(transitions: usize) -> BurstState {
        BurstState {
            on: vec![!0; transitions],
        }
    }

    /// Advances every chain by one cycle. Both Bernoulli draws of a
    /// transition come sequentially from one salted site generator, so the
    /// chain stream never collides with the stall stream.
    fn step(&mut self, spec: &BurstSpec, seed: u64, word: u64, cycle: u64) {
        for (t, on) in self.on.iter_mut().enumerate() {
            let enter = spec.enter_off[t];
            if enter == 0 {
                // A chain that cannot leave ON stays all-ON forever; skip
                // the generator entirely (site streams are independent, so
                // skipping draws here shifts nothing elsewhere).
                continue;
            }
            let mut rng = site_rng(seed ^ BURST_STREAM, word, t as u32, cycle);
            let to_off = bernoulli_mask(&mut rng, enter);
            let to_on = bernoulli_mask(&mut rng, spec.exit_off[t]);
            *on = (*on & !to_off) | (!*on & to_on);
        }
    }

    /// Lanes whose chain is OFF for transition `t` (those lanes stall).
    fn off(&self, t: usize) -> u64 {
        !self.on[t]
    }
}

/// Ripple-carry increment of bit-sliced counts by `carry` (one per lane).
#[inline]
fn add_mask(planes: &mut [u64], mut carry: u64) {
    for plane in planes.iter_mut() {
        if carry == 0 {
            return;
        }
        let old = *plane;
        *plane = old ^ carry;
        carry &= old;
    }
    debug_assert_eq!(carry, 0, "bit-sliced counter overflow");
}

/// Ripple-borrow decrement of bit-sliced counts by `borrow` (one per lane).
#[inline]
fn sub_mask(planes: &mut [u64], mut borrow: u64) {
    for plane in planes.iter_mut() {
        if borrow == 0 {
            return;
        }
        let old = *plane;
        *plane = old ^ borrow;
        borrow &= !old;
    }
    debug_assert_eq!(borrow, 0, "bit-sliced counter underflow");
}

/// A bit-sliced per-lane counter: plane `b` holds bit `b` of all 64 lanes'
/// counts. Incrementing by a mask is amortized O(1) planes touched.
#[derive(Debug, Clone, Default)]
struct BitCounter {
    planes: Vec<u64>,
}

impl BitCounter {
    fn add(&mut self, mut carry: u64) {
        let mut i = 0;
        while carry != 0 {
            if i == self.planes.len() {
                self.planes.push(0);
            }
            let old = self.planes[i];
            self.planes[i] = old ^ carry;
            carry &= old;
            i += 1;
        }
    }

    fn get(&self, lane: usize) -> u64 {
        self.planes
            .iter()
            .enumerate()
            .map(|(b, plane)| (plane >> lane & 1) << b)
            .sum()
    }
}

/// The packed 64-lane Monte-Carlo simulator.
///
/// Built from a finite-queue [`CompiledProgram`] and a [`StallSpec`];
/// [`run`](McKernel::run) advances `trials` independent seeded trials for
/// `cycles` periods each, 64 trials per schedule pass, fanning trial words
/// out across the `lis-par` pool (byte-identical at any thread count).
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_sim::{CompiledProgram, McKernel, QueueMode, StallSpec};
///
/// let (sys, _, _) = figures::fig1();
/// let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
/// let spec = StallSpec::uniform(&prog, 0.05);
/// let report = McKernel::new(prog, spec, 42).run(128, 2000);
/// // Stalls only remove firings: no trial can beat the analytic 2/3.
/// assert!(report.max_system_rate() <= 2.0 / 3.0 + 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct McKernel {
    prog: CompiledProgram,
    spec: StallSpec,
    burst: Option<BurstSpec>,
    seed: u64,
    /// Plane offsets per place (`plane_off[p]..plane_off[p+1]` slices the
    /// planes of place `p`); width = bits of the place's token cap.
    plane_off: Vec<u32>,
}

impl McKernel {
    /// Builds the kernel.
    ///
    /// # Panics
    ///
    /// Panics unless `prog` was compiled for `QueueMode::Finite` (only the
    /// doubled model bounds markings, which the bit-sliced state requires)
    /// or if `spec` was built for a different program shape.
    pub fn new(prog: CompiledProgram, spec: StallSpec, seed: u64) -> McKernel {
        assert_eq!(
            prog.mode(),
            QueueMode::Finite,
            "the packed kernel requires the finite-queue (doubled) model"
        );
        assert_eq!(
            spec.thresh.len(),
            prog.transition_count(),
            "stall spec does not match the program"
        );
        let mut plane_off = Vec::with_capacity(prog.place_count() + 1);
        plane_off.push(0u32);
        for p in 0..prog.place_count() {
            let cap = prog.cap[p].max(1);
            let bits = 64 - cap.leading_zeros();
            plane_off.push(plane_off[p] + bits);
        }
        McKernel {
            prog,
            spec,
            burst: None,
            seed,
            plane_off,
        }
    }

    /// Attaches a Markov-modulated burst specification: OFF lanes stall in
    /// addition to any Bernoulli stalls from the [`StallSpec`].
    ///
    /// # Panics
    ///
    /// Panics if `burst` was built for a different program shape.
    pub fn with_burst(mut self, burst: BurstSpec) -> McKernel {
        assert_eq!(
            burst.enter_off.len(),
            self.prog.transition_count(),
            "burst spec does not match the program"
        );
        self.burst = burst.is_bursty().then_some(burst);
        self
    }

    /// The compiled program the kernel executes.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// Runs `trials` independent trials for `cycles` periods each and
    /// aggregates per-trial block firing counts.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn run(&self, trials: usize, cycles: u64) -> McReport {
        assert!(trials > 0, "at least one trial required");
        let words = trials.div_ceil(LANES);
        let per_word: Vec<Vec<BitCounter>> = lis_par::par_map_indexed(words, |w| {
            self.run_word(w as u64, cycles, &mut |_, _| {}, None)
        });
        self.collect_report(trials, cycles, &per_word)
    }

    /// [`run`](McKernel::run), additionally tracking every channel queue's
    /// maximum occupancy: returns the report plus, per channel, the highest
    /// token count its consumer-side queue place reached over **any** cycle
    /// of **any** trial (the initial marking counts).
    ///
    /// This is the empirical side of the schedule-derived occupancy bounds:
    /// under any stall/burst plan the observed maximum must stay within the
    /// pair-invariant cap, and with no stalls it attains the periodic peak.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn run_occupancy(&self, trials: usize, cycles: u64) -> (McReport, Vec<u64>) {
        assert!(trials > 0, "at least one trial required");
        let words = trials.div_ceil(LANES);
        let nc = self.prog.channel_count();
        let per_word: Vec<(Vec<BitCounter>, Vec<u64>)> = lis_par::par_map_indexed(words, |w| {
            let mut occ = vec![0u64; nc * LANES];
            let counters = self.run_word(w as u64, cycles, &mut |_, _| {}, Some(&mut occ));
            (counters, occ)
        });
        let counters: Vec<Vec<BitCounter>> = per_word.iter().map(|(c, _)| c.clone()).collect();
        let report = self.collect_report(trials, cycles, &counters);
        let mut occupancy = vec![0u64; nc];
        for trial in 0..trials {
            let (w, lane) = (trial / LANES, trial % LANES);
            for (c, max) in occupancy.iter_mut().enumerate() {
                *max = (*max).max(per_word[w].1[c * LANES + lane]);
            }
        }
        (report, occupancy)
    }

    fn collect_report(&self, trials: usize, cycles: u64, per_word: &[Vec<BitCounter>]) -> McReport {
        let nb = self.prog.block_count();
        let mut block_firings = vec![Vec::with_capacity(trials); nb];
        for trial in 0..trials {
            let (w, lane) = (trial / LANES, trial % LANES);
            for (b, firings) in block_firings.iter_mut().enumerate() {
                firings.push(per_word[w][b].get(lane));
            }
        }
        McReport {
            cycles,
            trials,
            block_firings,
        }
    }

    /// Runs one 64-lane trial word, recording every per-cycle fired mask:
    /// entry `k * transition_count + t` is transition `t`'s fired mask at
    /// cycle `k`. The differential proptest compares this against 64
    /// [`single_trial`] runs bit for bit.
    pub fn run_word_traced(&self, word: u64, cycles: u64) -> Vec<u64> {
        let nt = self.prog.transition_count();
        let mut trace = Vec::with_capacity(cycles as usize * nt);
        self.run_word(
            word,
            cycles,
            &mut |_, fired| trace.extend_from_slice(fired),
            None,
        );
        trace
    }

    /// The shared stepping loop: runs lanes `word*64 .. word*64+63` for
    /// `cycles`, invoking `observe(cycle, fired_masks)` after each cycle,
    /// and returns the per-block bit-sliced firing counters. When `occ` is
    /// given it receives, per `(channel, lane)` at `c * 64 + lane`, the
    /// maximum queue occupancy that lane observed.
    fn run_word(
        &self,
        word: u64,
        cycles: u64,
        observe: &mut dyn FnMut(u64, &[u64]),
        occ: Option<&mut [u64]>,
    ) -> Vec<BitCounter> {
        let prog = &self.prog;
        let nt = prog.transition_count();
        let np = prog.place_count();

        // Initial marking, bit-sliced: every lane starts identical.
        let mut planes = vec![0u64; self.plane_off[np] as usize];
        for p in 0..np {
            let off = self.plane_off[p] as usize;
            let width = (self.plane_off[p + 1] - self.plane_off[p]) as usize;
            for b in 0..width {
                if prog.init_tokens[p] >> b & 1 == 1 {
                    planes[off + b] = !0;
                }
            }
        }
        let mut fired = vec![0u64; nt];
        let mut counters = vec![BitCounter::default(); prog.block_count()];
        let mut burst_state = self.burst.as_ref().map(|_| BurstState::new(nt));

        // Occupancy tracking: a compact max-plane buffer holding one slice
        // per channel queue place, updated by a bit-sliced MSB-first
        // greater-than compare each cycle.
        let nc = prog.channel_count();
        let queue_places: Vec<usize> = (0..nc)
            .map(|c| prog.queue_place(ChannelId::new(c)))
            .collect();
        let mut occ_track = occ.map(|o| {
            let mut qoff = Vec::with_capacity(nc + 1);
            qoff.push(0usize);
            for (c, &p) in queue_places.iter().enumerate() {
                let width = (self.plane_off[p + 1] - self.plane_off[p]) as usize;
                qoff.push(qoff[c] + width);
            }
            let mut maxp = vec![0u64; qoff[nc]];
            for (c, &p) in queue_places.iter().enumerate() {
                let off = self.plane_off[p] as usize;
                let width = qoff[c + 1] - qoff[c];
                maxp[qoff[c]..qoff[c + 1]].copy_from_slice(&planes[off..off + width]);
            }
            (o, qoff, maxp)
        });

        for cycle in 0..cycles {
            if let (Some(state), Some(spec)) = (burst_state.as_mut(), self.burst.as_ref()) {
                state.step(spec, self.seed, word, cycle);
            }
            // Phase 1 — pure read of the old marking region: fired masks.
            for &t in &prog.schedule {
                let ti = t as usize;
                let lo = prog.in_off[ti] as usize;
                let hi = prog.in_off[ti + 1] as usize;
                let mut mask = !0u64;
                for &p in &prog.in_places[lo..hi] {
                    let off = self.plane_off[p as usize] as usize;
                    let end = self.plane_off[p as usize + 1] as usize;
                    let mut nonzero = 0u64;
                    for &plane in &planes[off..end] {
                        nonzero |= plane;
                    }
                    mask &= nonzero;
                    if mask == 0 {
                        break;
                    }
                }
                let thresh = self.spec.thresh[ti];
                if mask != 0 && thresh > 0 {
                    mask &= !stall_mask(self.seed, word, t, cycle, thresh);
                }
                if mask != 0 {
                    if let Some(state) = burst_state.as_ref() {
                        mask &= !state.off(ti);
                    }
                }
                fired[ti] = mask;
            }
            // Phase 2 — commit: one token across every place per fired
            // endpoint lane (the pair invariant keeps every lane in cap).
            for p in 0..np {
                let off = self.plane_off[p] as usize;
                let end = self.plane_off[p + 1] as usize;
                let consumed = fired[prog.place_dst[p] as usize];
                let produced = fired[prog.place_src[p] as usize];
                if consumed != 0 {
                    sub_mask(&mut planes[off..end], consumed);
                }
                if produced != 0 {
                    add_mask(&mut planes[off..end], produced);
                }
            }
            if let Some((_, qoff, maxp)) = occ_track.as_mut() {
                for (c, &p) in queue_places.iter().enumerate() {
                    let off = self.plane_off[p] as usize;
                    let width = qoff[c + 1] - qoff[c];
                    let cur = &planes[off..off + width];
                    let maxs = &mut maxp[qoff[c]..qoff[c + 1]];
                    let mut gt = 0u64;
                    let mut eq = !0u64;
                    for b in (0..width).rev() {
                        gt |= eq & cur[b] & !maxs[b];
                        eq &= !(cur[b] ^ maxs[b]);
                    }
                    if gt != 0 {
                        for b in 0..width {
                            maxs[b] = (cur[b] & gt) | (maxs[b] & !gt);
                        }
                    }
                }
            }
            for (b, counter) in counters.iter_mut().enumerate() {
                counter.add(fired[prog.block_transition[b] as usize]);
            }
            observe(cycle, &fired);
        }
        if let Some((o, qoff, maxp)) = occ_track {
            for c in 0..nc {
                let width = qoff[c + 1] - qoff[c];
                for lane in 0..LANES {
                    let mut value = 0u64;
                    for b in 0..width {
                        value |= (maxp[qoff[c] + b] >> lane & 1) << b;
                    }
                    o[c * LANES + lane] = value;
                }
            }
        }
        counters
    }
}

/// Aggregated results of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Periods simulated per trial.
    pub cycles: u64,
    /// Number of trials.
    pub trials: usize,
    /// `block_firings[b][trial]`: firing count of block `b` in `trial`.
    block_firings: Vec<Vec<u64>>,
}

impl McReport {
    /// Firing count of block `b` in `trial`.
    pub fn block_firings(&self, b: BlockId, trial: usize) -> u64 {
        self.block_firings[b.index()][trial]
    }

    /// Firing rate of block `b` in `trial`.
    pub fn block_rate(&self, b: BlockId, trial: usize) -> f64 {
        self.block_firings[b.index()][trial] as f64 / self.cycles.max(1) as f64
    }

    /// The system rate of one trial: the smallest per-block firing rate.
    pub fn system_rate(&self, trial: usize) -> f64 {
        self.block_firings
            .iter()
            .map(|per_trial| per_trial[trial] as f64 / self.cycles.max(1) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Smallest system rate across trials.
    pub fn min_system_rate(&self) -> f64 {
        (0..self.trials)
            .map(|i| self.system_rate(i))
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest system rate across trials — the one to hold against the
    /// analytical bound `θ`.
    pub fn max_system_rate(&self) -> f64 {
        (0..self.trials)
            .map(|i| self.system_rate(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean system rate across trials.
    pub fn mean_system_rate(&self) -> f64 {
        (0..self.trials).map(|i| self.system_rate(i)).sum::<f64>() / self.trials as f64
    }
}

/// The single-trial reference path: runs trial `trial` of the same seeded
/// experiment on the scalar [`CompiledSim`], deriving each cycle's stall
/// mask from the identical `(seed, word, transition, cycle)` sites the
/// packed kernel uses. Returns the simulator with per-cycle traces
/// recorded, so callers can compare firing schedules bit for bit.
pub fn single_trial(
    sys: &LisSystem,
    spec: &StallSpec,
    seed: u64,
    trial: usize,
    cycles: u64,
) -> CompiledSim {
    let prog = CompiledProgram::compile(sys, QueueMode::Finite);
    single_trial_on(prog, spec, seed, trial, cycles)
}

/// [`single_trial`] over an already-compiled program.
pub fn single_trial_on(
    prog: CompiledProgram,
    spec: &StallSpec,
    seed: u64,
    trial: usize,
    cycles: u64,
) -> CompiledSim {
    let burst = BurstSpec {
        enter_off: vec![0; prog.transition_count()],
        exit_off: vec![0; prog.transition_count()],
    };
    single_trial_burst_on(prog, spec, &burst, seed, trial, cycles)
}

/// The single-trial reference for a stall **and** burst scenario: lane
/// `trial % 64` of trial word `trial / 64`, reconstructing the identical
/// stall masks and burst-chain steps the packed kernel draws, on the
/// scalar [`CompiledSim`] with traces recorded.
pub fn single_trial_burst(
    sys: &LisSystem,
    spec: &StallSpec,
    burst: &BurstSpec,
    seed: u64,
    trial: usize,
    cycles: u64,
) -> CompiledSim {
    let prog = CompiledProgram::compile(sys, QueueMode::Finite);
    single_trial_burst_on(prog, spec, burst, seed, trial, cycles)
}

/// [`single_trial_burst`] over an already-compiled program.
pub fn single_trial_burst_on(
    prog: CompiledProgram,
    spec: &StallSpec,
    burst: &BurstSpec,
    seed: u64,
    trial: usize,
    cycles: u64,
) -> CompiledSim {
    let (word, lane) = ((trial / LANES) as u64, trial % LANES);
    let nt = prog.transition_count();
    let words = prog.words();
    let mut sim = CompiledSim::from_program(prog);
    sim.record_traces();
    sim.track_occupancy();
    let mut state = burst.is_bursty().then(|| BurstState::new(nt));
    let mut stalled = vec![0u64; words];
    for cycle in 0..cycles {
        if let Some(state) = state.as_mut() {
            state.step(burst, seed, word, cycle);
        }
        for w in stalled.iter_mut() {
            *w = 0;
        }
        for t in 0..nt {
            let thresh = spec.thresh[t];
            let mut stall =
                thresh > 0 && stall_mask(seed, word, t as u32, cycle, thresh) >> lane & 1 == 1;
            if let Some(state) = state.as_ref() {
                stall |= state.off(t) >> lane & 1 == 1;
            }
            if stall {
                stalled[t / 64] |= 1u64 << (t % 64);
            }
        }
        sim.step_masked(&stalled);
    }
    sim
}

/// Runs the packed kernel once per stall probability over **one** compiled
/// program: compile once, clone per point. Point `i` draws its masks from
/// `seed + i·φ` (the splitmix increment), so every point is an independent
/// Bernoulli stream while the whole sweep stays deterministic in `seed`.
/// This is the simulation axis of a design-space sweep: the expensive
/// flatten/schedule step is paid once per design, not once per stall value.
pub fn stall_sweep(
    prog: &CompiledProgram,
    probs: &[f64],
    trials: usize,
    cycles: u64,
    seed: u64,
) -> Vec<McReport> {
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let spec = StallSpec::uniform(prog, p);
            let point_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            McKernel::new(prog.clone(), spec, point_seed).run(trials, cycles)
        })
        .collect()
}

/// The burst counterpart of [`stall_sweep`]: one packed run per
/// `P(ON → OFF)` value with a fixed recovery probability `p_on`, bursty
/// sources only (relay stations stay smooth). Each point also reports the
/// per-channel maximum queue occupancy, the quantity the schedule-derived
/// bounds cap. Point `i` derives its seed as `seed + i·φ`, exactly like the
/// stall sweep, so the whole axis is deterministic in `seed`.
pub fn burst_sweep(
    prog: &CompiledProgram,
    offs: &[f64],
    p_on: f64,
    trials: usize,
    cycles: u64,
    seed: u64,
) -> Vec<(McReport, Vec<u64>)> {
    offs.iter()
        .enumerate()
        .map(|(i, &p_off)| {
            let burst = BurstSpec::sources(prog, p_off, p_on);
            let point_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            McKernel::new(prog.clone(), StallSpec::none(prog), point_seed)
                .with_burst(burst)
                .run_occupancy(trials, cycles)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;

    #[test]
    fn bit_counter_counts() {
        let mut c = BitCounter::default();
        for _ in 0..5 {
            c.add(0b11);
        }
        c.add(0b10);
        assert_eq!(c.get(0), 5);
        assert_eq!(c.get(1), 6);
        assert_eq!(c.get(2), 0);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut planes = [0u64, 0, 0];
        add_mask(&mut planes, !0);
        add_mask(&mut planes, 0b1010);
        sub_mask(&mut planes, !0);
        assert_eq!(planes, [0b1010, 0, 0]);
        sub_mask(&mut planes, 0b1010);
        assert_eq!(planes, [0, 0, 0]);
    }

    #[test]
    fn stall_mask_is_deterministic_and_calibrated() {
        let mut ones = 0u32;
        let trials = 2000;
        for cycle in 0..trials {
            let m = stall_mask(7, 0, 3, cycle, PROB_ONE / 4);
            assert_eq!(m, stall_mask(7, 0, 3, cycle, PROB_ONE / 4));
            ones += (m & 1) as u32;
        }
        let p = f64::from(ones) / trials as f64;
        assert!((p - 0.25).abs() < 0.05, "measured {p}, expected 0.25");
        assert_eq!(stall_mask(7, 0, 3, 0, 0), 0);
        assert_eq!(stall_mask(7, 0, 3, 0, PROB_ONE), !0);
    }

    #[test]
    fn deterministic_lanes_agree_with_compiled_sim() {
        // With no stalls, every lane is the deterministic schedule.
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::none(&prog);
        let report = McKernel::new(prog, spec, 1).run(130, 300);
        let mut reference = CompiledSim::new(&sys, QueueMode::Finite);
        reference.run(300);
        for b in sys.block_ids() {
            for trial in 0..report.trials {
                assert_eq!(report.block_firings(b, trial), reference.firings(b));
            }
        }
    }

    #[test]
    fn stochastic_rates_stay_below_theta() {
        let (sys, _, _) = figures::fig1();
        let theta = lis_core::practical_mst(&sys).to_f64();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, 0.1);
        let report = McKernel::new(prog, spec, 99).run(256, 4000);
        assert!(report.max_system_rate() <= theta + 1e-9);
        assert!(report.min_system_rate() > 0.0, "system must not deadlock");
        assert!(report.mean_system_rate() < theta, "stalls must cost rate");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, 0.05);
        let kernel = McKernel::new(prog, spec, 5);
        let a = lis_par::with_threads(1, || kernel.run(200, 500));
        let b = lis_par::with_threads(4, || kernel.run(200, 500));
        for blk in 0..kernel.program().block_count() {
            let blk = lis_core::BlockId::new(blk);
            for trial in 0..200 {
                assert_eq!(a.block_firings(blk, trial), b.block_firings(blk, trial));
            }
        }
    }

    #[test]
    fn stall_sweep_is_deterministic_and_monotone_at_the_ends() {
        let (sys, _, _) = figures::fig1();
        let theta = lis_core::practical_mst(&sys).to_f64();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let probs = [0.0, 0.05, 0.3];
        let a = stall_sweep(&prog, &probs, 64, 1500, 42);
        let b = stall_sweep(&prog, &probs, 64, 1500, 42);
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.mean_system_rate(), rb.mean_system_rate());
            assert!(ra.max_system_rate() <= theta + 1e-9);
        }
        // Zero stalls attain θ; heavy stalls cost strictly more than light.
        assert!((a[0].mean_system_rate() - theta).abs() < 1e-3);
        assert!(a[2].mean_system_rate() < a[1].mean_system_rate());
    }

    #[test]
    fn burst_lanes_match_the_single_trial_reference() {
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, 0.03);
        let burst = BurstSpec::sources(&prog, 0.15, 0.4);
        let kernel = McKernel::new(prog.clone(), spec.clone(), 11).with_burst(burst.clone());
        let cycles = 400;
        let trace = kernel.run_word_traced(1, cycles); // lanes 64..127
        let nt = prog.transition_count();
        for lane in [0usize, 7, 63] {
            let trial = 64 + lane;
            let reference = single_trial_burst_on(prog.clone(), &spec, &burst, 11, trial, cycles);
            for t in 0..nt {
                let bits: Vec<bool> = (0..cycles)
                    .map(|k| trace[k as usize * nt + t] >> lane & 1 == 1)
                    .collect();
                assert_eq!(
                    bits,
                    reference.transition_fired_trace(t),
                    "lane {lane} transition {t}"
                );
            }
        }
    }

    #[test]
    fn burst_costs_rate_and_respects_theta() {
        let (sys, _, _) = figures::fig1();
        let theta = lis_core::practical_mst(&sys).to_f64();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let smooth = McKernel::new(prog.clone(), StallSpec::none(&prog), 3).run(64, 3000);
        let bursty = McKernel::new(prog.clone(), StallSpec::none(&prog), 3)
            .with_burst(BurstSpec::sources(&prog, 0.1, 0.3))
            .run(64, 3000);
        assert!(bursty.max_system_rate() <= theta + 1e-9);
        assert!(
            bursty.mean_system_rate() < smooth.mean_system_rate(),
            "bursts must cost rate: {} vs {}",
            bursty.mean_system_rate(),
            smooth.mean_system_rate()
        );
    }

    #[test]
    fn occupancy_matches_the_scalar_tracker_and_the_cap() {
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, 0.08);
        let kernel = McKernel::new(prog.clone(), spec.clone(), 21);
        let trials = 130; // 3 words, last one partial
        let cycles = 500;
        let (_, occupancy) = kernel.run_occupancy(trials, cycles);
        assert_eq!(occupancy.len(), sys.channel_count());
        // Packed maxima equal the max over per-trial scalar trackers.
        let mut reference = vec![0u64; sys.channel_count()];
        for trial in 0..trials {
            let sim = single_trial_on(prog.clone(), &spec, 21, trial, cycles);
            for c in sys.channel_ids() {
                reference[c.index()] = reference[c.index()].max(sim.max_queue_occupancy(c));
            }
        }
        assert_eq!(occupancy, reference);
        // And never exceed the pair-invariant cap q (+1 for an initialized
        // producer-side token).
        for c in sys.channel_ids() {
            assert!(occupancy[c.index()] <= sys.queue_capacity(c) + 1);
        }
    }

    #[test]
    #[should_panic(expected = "finite-queue")]
    fn ideal_mode_is_rejected() {
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Infinite);
        let spec = StallSpec::none(&prog);
        let _ = McKernel::new(prog, spec, 0);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_probability_is_rejected() {
        let (sys, _, _) = figures::fig1();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let _ = StallSpec::uniform(&prog, 1.5);
    }
}
