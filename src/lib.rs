//! Umbrella crate for the latency-insensitive-system (LIS) workspace.
//!
//! This workspace reproduces *Collins & Carloni, "Topology-Based Performance
//! Analysis and Optimization of Latency-Insensitive Systems"* (IEEE TCAD
//! 2008), the journal extension of *Carloni & Sangiovanni-Vincentelli,
//! "Performance Analysis and Optimization of Latency Insensitive Systems"*
//! (DAC 2000). The facade re-exports every subsystem crate:
//!
//! * [`marked_graph`] — marked graphs, minimum cycle mean, cycle
//!   enumeration, SCCs, structural analysis;
//! * [`core`] (`lis-core`) — the LIS netlist model, ideal/doubled marked
//!   graphs, maximal sustainable throughput, topology classes, and the
//!   paper's figure constructors;
//! * [`qs`] (`lis-qs`) — queue sizing: deficient cycles, the Token Deficit
//!   abstraction, simplification rules, the heuristic and exact solvers;
//! * [`rsopt`] (`lis-rsopt`) — relay-station insertion optimization;
//! * [`gen`] (`lis-gen`) — the Section VIII random-LIS generator and the
//!   Vertex Cover reduction of the NP-completeness proof;
//! * [`sim`] (`lis-sim`) — the value-level cycle-accurate LIS simulator
//!   (traces, latency equivalence, measured throughput);
//! * [`cofdm`] (`lis-cofdm`) — the COFDM UWB transmitter case study;
//! * [`par`] (`lis-par`) — the scoped-thread work-stealing pool behind the
//!   parallel MCM fan-out and the experiment sweeps;
//! * [`schedule`] (`lis-schedule`) — explicit periodic firing schedules
//!   (balanced binary words per transition) and queue-occupancy bounds per
//!   channel, plus bursty-source scenario analysis on the packed kernel;
//! * [`sweep`] (`lis-sweep`) — design-space exploration jobs: deterministic
//!   parameter grids over queue capacities, relay stations, and stall
//!   probabilities, evaluated on warm incremental solves and reduced to a
//!   Pareto front.
//!
//! # Examples
//!
//! ```
//! use lis::core::{figures, practical_mst};
//! use lis::marked_graph::Ratio;
//!
//! let (sys, _, _) = figures::fig1();
//! assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lis_cofdm as cofdm;
pub use lis_core as core;
pub use lis_gen as gen;
pub use lis_par as par;
pub use lis_qs as qs;
pub use lis_rsopt as rsopt;
pub use lis_schedule as schedule;
pub use lis_sim as sim;
pub use lis_sweep as sweep;
pub use marked_graph;
