//! The paper's random LIS generator (Section VIII).
//!
//! Inputs: `v` (vertices), `s` (SCCs), `c` (minimum extra cycles per SCC),
//! `rs` (relay stations), whether reconvergent paths between SCCs are
//! allowed (`rp`), and the relay-station insertion policy (`any` edge vs
//! only inter-SCC edges). Generation steps 1–5 follow the paper verbatim;
//! the number of extra (non-spanning-tree) inter-SCC edges is `s/3` by
//! default, which reproduces the "# Edges (inter-SCC)" column of Table IV
//! (≈12 edges for 10 SCCs, ≈25 for 20).

use lis_core::{BlockId, ChannelId, LisSystem};
use rand::seq::SliceRandom;
use rand::Rng;

/// Where relay stations may be inserted (paper policies `any` / `scc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertionPolicy {
    /// Relay stations may land on any channel.
    Any,
    /// Relay stations may land only on channels between SCCs.
    Scc,
}

/// Parameters of the random generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total number of blocks (`v`).
    pub vertices: usize,
    /// Number of SCCs to partition the blocks into (`s`).
    pub sccs: usize,
    /// Minimum number of extra cycles added per SCC (`c`).
    pub min_cycles_per_scc: usize,
    /// Number of relay stations to insert (`rs`).
    pub relay_stations: usize,
    /// Whether reconvergent paths between SCCs are allowed (`rp`).
    pub reconvergent_paths: bool,
    /// Relay-station insertion policy.
    pub policy: InsertionPolicy,
    /// Extra inter-SCC edges beyond the spanning tree; `None` = `sccs / 3`.
    pub extra_inter_edges: Option<usize>,
}

impl GeneratorConfig {
    /// The configuration used for Figs. 16–17 of the paper:
    /// `v = 50, s = 5, c = 5, rp = 1`.
    ///
    /// Five extra inter-SCC edges beyond the spanning tree; this density of
    /// reconvergent paths reproduces the paper's reported 15–30% MST
    /// degradation under scc insertion with unit queues.
    pub fn fig16(relay_stations: usize, policy: InsertionPolicy) -> GeneratorConfig {
        GeneratorConfig {
            vertices: 50,
            sccs: 5,
            min_cycles_per_scc: 5,
            relay_stations,
            reconvergent_paths: true,
            policy,
            extra_inter_edges: Some(5),
        }
    }

    /// A Table IV row configuration: `rs = 10`, scc insertion, reconvergent
    /// paths allowed.
    pub fn table4(vertices: usize, sccs: usize) -> GeneratorConfig {
        GeneratorConfig {
            vertices,
            sccs,
            min_cycles_per_scc: 5,
            relay_stations: 10,
            reconvergent_paths: true,
            policy: InsertionPolicy::Scc,
            extra_inter_edges: None,
        }
    }
}

/// A generated system plus the bookkeeping the experiments need.
#[derive(Debug, Clone)]
pub struct GeneratedLis {
    /// The generated system (queues all at capacity one).
    pub system: LisSystem,
    /// Which SCC each block belongs to.
    pub scc_of: Vec<usize>,
    /// The channels between SCCs (in insertion order).
    pub inter_scc_channels: Vec<ChannelId>,
}

/// Runs the paper's generation procedure.
///
/// # Panics
///
/// Panics if `cfg.sccs` is zero or exceeds `cfg.vertices`.
///
/// # Examples
///
/// ```
/// use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
/// use rand::SeedableRng;
///
/// let cfg = GeneratorConfig::fig16(5, InsertionPolicy::Scc);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = generate(&cfg, &mut rng);
/// assert_eq!(g.system.block_count(), 50);
/// assert_eq!(g.system.relay_station_count(), 5);
/// ```
pub fn generate(cfg: &GeneratorConfig, rng: &mut impl Rng) -> GeneratedLis {
    assert!(cfg.sccs > 0, "need at least one SCC");
    assert!(cfg.sccs <= cfg.vertices, "more SCCs than vertices");

    let mut sys = LisSystem::new();
    let blocks: Vec<BlockId> = (0..cfg.vertices)
        .map(|i| sys.add_block(format!("v{i}")))
        .collect();

    // Step 1: partition blocks into SCCs. Every SCC gets at least two
    // vertices when possible (a single vertex cannot form a cycle); leftover
    // vertices are distributed randomly.
    let base = if cfg.vertices >= 2 * cfg.sccs { 2 } else { 1 };
    let mut sizes = vec![base; cfg.sccs];
    let mut left = cfg.vertices - base * cfg.sccs;
    while left > 0 {
        sizes[rng.gen_range(0..cfg.sccs)] += 1;
        left -= 1;
    }
    let mut order: Vec<usize> = (0..cfg.vertices).collect();
    order.shuffle(rng);
    let mut scc_of = vec![0usize; cfg.vertices];
    let mut members: Vec<Vec<BlockId>> = Vec::with_capacity(cfg.sccs);
    let mut cursor = 0;
    for (scc, &size) in sizes.iter().enumerate() {
        let mut m = Vec::with_capacity(size);
        for &bi in &order[cursor..cursor + size] {
            scc_of[bi] = scc;
            m.push(blocks[bi]);
        }
        cursor += size;
        members.push(m);
    }

    // Step 2: per SCC, a Hamiltonian cycle plus `c` chord edges.
    for m in &members {
        if m.len() < 2 {
            continue;
        }
        let mut perm = m.clone();
        perm.shuffle(rng);
        for i in 0..perm.len() {
            sys.add_channel(perm[i], perm[(i + 1) % perm.len()]);
        }
        // Chords: choose unused (u, v) pairs. An SCC of n vertices has
        // n(n-1) ordered pairs, n of which the ring already uses.
        let max_chords = m.len() * (m.len() - 1) - m.len();
        let mut added = 0;
        let mut attempts = 0;
        while added < cfg.min_cycles_per_scc && added < max_chords && attempts < 10_000 {
            attempts += 1;
            let u = m[rng.gen_range(0..m.len())];
            let v = m[rng.gen_range(0..m.len())];
            if u == v || !sys.channels_between(u, v).is_empty() {
                continue;
            }
            sys.add_channel(u, v);
            added += 1;
        }
    }

    // Step 3: auxiliary DAG H over the SCCs — a random spanning tree
    // oriented along a random topological order, plus extra forward edges
    // when reconvergent paths are allowed.
    let mut rank: Vec<usize> = (0..cfg.sccs).collect();
    rank.shuffle(rng);
    let mut h_edges: Vec<(usize, usize)> = Vec::new();
    for i in 1..cfg.sccs {
        let j = rng.gen_range(0..i);
        h_edges.push((rank[j], rank[i]));
    }
    if cfg.reconvergent_paths && cfg.sccs >= 2 {
        let extra = cfg.extra_inter_edges.unwrap_or(cfg.sccs / 3);
        let mut attempts = 0;
        let mut added = 0;
        while added < extra && attempts < 10_000 {
            attempts += 1;
            let i = rng.gen_range(0..cfg.sccs);
            let j = rng.gen_range(0..cfg.sccs);
            if i == j {
                continue;
            }
            // Orient along the topological rank to keep H acyclic.
            let (lo, hi) = if rank.iter().position(|&r| r == i) < rank.iter().position(|&r| r == j)
            {
                (i, j)
            } else {
                (j, i)
            };
            // Duplicates are allowed: a repeated SCC pair realizes as
            // parallel inter-SCC channels, a legitimate reconvergence.
            h_edges.push((lo, hi));
            added += 1;
        }
    }

    // Step 4: realize each H edge with a channel between random members.
    let mut inter_scc_channels = Vec::with_capacity(h_edges.len());
    for (s1, s2) in h_edges {
        let v1 = members[s1][rng.gen_range(0..members[s1].len())];
        let v2 = members[s2][rng.gen_range(0..members[s2].len())];
        inter_scc_channels.push(sys.add_channel(v1, v2));
    }

    // Step 5: relay-station insertion per policy. Distinct edges first;
    // wrap around (stacking) only if there are more stations than edges.
    let candidates: Vec<ChannelId> = match cfg.policy {
        InsertionPolicy::Any => sys.channel_ids().collect(),
        InsertionPolicy::Scc => inter_scc_channels.clone(),
    };
    if !candidates.is_empty() {
        let mut shuffled = candidates.clone();
        shuffled.shuffle(rng);
        for k in 0..cfg.relay_stations {
            sys.add_relay_station(shuffled[k % shuffled.len()]);
        }
    }

    GeneratedLis {
        system: sys,
        scc_of,
        inter_scc_channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::block_graph;
    use marked_graph::SccDecomposition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = GeneratorConfig {
            vertices: 30,
            sccs: 3,
            min_cycles_per_scc: 4,
            relay_stations: 6,
            reconvergent_paths: true,
            policy: InsertionPolicy::Scc,
            extra_inter_edges: Some(2),
        };
        let g = generate(&cfg, &mut rng(11));
        assert_eq!(g.system.block_count(), 30);
        assert_eq!(g.system.relay_station_count(), 6);
        assert_eq!(g.scc_of.len(), 30);
        // spanning tree (2) + extra (2) inter-SCC edges
        assert_eq!(g.inter_scc_channels.len(), 4);
    }

    #[test]
    fn declared_sccs_match_actual_sccs() {
        for seed in 0..5 {
            let cfg = GeneratorConfig::table4(40, 8);
            let g = generate(&cfg, &mut rng(seed));
            let bg = block_graph(&g.system);
            let scc = SccDecomposition::compute(&bg);
            assert_eq!(scc.count(), 8, "seed {seed}");
            // All blocks declared in the same SCC really are.
            for a in 0..40 {
                for b in 0..40 {
                    let same_declared = g.scc_of[a] == g.scc_of[b];
                    let same_actual = scc.component_of(marked_graph::TransitionId::new(a))
                        == scc.component_of(marked_graph::TransitionId::new(b));
                    assert_eq!(same_declared, same_actual, "seed {seed} blocks {a},{b}");
                }
            }
        }
    }

    #[test]
    fn scc_policy_keeps_intra_scc_channels_clean() {
        let cfg = GeneratorConfig::table4(50, 10);
        let g = generate(&cfg, &mut rng(3));
        for c in g.system.channel_ids() {
            if g.system.relay_stations_on(c) > 0 {
                let from = g.system.channel_from(c);
                let to = g.system.channel_to(c);
                assert_ne!(
                    g.scc_of[from.index()],
                    g.scc_of[to.index()],
                    "relay station on intra-SCC channel {c:?}"
                );
            }
        }
        // Ideal MST must be 1: no cycle contains a relay station.
        assert_eq!(lis_core::ideal_mst(&g.system), marked_graph::Ratio::ONE);
    }

    #[test]
    fn any_policy_can_hit_intra_scc_channels() {
        let cfg = GeneratorConfig {
            policy: InsertionPolicy::Any,
            relay_stations: 40,
            ..GeneratorConfig::fig16(40, InsertionPolicy::Any)
        };
        let g = generate(&cfg, &mut rng(5));
        let intra_hit = g.system.channel_ids().any(|c| {
            g.system.relay_stations_on(c) > 0
                && g.scc_of[g.system.channel_from(c).index()]
                    == g.scc_of[g.system.channel_to(c).index()]
        });
        assert!(intra_hit, "40 stations should hit an intra-SCC channel");
    }

    #[test]
    fn no_reconvergent_paths_when_rp_zero_between_sccs() {
        // With rp = 0 the inter-SCC structure is a tree; relay stations only
        // inter-SCC, so fixed q=1 must preserve the ideal MST whenever the
        // SCC-internal structure has no reconvergence... which chords break.
        // So check only the inter-SCC edge count: exactly s - 1.
        let cfg = GeneratorConfig {
            reconvergent_paths: false,
            ..GeneratorConfig::table4(30, 6)
        };
        let g = generate(&cfg, &mut rng(7));
        assert_eq!(g.inter_scc_channels.len(), 5);
    }

    #[test]
    fn more_stations_than_edges_stack() {
        let cfg = GeneratorConfig {
            vertices: 6,
            sccs: 2,
            min_cycles_per_scc: 0,
            relay_stations: 7,
            reconvergent_paths: false,
            policy: InsertionPolicy::Scc,
            extra_inter_edges: Some(0),
        };
        let g = generate(&cfg, &mut rng(9));
        // One inter-SCC edge carries all seven stations.
        assert_eq!(g.inter_scc_channels.len(), 1);
        assert_eq!(g.system.relay_stations_on(g.inter_scc_channels[0]), 7);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let cfg = GeneratorConfig::fig16(5, InsertionPolicy::Scc);
        let a = generate(&cfg, &mut rng(42));
        let b = generate(&cfg, &mut rng(42));
        assert_eq!(a.system.channel_count(), b.system.channel_count());
        assert_eq!(a.scc_of, b.scc_of);
        for c in a.system.channel_ids() {
            assert_eq!(a.system.relay_stations_on(c), b.system.relay_stations_on(c));
        }
    }

    #[test]
    fn min_cycles_per_scc_adds_chords() {
        let cfg = GeneratorConfig {
            vertices: 20,
            sccs: 2,
            min_cycles_per_scc: 5,
            relay_stations: 0,
            reconvergent_paths: false,
            policy: InsertionPolicy::Scc,
            extra_inter_edges: Some(0),
        };
        let g = generate(&cfg, &mut rng(13));
        // ring edges (20) + chords (5 per SCC * 2) + tree edge (1)
        assert_eq!(g.system.channel_count(), 20 + 10 + 1);
    }

    #[test]
    #[should_panic(expected = "more SCCs than vertices")]
    fn too_many_sccs_panics() {
        let cfg = GeneratorConfig {
            vertices: 3,
            sccs: 5,
            min_cycles_per_scc: 0,
            relay_stations: 0,
            reconvergent_paths: false,
            policy: InsertionPolicy::Any,
            extra_inter_edges: None,
        };
        let _ = generate(&cfg, &mut rng(0));
    }
}
