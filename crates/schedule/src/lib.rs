//! Explicit periodic firing schedules and queue-occupancy bounds for
//! latency-insensitive systems.
//!
//! The throughput analysis (`lis-core`) stops at the maximal sustainable
//! throughput θ: it says *how often* each shell fires in the long run, but
//! not *when*, and not how full each relay-station queue gets along the
//! way. This crate closes that gap:
//!
//! * [`Schedule::compute`] executes the system's doubled marked graph under
//!   ASAP step semantics until the marking repeats, then characterizes the
//!   periodic regime exactly: per-transition firing rates as exact
//!   rationals (validated against the per-SCC minimum cycle mean on the
//!   same CSR snapshot the MCM engines use), per-transition
//!   balanced-binary-word encodings ([`marked_graph::word::BalancedWord`],
//!   after Millo & de Simone) with per-SCC phase alignment, and
//!   per-channel **occupancy bounds**: the backlog `peak` attained by the
//!   zero-stall periodic regime and the pair-invariant `cap` that no
//!   stall or burst plan can ever exceed.
//! * [`burst_report`] is the empirical counterpart: it drives the packed
//!   Monte-Carlo kernel (`lis-sim`) under a Markov-modulated on/off burst
//!   plan and reports observed rates plus per-channel maximum occupancy,
//!   ready to be held against the bounds.
//!
//! Every number is validated two ways: schedule throughput must equal θ
//! from all three MCM engines as a rational identity, and the occupancy
//! bounds are differential-tested against `CompiledSim`/`McKernel` runs.
//!
//! # Examples
//!
//! ```
//! use lis_core::figures;
//! use lis_schedule::Schedule;
//! use marked_graph::{McmEngine, Ratio};
//!
//! let (sys, _, lower) = figures::fig1();
//! let schedule = Schedule::compute(&sys, McmEngine::default()).unwrap();
//! // The schedule's throughput IS the paper's 2/3, as an exact rational.
//! assert_eq!(schedule.throughput, Ratio::new(2, 3));
//! // Blocks fire along the balanced word 110 110 ... (rate 2/3).
//! let a = sys.block_by_name("A").unwrap();
//! assert_eq!(schedule.block(a).rate, Ratio::new(2, 3));
//! // The lower channel's unit queue peaks at its cap of 2 (q=1 plus the
//! // initialized producer token) — the Fig. 5 backpressure bottleneck.
//! assert_eq!(schedule.bound(lower).cap, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod schedule;

pub use burst::{burst_report, BurstParams, BurstReport, ChannelOccupancy};
pub use schedule::{ChannelBound, Schedule, ScheduleError, TransitionSchedule, MAX_SCHEDULE_STEPS};
