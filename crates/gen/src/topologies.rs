//! Deterministic topology families.
//!
//! Besides the paper's random generator, downstream users (and our
//! benchmarks) want the standard on-chip communication shapes: linear
//! pipelines, 2-D meshes and tori (the NoC substrates of the related work
//! the paper cites), butterflies, and rings. Each builder returns the
//! [`LisSystem`] plus enough structure to address blocks afterwards.

use lis_core::{BlockId, ChannelId, LisSystem};

/// A linear pipeline: `stages` blocks in a chain, one channel per hop.
///
/// # Examples
///
/// ```
/// use lis_gen::pipeline;
/// use lis_core::{classify, TopologyClass};
///
/// let p = pipeline(5);
/// assert_eq!(p.system.block_count(), 5);
/// assert_eq!(classify(&p.system), TopologyClass::Tree);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The system.
    pub system: LisSystem,
    /// Stage blocks, upstream first.
    pub stages: Vec<BlockId>,
    /// Hop channels, `channels[i]` from stage `i` to `i + 1`.
    pub channels: Vec<ChannelId>,
}

/// Builds a linear pipeline with `stages` blocks.
///
/// # Panics
///
/// Panics if `stages` is zero.
pub fn pipeline(stages: usize) -> Pipeline {
    assert!(stages > 0, "a pipeline needs at least one stage");
    let mut sys = LisSystem::new();
    let blocks: Vec<BlockId> = (0..stages)
        .map(|i| sys.add_block(format!("stage{i}")))
        .collect();
    let channels = blocks
        .windows(2)
        .map(|w| sys.add_channel(w[0], w[1]))
        .collect();
    Pipeline {
        system: sys,
        stages: blocks,
        channels,
    }
}

/// A 2-D grid of blocks with nearest-neighbor channels.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// The system.
    pub system: LisSystem,
    /// `blocks[row][col]`.
    pub blocks: Vec<Vec<BlockId>>,
    /// Whether wrap-around (torus) links are present.
    pub torus: bool,
}

impl Mesh {
    /// The block at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, row: usize, col: usize) -> BlockId {
        self.blocks[row][col]
    }
}

/// Builds a `rows × cols` mesh with bidirectional nearest-neighbor
/// channels (east/west and north/south pairs), the canonical NoC substrate.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Examples
///
/// ```
/// use lis_gen::mesh;
/// use lis_core::practical_mst;
/// use marked_graph::Ratio;
///
/// let m = mesh(3, 3);
/// assert_eq!(m.system.block_count(), 9);
/// // 2 directions * (rows*(cols-1) + cols*(rows-1)) channels.
/// assert_eq!(m.system.channel_count(), 24);
/// // Without relay stations a mesh suffers no degradation.
/// assert_eq!(practical_mst(&m.system), Ratio::ONE);
/// ```
pub fn mesh(rows: usize, cols: usize) -> Mesh {
    build_grid(rows, cols, false)
}

/// Builds a `rows × cols` torus: a mesh plus wrap-around links in both
/// dimensions (only where they are not duplicates of existing links).
pub fn torus(rows: usize, cols: usize) -> Mesh {
    build_grid(rows, cols, true)
}

fn build_grid(rows: usize, cols: usize, torus: bool) -> Mesh {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut sys = LisSystem::new();
    let blocks: Vec<Vec<BlockId>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| sys.add_block(format!("n{r}_{c}")))
                .collect()
        })
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                sys.add_channel(blocks[r][c], blocks[r][c + 1]);
                sys.add_channel(blocks[r][c + 1], blocks[r][c]);
            }
            if r + 1 < rows {
                sys.add_channel(blocks[r][c], blocks[r + 1][c]);
                sys.add_channel(blocks[r + 1][c], blocks[r][c]);
            }
        }
    }
    if torus {
        if cols > 2 {
            for row in &blocks {
                sys.add_channel(row[cols - 1], row[0]);
                sys.add_channel(row[0], row[cols - 1]);
            }
        }
        if rows > 2 {
            let (first, last) = (
                blocks.first().expect("rows > 0"),
                blocks.last().expect("rows > 0"),
            );
            for (&top, &bottom) in first.iter().zip(last.iter()) {
                sys.add_channel(bottom, top);
                sys.add_channel(top, bottom);
            }
        }
    }
    Mesh {
        system: sys,
        blocks,
        torus,
    }
}

/// A butterfly (FFT-style) network: `2^k` inputs routed through `k`
/// levels; every path from an input to an output has the same length, so
/// relay stations added uniformly per level never unbalance it.
#[derive(Debug, Clone)]
pub struct Butterfly {
    /// The system.
    pub system: LisSystem,
    /// `nodes[level][index]`, level 0 = inputs.
    pub nodes: Vec<Vec<BlockId>>,
}

/// Builds a butterfly with `2^log2_size` rows and `log2_size` levels of
/// 2×2 exchanges.
///
/// # Panics
///
/// Panics if `log2_size` is zero.
///
/// # Examples
///
/// ```
/// use lis_gen::butterfly;
/// use lis_core::{classify, TopologyClass};
///
/// let b = butterfly(3); // 8 rows, 3 exchange levels
/// assert_eq!(b.system.block_count(), 8 * 4);
/// // Diamonds everywhere: reconvergent paths.
/// assert_eq!(classify(&b.system), TopologyClass::General);
/// ```
pub fn butterfly(log2_size: usize) -> Butterfly {
    assert!(log2_size > 0, "butterfly needs at least one level");
    let n = 1usize << log2_size;
    let mut sys = LisSystem::new();
    let nodes: Vec<Vec<BlockId>> = (0..=log2_size)
        .map(|l| (0..n).map(|i| sys.add_block(format!("l{l}_{i}"))).collect())
        .collect();
    for l in 0..log2_size {
        let stride = 1usize << (log2_size - 1 - l);
        for i in 0..n {
            sys.add_channel(nodes[l][i], nodes[l + 1][i]);
            sys.add_channel(nodes[l][i], nodes[l + 1][i ^ stride]);
        }
    }
    Butterfly { system: sys, nodes }
}

/// A unidirectional ring of `len` blocks — the paper's "SCC with no
/// reconvergent paths" archetype.
///
/// # Examples
///
/// ```
/// use lis_gen::ring;
/// use lis_core::{classify, TopologyClass};
///
/// let r = ring(6);
/// assert_eq!(classify(&r.system), TopologyClass::SccNoReconvergence);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    /// The system.
    pub system: LisSystem,
    /// Blocks in ring order.
    pub blocks: Vec<BlockId>,
    /// `channels[i]` from block `i` to block `(i + 1) % len`.
    pub channels: Vec<ChannelId>,
}

/// Builds a unidirectional ring.
///
/// # Panics
///
/// Panics if `len < 2`.
pub fn ring(len: usize) -> Ring {
    assert!(len >= 2, "a ring needs at least two blocks");
    let mut sys = LisSystem::new();
    let blocks: Vec<BlockId> = (0..len).map(|i| sys.add_block(format!("r{i}"))).collect();
    let channels = (0..len)
        .map(|i| sys.add_channel(blocks[i], blocks[(i + 1) % len]))
        .collect();
    Ring {
        system: sys,
        blocks,
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::{classify, ideal_mst, practical_mst, TopologyClass};
    use marked_graph::Ratio;

    #[test]
    fn pipeline_shape_and_throughput() {
        let p = pipeline(6);
        assert_eq!(p.stages.len(), 6);
        assert_eq!(p.channels.len(), 5);
        assert_eq!(classify(&p.system), TopologyClass::Tree);
        // Pipelining any channel never hurts a pure pipeline.
        let mut sys = p.system.clone();
        sys.add_relay_station(p.channels[2]);
        sys.add_relay_station(p.channels[2]);
        assert_eq!(practical_mst(&sys), Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = pipeline(0);
    }

    #[test]
    fn mesh_counts() {
        let m = mesh(2, 3);
        assert_eq!(m.system.block_count(), 6);
        // 2*(2*2) horizontal + 2*(3*1) vertical = 8 + 6 = 14.
        assert_eq!(m.system.channel_count(), 14);
        assert!(!m.torus);
        assert_ne!(m.at(0, 0), m.at(1, 2));
        // Bidirectional mesh is one SCC with reconvergent paths.
        assert_eq!(classify(&m.system), TopologyClass::General);
    }

    #[test]
    fn torus_adds_wraparound() {
        let t = torus(3, 3);
        // mesh(3,3) has 24; + 3 rows * 2 + 3 cols * 2 = 36.
        assert_eq!(t.system.channel_count(), 36);
        assert!(t.torus);
        // 2x2 torus adds no duplicate wrap links.
        let t2 = torus(2, 2);
        assert_eq!(t2.system.channel_count(), mesh(2, 2).system.channel_count());
    }

    #[test]
    fn mesh_tolerates_one_station_with_q2() {
        // The paper's closing remark, on a NoC-shaped instance.
        let m = mesh(3, 3);
        for c in m.system.channel_ids() {
            let mut sys = m.system.clone();
            sys.add_relay_station(c);
            sys.set_uniform_queue_capacity(2);
            assert_eq!(practical_mst(&sys), ideal_mst(&sys), "channel {c:?}");
        }
    }

    #[test]
    fn butterfly_is_balanced_by_construction() {
        let b = butterfly(2);
        assert_eq!(b.nodes.len(), 3);
        assert_eq!(b.system.channel_count(), 2 * 2 * 4);
        // Equal-length reconvergent paths: no degradation without stations.
        assert_eq!(practical_mst(&b.system), Ratio::ONE);
        // One station on a single level-0 edge unbalances a diamond.
        let mut sys = b.system.clone();
        sys.add_relay_station(lis_core::ChannelId::new(0));
        assert!(practical_mst(&sys) < Ratio::ONE);
        // Station-count equalization repairs it (the DAG theorem).
        let fixed = lis_rsopt::equalize_dag(&sys).expect("butterfly is a DAG");
        assert_eq!(practical_mst(&fixed), Ratio::ONE);
    }

    #[test]
    fn ring_properties() {
        let r = ring(5);
        assert_eq!(r.system.channel_count(), 5);
        assert_eq!(ideal_mst(&r.system), Ratio::ONE);
        // One relay station in the loop costs throughput that queues CANNOT
        // recover (it is an ideal-MST limit, not a backpressure artifact).
        let mut sys = r.system.clone();
        sys.add_relay_station(r.channels[0]);
        assert_eq!(ideal_mst(&sys), Ratio::new(5, 6));
        assert_eq!(practical_mst(&sys), Ratio::new(5, 6));
        sys.set_uniform_queue_capacity(9);
        assert_eq!(practical_mst(&sys), Ratio::new(5, 6));
    }
}
