//! Command implementations for the `lis` binary.

use std::error::Error;
use std::fs;

use lis_core::{parse_netlist, practical_mst, to_netlist, LisModel, LisSystem, McmEngine};
use lis_qs::{solve, verify_solution, Algorithm, QsConfig};
use lis_rsopt::{equalize_dag, exhaustive_insertion, greedy_insertion};
use lis_schedule::{burst_report, BurstParams, BurstReport, Schedule};
use lis_sim::{
    CompiledProgram, CompiledSim, CoreModel, LisSimulator, McKernel, Passthrough, QueueMode,
    StallSpec,
};
use lis_sweep::{
    pareto_front, BurstAxis, CapacityAxis, PointReport, StallAxis, StationGoal, Sweep, SweepMode,
    SweepSpec,
};

type CliResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
usage: lis [--threads N] <command> ...

analysis commands (local, netlist from a file):
  analyze  <netlist> [--schedule] [--burst OFF,ON [--burst-trials N]
                     [--burst-cycles N] [--burst-seed S]]
                                         throughput analysis + topology class;
                                         --schedule derives the explicit
                                         periodic firing schedule (balanced
                                         binary words) and per-channel queue
                                         occupancy bounds; --burst runs the
                                         Monte-Carlo kernel under Markov
                                         on/off sources (OFF,ON per-mille
                                         switch probabilities) and checks the
                                         observed occupancy against the
                                         schedule caps
  qs       <netlist> [--exact] [--apply OUT]
  insert   <netlist> [--budget N] [--apply OUT]
  repair   <netlist> [--slot-cost X] [--station-cost Y] [--apply OUT]
  simulate <netlist> [--steps N] [--kernel reference|compiled]
                     [--trials N] [--seed S] [--stall P]
                                         cycle-accurate simulation; the
                                         compiled kernel adds Monte-Carlo
                                         mode: --trials N seeded trials
                                         (--seed S, default 0) under uniform
                                         stall probability P (--stall,
                                         default 0), 64 trials per machine
                                         word, reported against the θ bound
  sweep    <netlist> [--cap CH=V1,V2,..]... [--budget N] [--qs [--exact]]
                     [--stalls P1,P2,.. [--trials N] [--cycles N] [--seed S]]
                     [--bursts P1,P2,.. [--burst-on P]]
                                         design-space exploration: expand the
                                         capacity x station grid, evaluate
                                         every point on warm incremental
                                         solvers, and print the result table
                                         plus the Pareto front (throughput
                                         vs. total capacity vs. stations).
                                         --cap repeats per channel axis;
                                         --stalls adds seeded Monte-Carlo
                                         stall points (probability per mille);
                                         --bursts adds Markov on/off source
                                         points (OFF per-mille list, shared
                                         --burst-on / --trials / --cycles /
                                         --seed)
  vcd      <netlist> [--steps N]         waveform dump to stdout (GTKWave)
  dot      <netlist> [--doubled]

server commands (analysis as a service):
  serve  <addr> [--queue N] [--cache N] [--timeout-ms N] [--max-conns N]
                [--front epoll|threaded] [--faults SPEC]
                [--store DIR [--store-cap N]]
                                         run the analysis daemon on addr
                                         (e.g. 127.0.0.1:7171); --front picks
                                         the connection tier (default epoll:
                                         one readiness event loop holds every
                                         connection; threaded: one thread per
                                         connection); --faults (or
                                         the LIS_FAULTS env var) arms
                                         deterministic fault injection, e.g.
                                         panic:0.01,slow_read:5ms,truncate:0.02;
                                         --store spills answers to a durable
                                         content-addressed store in DIR and
                                         warm-loads it on startup (--store-cap
                                         bounds on-disk entries, default 65536)
  gateway <addr> [--shards N] [--join a,b,...] [--shard-threads T]
                 [--queue N] [--cache N] [--probe-ms N] [--no-hedge]
                 [--hedge-rate R] [--hedge-seed S] [--front epoll|threaded]
                 [--store DIR] [--no-replicate]
                                         front a sharded cluster on addr:
                                         spawn and supervise N local shard
                                         daemons (default), or --join
                                         already-running daemons; requests
                                         route by rendezvous hashing with
                                         failover and (seeded) hedging;
                                         --store gives each spawned shard a
                                         durable result store under DIR (one
                                         subdirectory per shard name);
                                         answers replicate to the runner-up
                                         shard for warm failover reads unless
                                         --no-replicate
  client <addr> analyze|qs|insert|dot <netlist> [--exact] [--budget N] [--doubled]
                [--schedule] [--burst OFF,ON ...]
                                         run one request against a daemon or
                                         gateway (transient failures are
                                         retried; --retries N caps them,
                                         default 3); exits 2 on a 4xx
                                         answer, 3 on a 5xx answer
  client <addr> sweep <netlist> [sweep flags]
                                         run one design-space sweep against a
                                         daemon or gateway and print the
                                         streamed NDJSON rows; a shed sweep
                                         (503 with a retry hint) prints the
                                         Retry-After delay and exits 4
  client <addr> metrics                  print the Prometheus exposition
  client <addr> health                   print the /healthz readiness JSON
  client <addr> shutdown                 drain the daemon and stop it

global options:
  --threads N    cap the worker/analysis thread pool at N threads
                 (default: LIS_THREADS env var, then available parallelism);
                 `serve` uses this as its worker-pool size
  --engine E     MCM algorithm for throughput analysis: howard (default),
                 karp, or lawler; all three give identical answers.
                 `client` forwards the choice to the daemon
";

/// Parses the command line and runs the selected command.
pub fn dispatch(args: &[String]) -> CliResult {
    let args = apply_threads_flag(args)?;
    let (args, engine) = apply_engine_flag(&args)?;
    let Some(command) = args.first() else {
        return Err(USAGE.into());
    };
    match command.as_str() {
        "serve" => return serve(&args[1..]),
        "gateway" => return gateway_cmd(&args[1..]),
        "client" => return client_cmd(&args[1..], engine),
        _ => {}
    }
    let Some(path) = args.get(1) else {
        return Err(format!("missing netlist path\n{USAGE}").into());
    };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sys = parse_netlist(&text)?;
    let rest = &args[2..];
    match command.as_str() {
        "analyze" => analyze(&sys, rest, engine),
        "qs" => qs(&sys, rest, engine),
        "insert" => insert(&sys, rest),
        "repair" => repair_cmd(&sys, rest),
        "simulate" => simulate(&sys, rest),
        "sweep" => sweep_cmd(&sys, rest, engine),
        "vcd" => vcd(&sys, rest),
        "dot" => dot(&sys, rest),
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    }
}

/// Strips a global `--threads N` flag (anywhere on the line) and applies it
/// process-wide via [`lis_par::set_max_threads`].
fn apply_threads_flag(args: &[String]) -> Result<Vec<String>, Box<dyn Error>> {
    let mut out = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--threads" {
            let v = iter.next().ok_or("--threads needs a value")?;
            let n: usize = v
                .parse()
                .map_err(|e| format!("--threads: {e} (got {v:?})"))?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            lis_par::set_max_threads(n);
        } else {
            out.push(a.clone());
        }
    }
    Ok(out)
}

/// Strips a global `--engine NAME` flag (anywhere on the line) and returns
/// the selected MCM engine, defaulting to [`McmEngine::Howard`].
fn apply_engine_flag(args: &[String]) -> Result<(Vec<String>, McmEngine), Box<dyn Error>> {
    let mut out = Vec::with_capacity(args.len());
    let mut engine = McmEngine::default();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--engine" {
            let v = iter.next().ok_or("--engine needs a value")?;
            engine = v.parse().map_err(|e| format!("--engine: {e}"))?;
        } else {
            out.push(a.clone());
        }
    }
    Ok((out, engine))
}

fn serve(rest: &[String]) -> CliResult {
    let Some(addr) = rest.first() else {
        return Err(format!("serve needs a listen address\n{USAGE}").into());
    };
    let rest = &rest[1..];
    // --faults wins over the LIS_FAULTS environment variable.
    let fault_spec = Some(option(rest, "--faults", String::new())?)
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("LIS_FAULTS").ok().filter(|s| !s.is_empty()));
    let faults = fault_spec
        .as_deref()
        .map(|spec| lis_server::FaultPlan::parse(spec).map(std::sync::Arc::new))
        .transpose()
        .map_err(|e| format!("--faults: {e}"))?;
    let store_dir = Some(option(rest, "--store", String::new())?)
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from);
    let config = lis_server::ServerConfig {
        workers: lis_par::max_threads(),
        queue_capacity: option(rest, "--queue", 256usize)?,
        cache_capacity: option(rest, "--cache", 4096usize)?,
        request_timeout: std::time::Duration::from_millis(option(rest, "--timeout-ms", 30_000u64)?),
        max_connections: option(rest, "--max-conns", 1024usize)?,
        front: front_flag(rest)?,
        faults,
        store_dir,
        store_capacity: option(rest, "--store-cap", 65_536usize)?,
        ..lis_server::ServerConfig::default()
    };
    let workers = config.workers;
    let chaos = config.faults.is_some();
    let durable = config.store_dir.is_some();
    let server = lis_server::Server::bind(addr.as_str(), config)?;
    println!(
        "lis-server listening on {} ({} worker(s){}{}; POST /shutdown to stop)",
        server.local_addr()?,
        workers,
        if durable { "; durable store armed" } else { "" },
        if chaos { "; FAULT INJECTION ARMED" } else { "" }
    );
    server.run()?;
    println!("lis-server drained and stopped");
    Ok(())
}

/// A daemon answered with a non-200 status. Carried as its own error type
/// so `main` can map the status class to a distinct exit code (2 for 4xx,
/// 3 for 5xx) — shell scripts and CI gate on it.
#[derive(Debug)]
pub struct StatusError {
    /// The HTTP status the daemon answered with.
    pub status: u16,
    /// Set when a sweep was shed (503 with a retry hint in the body):
    /// `main` maps it to exit code 4 so callers back off and retry
    /// instead of treating the service as down.
    pub retry_after_ms: Option<u64>,
}

impl std::fmt::Display for StatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server answered {}", self.status)
    }
}

impl Error for StatusError {}

fn gateway_cmd(rest: &[String]) -> CliResult {
    use lis_gateway::{Backends, ChildSpec, Gateway, GatewayConfig, HedgeConfig};
    let Some(addr) = rest.first() else {
        return Err(format!("gateway needs a listen address\n{USAGE}").into());
    };
    let rest = &rest[1..];
    let join = option(rest, "--join", String::new())?;
    let (backends, shard_count) = if join.is_empty() {
        let count: usize = option(rest, "--shards", 3usize)?;
        let spec = ChildSpec {
            program: std::env::current_exe()?,
            workers: option(rest, "--shard-threads", lis_par::max_threads())?,
            queue_capacity: option(rest, "--queue", 256usize)?,
            cache_capacity: option(rest, "--cache", 4096usize)?,
            store_dir: Some(option(rest, "--store", String::new())?)
                .filter(|s| !s.is_empty())
                .map(std::path::PathBuf::from),
        };
        (Backends::Spawn { spec, count }, count)
    } else {
        let addrs = join
            .split(',')
            .map(|a| a.trim().parse())
            .collect::<Result<Vec<std::net::SocketAddr>, _>>()
            .map_err(|e| format!("--join: {e}"))?;
        let count = addrs.len();
        (Backends::Join(addrs), count)
    };
    let hedge = if flag(rest, "--no-hedge") {
        None
    } else {
        let defaults = HedgeConfig::default();
        Some(HedgeConfig {
            rate: option(rest, "--hedge-rate", defaults.rate)?,
            seed: option(rest, "--hedge-seed", defaults.seed)?,
            ..defaults
        })
    };
    let hedging = hedge.is_some();
    let config = GatewayConfig {
        probe_interval: std::time::Duration::from_millis(option(rest, "--probe-ms", 150u64)?),
        hedge,
        front: front_flag(rest)?,
        replicate: !flag(rest, "--no-replicate"),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind(addr.as_str(), backends, config)?;
    println!(
        "lis-gateway listening on {} ({} shard(s){}; POST /shutdown to stop)",
        gateway.local_addr()?,
        shard_count,
        if hedging { "; hedging armed" } else { "" }
    );
    gateway.run()?;
    println!("lis-gateway drained and stopped");
    Ok(())
}

fn client_cmd(rest: &[String], engine: McmEngine) -> CliResult {
    use lis_server::{Json, RetryPolicy, RetryingClient};
    let (Some(addr), Some(cmd)) = (rest.first(), rest.get(1)) else {
        return Err(format!("client needs an address and a command\n{USAGE}").into());
    };
    let retries: u32 = option(rest, "--retries", 3u32)?;
    let policy = RetryPolicy {
        max_attempts: retries.saturating_add(1),
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::connect(addr.as_str(), policy)?;
    match cmd.as_str() {
        "metrics" => {
            print!("{}", client.metrics()?);
            Ok(())
        }
        "health" => {
            let response = client.request("GET", "/healthz", b"")?;
            println!("{}", String::from_utf8_lossy(&response.body));
            if response.status != 200 {
                return Err(Box::new(StatusError {
                    status: response.status,
                    retry_after_ms: None,
                }));
            }
            Ok(())
        }
        "shutdown" => {
            let status = client.shutdown()?;
            if status != 200 {
                return Err(Box::new(StatusError {
                    status,
                    retry_after_ms: None,
                }));
            }
            println!("server is draining");
            Ok(())
        }
        route @ ("analyze" | "qs" | "insert" | "dot") => {
            let Some(path) = rest.get(2) else {
                return Err(format!("client {route} needs a netlist path\n{USAGE}").into());
            };
            let netlist =
                fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let flags = &rest[3..];
            let mut options: Vec<(String, Json)> = Vec::new();
            if matches!(route, "analyze" | "qs") && engine != McmEngine::default() {
                options.push(("engine".into(), Json::Str(engine.to_string())));
            }
            if flag(flags, "--exact") {
                options.push(("exact".into(), Json::Bool(true)));
            }
            if flag(flags, "--doubled") {
                options.push(("doubled".into(), Json::Bool(true)));
            }
            if let Some(i) = flags.iter().position(|a| a == "--budget") {
                let v = flags.get(i + 1).ok_or("--budget needs a value")?;
                let n: u64 = v.parse().map_err(|e| format!("--budget: {e}"))?;
                options.push(("budget".into(), Json::Num(n as f64)));
            }
            if route == "analyze" {
                if flag(flags, "--schedule") {
                    options.push(("schedule".into(), Json::Bool(true)));
                }
                if let Some(p) = parse_burst_params(flags)? {
                    options.push((
                        "burst".into(),
                        Json::Obj(vec![
                            (
                                "off_per_mille".into(),
                                Json::Num(f64::from(p.off_per_mille)),
                            ),
                            ("on_per_mille".into(), Json::Num(f64::from(p.on_per_mille))),
                            ("trials".into(), Json::Num(f64::from(p.trials))),
                            ("cycles".into(), Json::Num(p.cycles as f64)),
                            ("seed".into(), Json::Num(p.seed as f64)),
                        ]),
                    ));
                }
            }
            let options = if options.is_empty() {
                Json::Null
            } else {
                Json::Obj(options)
            };
            let (status, body) = client.analysis(route, &netlist, options)?;
            println!("{body}");
            if status != 200 {
                return Err(Box::new(StatusError {
                    status,
                    retry_after_ms: None,
                }));
            }
            Ok(())
        }
        "sweep" => {
            let Some(path) = rest.get(2) else {
                return Err(format!("client sweep needs a netlist path\n{USAGE}").into());
            };
            let netlist =
                fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let flags = parse_sweep_flags(&rest[3..])?;
            let (status, body) = client.sweep(&netlist, sweep_options(&flags, engine))?;
            let text = String::from_utf8_lossy(&body);
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
            if status != 200 {
                // The retry hint rides in the JSON body (intermediaries
                // relay status + body but may drop the Retry-After header).
                let parsed = Json::parse(text.trim()).ok();
                let retry_after_ms = parsed.as_ref().and_then(|j| {
                    j.get("error")
                        .unwrap_or(j)
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                });
                if let Some(ms) = retry_after_ms {
                    eprintln!("sweep shed: all sweep slots are busy; retry after {ms} ms");
                }
                return Err(Box::new(StatusError {
                    status,
                    retry_after_ms,
                }));
            }
            Ok(())
        }
        other => Err(format!("unknown client command {other:?}\n{USAGE}").into()),
    }
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

/// Parses the `--front epoll|threaded` connection-tier flag (default epoll).
fn front_flag(rest: &[String]) -> Result<lis_server::FrontTier, String> {
    let v: String = option(rest, "--front", "epoll".to_string())?;
    lis_server::FrontTier::parse(&v)
        .ok_or_else(|| format!("--front: unknown tier {v:?} (known: epoll, threaded)"))
}

fn option<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match rest.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => {
            let v = rest
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?;
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
    }
}

/// Sweep grid parameters shared by the local `sweep` command and
/// `client sweep` — parsed once, then lowered to a [`SweepSpec`] (local)
/// or the `/sweep` options JSON (remote).
struct SweepFlags {
    qs: bool,
    exact: bool,
    caps: Vec<(usize, Vec<u64>)>,
    budget: Option<u32>,
    stalls: Option<StallFlags>,
    bursts: Option<BurstAxis>,
}

struct StallFlags {
    per_mille: Vec<u32>,
    trials: u32,
    cycles: u64,
    seed: u64,
}

/// Collects every value of a repeatable `NAME VALUE` flag.
fn option_all<'a>(rest: &'a [String], name: &str) -> Result<Vec<&'a str>, String> {
    let mut out = Vec::new();
    let mut iter = rest.iter();
    while let Some(a) = iter.next() {
        if a == name {
            out.push(
                iter.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .as_str(),
            );
        }
    }
    Ok(out)
}

/// Parses one `--cap CHANNEL=V1,V2,...` axis.
fn parse_cap_axis(s: &str) -> Result<(usize, Vec<u64>), String> {
    let (ch, vals) = s
        .split_once('=')
        .ok_or_else(|| format!("--cap wants CHANNEL=V1,V2,... (got {s:?})"))?;
    let channel = ch
        .trim()
        .parse()
        .map_err(|e| format!("--cap channel: {e}"))?;
    let values = vals
        .split(',')
        .map(|v| v.trim().parse().map_err(|e| format!("--cap value: {e}")))
        .collect::<Result<Vec<u64>, String>>()?;
    Ok((channel, values))
}

fn parse_sweep_flags(rest: &[String]) -> Result<SweepFlags, Box<dyn Error>> {
    let caps = option_all(rest, "--cap")?
        .into_iter()
        .map(parse_cap_axis)
        .collect::<Result<Vec<_>, _>>()?;
    let budget = if flag(rest, "--budget") {
        Some(option(rest, "--budget", 0u32)?)
    } else {
        None
    };
    let stalls = match rest.iter().position(|a| a == "--stalls") {
        None => None,
        Some(i) => {
            let list = rest.get(i + 1).ok_or("--stalls needs a value")?;
            let per_mille = list
                .split(',')
                .map(|v| v.trim().parse().map_err(|e| format!("--stalls: {e}")))
                .collect::<Result<Vec<u32>, String>>()?;
            Some(StallFlags {
                per_mille,
                trials: option(rest, "--trials", 64u32)?,
                cycles: option(rest, "--cycles", 10_000u64)?,
                seed: option(rest, "--seed", 0u64)?,
            })
        }
    };
    let bursts = match rest.iter().position(|a| a == "--bursts") {
        None => None,
        Some(i) => {
            let list = rest.get(i + 1).ok_or("--bursts needs a value")?;
            let off_per_mille = list
                .split(',')
                .map(|v| v.trim().parse().map_err(|e| format!("--bursts: {e}")))
                .collect::<Result<Vec<u32>, String>>()?;
            Some(BurstAxis {
                off_per_mille,
                on_per_mille: option(rest, "--burst-on", 300u32)?,
                trials: option(rest, "--trials", 64u32)?,
                cycles: option(rest, "--cycles", 10_000u64)?,
                seed: option(rest, "--seed", 0u64)?,
            })
        }
    };
    Ok(SweepFlags {
        qs: flag(rest, "--qs"),
        exact: flag(rest, "--exact"),
        caps,
        budget,
        stalls,
        bursts,
    })
}

impl SweepFlags {
    fn to_spec(&self, engine: McmEngine) -> SweepSpec {
        let mut spec = SweepSpec::analyze();
        spec.engine = engine;
        if self.qs {
            spec.mode = SweepMode::Qs { exact: self.exact };
        }
        spec.capacities = self
            .caps
            .iter()
            .map(|(channel, values)| CapacityAxis {
                channel: *channel,
                values: values.clone(),
            })
            .collect();
        if let Some(b) = self.budget {
            spec.stations = StationGoal::Budget(b);
        }
        spec.stalls = self.stalls.as_ref().map(|s| StallAxis {
            per_mille: s.per_mille.clone(),
            trials: s.trials,
            cycles: s.cycles,
            seed: s.seed,
        });
        spec.bursts = self.bursts.clone();
        spec
    }
}

/// Lowers the parsed flags to the `/sweep` options envelope the daemon's
/// decoder expects (`crates/server/src/jobs.rs`).
fn sweep_options(flags: &SweepFlags, engine: McmEngine) -> lis_server::Json {
    use lis_server::Json;
    let mut o: Vec<(String, Json)> = Vec::new();
    if engine != McmEngine::default() {
        o.push(("engine".into(), Json::Str(engine.to_string())));
    }
    if flags.qs {
        o.push(("mode".into(), Json::str("qs")));
        if flags.exact {
            o.push(("exact".into(), Json::Bool(true)));
        }
    }
    if !flags.caps.is_empty() {
        let axes = flags
            .caps
            .iter()
            .map(|(c, vs)| {
                Json::Obj(vec![
                    ("channel".into(), Json::Num(*c as f64)),
                    (
                        "values".into(),
                        Json::Arr(vs.iter().map(|v| Json::Num(*v as f64)).collect()),
                    ),
                ])
            })
            .collect();
        o.push(("capacities".into(), Json::Arr(axes)));
    }
    if let Some(b) = flags.budget {
        o.push(("budget".into(), Json::Num(f64::from(b))));
    }
    if let Some(s) = &flags.stalls {
        o.push((
            "stalls".into(),
            Json::Obj(vec![
                (
                    "per_mille".into(),
                    Json::Arr(
                        s.per_mille
                            .iter()
                            .map(|p| Json::Num(f64::from(*p)))
                            .collect(),
                    ),
                ),
                ("trials".into(), Json::Num(f64::from(s.trials))),
                ("cycles".into(), Json::Num(s.cycles as f64)),
                ("seed".into(), Json::Num(s.seed as f64)),
            ]),
        ));
    }
    if let Some(b) = &flags.bursts {
        o.push((
            "bursts".into(),
            Json::Obj(vec![
                (
                    "off_per_mille".into(),
                    Json::Arr(
                        b.off_per_mille
                            .iter()
                            .map(|p| Json::Num(f64::from(*p)))
                            .collect(),
                    ),
                ),
                ("on_per_mille".into(), Json::Num(f64::from(b.on_per_mille))),
                ("trials".into(), Json::Num(f64::from(b.trials))),
                ("cycles".into(), Json::Num(b.cycles as f64)),
                ("seed".into(), Json::Num(b.seed as f64)),
            ]),
        ));
    }
    if o.is_empty() {
        lis_server::Json::Null
    } else {
        Json::Obj(o)
    }
}

fn sweep_cmd(sys: &LisSystem, rest: &[String], engine: McmEngine) -> CliResult {
    let spec = parse_sweep_flags(rest)?.to_spec(engine);
    let sweep = Sweep::new(sys.clone(), spec)?;
    let (rows, summary) = sweep.evaluate();
    println!(
        "sweep: {} point(s) in {} station group(s), engine {engine}",
        summary.points, summary.groups
    );
    for row in &rows {
        let mut line = format!(
            "  point {:>3} | stations {} | capacity {:>4} | ",
            row.point, row.inserted, row.total_capacity
        );
        match &row.outcome {
            Ok(PointReport::Analyze(r)) => {
                line.push_str(&format!(
                    "practical MST {}{}",
                    r.practical,
                    if r.is_degraded() { " (degraded)" } else { "" }
                ));
            }
            Ok(PointReport::Qs(r)) => {
                line.push_str(&format!(
                    "qs target {} (+{} slot(s){})",
                    r.target,
                    r.total_extra,
                    if r.optimal { ", optimal" } else { "" }
                ));
            }
            Err(e) => line.push_str(&format!("error: {e}")),
        }
        for p in &row.sim {
            line.push_str(&format!(
                " | stall {:.3}: mean rate {:.4}",
                f64::from(p.per_mille) / 1000.0,
                p.mean_rate
            ));
        }
        for p in &row.burst {
            line.push_str(&format!(
                " | burst off {:.3}: mean rate {:.4}, peak occupancy {}",
                f64::from(p.off_per_mille) / 1000.0,
                p.mean_rate,
                p.peak_occupancy
            ));
        }
        println!("{line}");
    }
    let front = pareto_front(&rows);
    println!(
        "Pareto front (throughput vs. total capacity vs. stations), {} of {} point(s):",
        front.len(),
        rows.len()
    );
    for &i in &front {
        let row = &rows[i];
        let theta = row
            .throughput()
            .map_or_else(|| "-".to_string(), |r| r.to_string());
        println!(
            "  point {:>3}: throughput {theta}, total capacity {}, stations {}",
            row.point,
            row.capacity_cost(),
            row.inserted
        );
    }
    println!(
        "warm solver: {} memo hit(s), {} miss(es)",
        summary.warm_hits, summary.warm_misses
    );
    Ok(())
}

fn analyze(sys: &LisSystem, rest: &[String], engine: McmEngine) -> CliResult {
    print!("{sys}");
    let report = lis_core::explain_with(sys, engine);
    print!("{report}");
    if report.is_degraded() {
        for c in &report.bottleneck_queues {
            println!(
                "  bottleneck queue: channel {} -> {}",
                sys.block_name(sys.channel_from(*c)),
                sys.block_name(sys.channel_to(*c))
            );
        }
        println!("hint: run `lis qs` to size the queues or `lis insert` to place relay stations");
    } else {
        println!("no throughput degradation from backpressure");
    }
    if flag(rest, "--schedule") {
        print_schedule(sys, &Schedule::compute(sys, engine)?);
    }
    if let Some(params) = parse_burst_params(rest)? {
        print_burst(sys, &burst_report(sys, &params));
    }
    Ok(())
}

/// Parses the `--burst OFF,ON` Markov-source flag (probabilities per
/// mille) and its `--burst-trials/--burst-cycles/--burst-seed` companions.
fn parse_burst_params(rest: &[String]) -> Result<Option<BurstParams>, Box<dyn Error>> {
    let Some(i) = rest.iter().position(|a| a == "--burst") else {
        return Ok(None);
    };
    let v = rest.get(i + 1).ok_or("--burst needs a value")?;
    let (off, on) = v
        .split_once(',')
        .ok_or_else(|| format!("--burst wants OFF,ON per-mille probabilities (got {v:?})"))?;
    let defaults = BurstParams::default();
    let params = BurstParams {
        off_per_mille: off
            .trim()
            .parse()
            .map_err(|e| format!("--burst off: {e}"))?,
        on_per_mille: on.trim().parse().map_err(|e| format!("--burst on: {e}"))?,
        trials: option(rest, "--burst-trials", defaults.trials)?,
        cycles: option(rest, "--burst-cycles", defaults.cycles)?,
        seed: option(rest, "--burst-seed", defaults.seed)?,
    };
    if params.off_per_mille > 1000 || params.on_per_mille == 0 || params.on_per_mille > 1000 {
        return Err("--burst probabilities are per mille: OFF <= 1000, 1 <= ON <= 1000".into());
    }
    if params.trials == 0 || params.cycles == 0 {
        return Err("--burst-trials and --burst-cycles must be positive".into());
    }
    Ok(Some(params))
}

/// Prints a periodic firing schedule: the system throughput, one balanced
/// binary word per transition, and the per-channel occupancy bounds.
fn print_schedule(sys: &LisSystem, s: &Schedule) {
    println!(
        "schedule ({} engine): throughput {}, transient {} step(s), period {} step(s)",
        s.engine, s.throughput, s.transient, s.period
    );
    for t in &s.transitions {
        let word: String = t.word.iter().map(|&f| if f { '1' } else { '0' }).collect();
        let phase = t.phase.map_or_else(|| "-".to_string(), |p| p.to_string());
        println!(
            "  {:<12} rate {} ({} firing(s)/period)  word {word}  phase {phase}",
            t.name, t.rate, t.firings_per_period
        );
    }
    for b in &s.bounds {
        println!(
            "  queue {} -> {}: peak occupancy {} (cap {})",
            sys.block_name(sys.channel_from(b.channel)),
            sys.block_name(sys.channel_to(b.channel)),
            b.peak,
            b.cap
        );
    }
}

/// Prints a bursty-source Monte-Carlo report against the schedule caps.
fn print_burst(sys: &LisSystem, r: &BurstReport) {
    println!(
        "burst (off {}‰, on {}‰, {} trial(s) x {} cycle(s), seed {}): \
         mean rate {:.4} [{:.4}, {:.4}]",
        r.params.off_per_mille,
        r.params.on_per_mille,
        r.params.trials,
        r.params.cycles,
        r.params.seed,
        r.mean_rate,
        r.min_rate,
        r.max_rate
    );
    for o in &r.occupancy {
        println!(
            "  queue {} -> {}: max occupancy {} of cap {}",
            sys.block_name(sys.channel_from(o.channel)),
            sys.block_name(sys.channel_to(o.channel)),
            o.max,
            o.cap
        );
    }
    println!(
        "occupancy {} the schedule caps",
        if r.within_caps() {
            "stayed within"
        } else {
            "EXCEEDED"
        }
    );
}

fn qs(sys: &LisSystem, rest: &[String], engine: McmEngine) -> CliResult {
    let algo = if flag(rest, "--exact") {
        Algorithm::Exact
    } else {
        Algorithm::Heuristic
    };
    let cfg = QsConfig {
        engine,
        ..QsConfig::default()
    };
    let report = solve(sys, algo, &cfg)?;
    println!(
        "target MST {} | before {} | deficient cycles {}",
        report.target, report.practical_before, report.deficient_cycles
    );
    if report.total_extra == 0 {
        println!("queues are already large enough");
        return Ok(());
    }
    println!(
        "{:?} solution: {} extra slot(s){}",
        algo,
        report.total_extra,
        if report.optimal { " (optimal)" } else { "" }
    );
    for (c, w) in &report.extra_tokens {
        println!(
            "  channel {} -> {}: queue {} -> {}",
            sys.block_name(sys.channel_from(*c)),
            sys.block_name(sys.channel_to(*c)),
            sys.queue_capacity(*c),
            sys.queue_capacity(*c) + w
        );
    }
    if !verify_solution(sys, &report) {
        return Err("internal error: solution failed verification".into());
    }
    println!("verified: resized system reaches MST {}", report.target);
    if let Some(out) = rest
        .iter()
        .position(|a| a == "--apply")
        .and_then(|i| rest.get(i + 1))
    {
        let mut resized = sys.clone();
        lis_qs::apply_solution(&mut resized, &report);
        fs::write(out, to_netlist(&resized))?;
        println!("resized netlist written to {out}");
    }
    Ok(())
}

fn insert(sys: &LisSystem, rest: &[String]) -> CliResult {
    let budget: u32 = option(rest, "--budget", 2)?;
    // Exhaustive search is exponential in the budget; fall back to greedy
    // plus DAG equalization on larger systems.
    let exhaustive_feasible = (sys.channel_count() as u64).pow(budget.min(6)) <= 2_000_000;
    let result = if exhaustive_feasible {
        println!("exhaustive search over {budget} insertion(s):");
        exhaustive_insertion(sys, budget)
    } else {
        println!("greedy search over {budget} insertion(s):");
        greedy_insertion(sys, budget)
    };
    println!(
        "best practical MST {} (ideal after insertion {}) with {} station(s)",
        result.practical, result.ideal, result.inserted
    );
    for (c, n) in &result.placements {
        println!(
            "  +{n} on channel {} -> {}",
            sys.block_name(sys.channel_from(*c)),
            sys.block_name(sys.channel_to(*c))
        );
    }
    if let Some(balanced) = equalize_dag(sys) {
        println!(
            "DAG equalization alternative: {} extra station(s), practical MST {}",
            balanced.relay_station_count() - sys.relay_station_count(),
            practical_mst(&balanced)
        );
    }
    if let Some(out) = rest
        .iter()
        .position(|a| a == "--apply")
        .and_then(|i| rest.get(i + 1))
    {
        let mut modified = sys.clone();
        lis_rsopt::apply_insertion(&mut modified, &result);
        fs::write(out, to_netlist(&modified))?;
        println!("modified netlist written to {out}");
    }
    Ok(())
}

fn repair_cmd(sys: &LisSystem, rest: &[String]) -> CliResult {
    use lis_rsopt::{repair, CostModel, RepairOptions, RepairPlan};
    let options = RepairOptions {
        costs: CostModel {
            per_queue_slot: option(rest, "--slot-cost", 1.0)?,
            per_relay_station: option(rest, "--station-cost", 2.0)?,
        },
        ..RepairOptions::default()
    };
    let plan = repair(sys, &options)?;
    match &plan {
        RepairPlan::NothingToDo => println!("system already runs at its ideal MST"),
        RepairPlan::QueueSizing { extra_slots, cost } => {
            println!("cheapest repair: queue sizing (cost {cost})");
            for (c, w) in extra_slots {
                println!(
                    "  +{w} slot(s) on channel {} -> {}",
                    sys.block_name(sys.channel_from(*c)),
                    sys.block_name(sys.channel_to(*c))
                );
            }
        }
        RepairPlan::Insertion { stations, cost } => {
            println!("cheapest repair: relay-station insertion (cost {cost})");
            for (c, n) in stations {
                println!(
                    "  +{n} station(s) on channel {} -> {}",
                    sys.block_name(sys.channel_from(*c)),
                    sys.block_name(sys.channel_to(*c))
                );
            }
        }
    }
    if let Some(out) = rest
        .iter()
        .position(|a| a == "--apply")
        .and_then(|i| rest.get(i + 1))
    {
        let mut fixed = sys.clone();
        plan.apply(&mut fixed);
        fs::write(out, to_netlist(&fixed))?;
        println!("repaired netlist written to {out}");
    }
    Ok(())
}

fn simulate(sys: &LisSystem, rest: &[String]) -> CliResult {
    let steps: u64 = option(rest, "--steps", 10_000)?;
    let kernel: String = option(rest, "--kernel", "reference".to_string())?;
    let trials: usize = option(rest, "--trials", 1)?;
    let seed: u64 = option(rest, "--seed", 0)?;
    let stall: f64 = option(rest, "--stall", 0.0)?;
    if steps == 0 {
        return Err("--steps must be at least 1".into());
    }
    if trials == 0 {
        return Err("--trials must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&stall) {
        return Err("--stall must be a probability in [0, 1]".into());
    }
    match kernel.as_str() {
        "reference" => {
            if trials > 1 || stall > 0.0 {
                return Err("--trials/--stall require --kernel compiled".into());
            }
            simulate_reference(sys, steps)
        }
        "compiled" => simulate_compiled(sys, steps, trials, seed, stall),
        other => Err(format!("unknown kernel {other:?}; known: reference, compiled").into()),
    }
}

fn simulate_reference(sys: &LisSystem, steps: u64) -> CliResult {
    let cores: Vec<Box<dyn CoreModel>> = sys
        .block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect();
    let mut sim = LisSimulator::new(sys, cores, QueueMode::Finite);
    let stats = lis_sim::collect_stats(sys, &mut sim, steps);
    println!("simulated {steps} clock periods (pass-through cores, finite queues)");
    println!("analytic practical MST: {}", practical_mst(sys));
    for b in sys.block_ids() {
        println!(
            "  {:<16} fired {:>8} times, rate {:.4}, stalled {:>5.1}%",
            sys.block_name(b),
            sim.firings(b),
            sim.throughput(b).to_f64(),
            100.0 * stats.stall_ratio(b)
        );
    }
    // Channels whose buffering actually filled up.
    let mut saturated = false;
    for c in sys.channel_ids() {
        let hw = stats.queue_high_water(c);
        if hw > sys.queue_capacity(c) {
            if !saturated {
                println!("saturated channels (queue + in-flight item full):");
                saturated = true;
            }
            println!(
                "  {} -> {} reached {hw} buffered item(s)",
                sys.block_name(sys.channel_from(c)),
                sys.block_name(sys.channel_to(c))
            );
        }
    }
    Ok(())
}

/// The compiled-kernel paths: scalar (one trial, no stalls) or the packed
/// 64-lane Monte-Carlo kernel (seeded trials under uniform stalls).
fn simulate_compiled(
    sys: &LisSystem,
    steps: u64,
    trials: usize,
    seed: u64,
    stall: f64,
) -> CliResult {
    let theta = practical_mst(sys);
    if trials == 1 && stall == 0.0 {
        let mut sim = CompiledSim::new(sys, QueueMode::Finite);
        sim.run(steps);
        println!("simulated {steps} clock periods (compiled kernel, finite queues)");
        println!("analytic practical MST: {theta}");
        for b in sys.block_ids() {
            println!(
                "  {:<16} fired {:>8} times, rate {:.4}",
                sys.block_name(b),
                sim.firings(b),
                sim.throughput(b).to_f64()
            );
        }
        return Ok(());
    }
    let prog = CompiledProgram::compile(sys, QueueMode::Finite);
    let spec = StallSpec::uniform(&prog, stall);
    let report = McKernel::new(prog, spec, seed).run(trials, steps);
    println!(
        "simulated {trials} Monte-Carlo trial(s) x {steps} periods \
         (compiled 64-lane kernel, stall p={stall}, seed {seed})"
    );
    println!("analytic practical MST (θ bound): {theta}");
    println!(
        "system rate over trials: mean {:.4}  min {:.4}  max {:.4}",
        report.mean_system_rate(),
        report.min_system_rate(),
        report.max_system_rate()
    );
    for b in sys.block_ids() {
        let mean = (0..trials).map(|i| report.block_rate(b, i)).sum::<f64>() / trials as f64;
        println!("  {:<16} mean rate {mean:.4}", sys.block_name(b));
    }
    Ok(())
}

fn vcd(sys: &LisSystem, rest: &[String]) -> CliResult {
    let steps: u64 = option(rest, "--steps", 200)?;
    let cores: Vec<Box<dyn CoreModel>> = sys
        .block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect();
    let mut sim = LisSimulator::new(sys, cores, QueueMode::Finite);
    sim.run(steps);
    print!("{}", lis_sim::to_vcd(sys, &sim));
    Ok(())
}

fn dot(sys: &LisSystem, rest: &[String]) -> CliResult {
    let model = if flag(rest, "--doubled") {
        LisModel::doubled(sys)
    } else {
        LisModel::ideal(sys)
    };
    print!("{}", marked_graph::dot::to_dot(model.graph()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_fig1() -> tempfile::TempPath {
        let text = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";
        let mut f = tempfile::NamedTempFile::new().expect("tempfile");
        use std::io::Write;
        f.write_all(text.as_bytes()).expect("write");
        f.into_temp_path()
    }

    // tempfile is not among the approved dependencies; use a plain helper
    // instead of the crate.
    mod tempfile {
        use std::path::PathBuf;

        pub struct NamedTempFile {
            path: PathBuf,
            file: std::fs::File,
        }

        pub struct TempPath(PathBuf);

        impl TempPath {
            pub fn to_str(&self) -> &str {
                self.0.to_str().expect("utf-8 path")
            }
        }

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        impl NamedTempFile {
            pub fn new() -> std::io::Result<NamedTempFile> {
                let path = std::env::temp_dir().join(format!(
                    "lis-cli-test-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                let file = std::fs::File::create(&path)?;
                Ok(NamedTempFile { path, file })
            }

            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }

        impl std::io::Write for NamedTempFile {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                std::io::Write::write(&mut self.file, buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                std::io::Write::flush(&mut self.file)
            }
        }
    }

    #[test]
    fn dispatch_rejects_bad_usage() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&["analyze".into()]).is_err());
        assert!(dispatch(&["analyze".into(), "/no/such/file".into()]).is_err());
        let path = write_fig1();
        assert!(dispatch(&["frobnicate".into(), path.to_str().into()]).is_err());
    }

    #[test]
    fn all_commands_run_on_fig1() {
        let path = write_fig1();
        for cmd in ["analyze", "qs", "insert", "dot", "vcd", "repair"] {
            dispatch(&[cmd.into(), path.to_str().into()]).unwrap_or_else(|e| {
                panic!("{cmd} failed: {e}");
            });
        }
        dispatch(&[
            "simulate".into(),
            path.to_str().into(),
            "--steps".into(),
            "500".into(),
        ])
        .expect("simulate");
        dispatch(&["qs".into(), path.to_str().into(), "--exact".into()]).expect("qs --exact");
        dispatch(&["dot".into(), path.to_str().into(), "--doubled".into()]).expect("dot");
    }

    #[test]
    fn analyze_schedule_and_burst_flags_run_on_fig1() {
        let path = write_fig1();
        dispatch(&["analyze".into(), path.to_str().into(), "--schedule".into()])
            .expect("analyze --schedule");
        dispatch(&[
            "analyze".into(),
            path.to_str().into(),
            "--schedule".into(),
            "--burst".into(),
            "100,300".into(),
            "--burst-trials".into(),
            "16".into(),
            "--burst-cycles".into(),
            "200".into(),
            "--burst-seed".into(),
            "3".into(),
        ])
        .expect("analyze --schedule --burst");
        // Malformed burst flags are rejected before any kernel run.
        assert!(dispatch(&["analyze".into(), path.to_str().into(), "--burst".into()]).is_err());
        assert!(dispatch(&[
            "analyze".into(),
            path.to_str().into(),
            "--burst".into(),
            "moose".into(),
        ])
        .is_err());
    }

    #[test]
    fn qs_apply_writes_resized_netlist() {
        let path = write_fig1();
        let out = std::env::temp_dir().join(format!("lis-cli-out-{}", std::process::id()));
        dispatch(&[
            "qs".into(),
            path.to_str().into(),
            "--exact".into(),
            "--apply".into(),
            out.to_str().expect("utf-8").into(),
        ])
        .expect("qs --apply");
        let resized =
            lis_core::parse_netlist(&std::fs::read_to_string(&out).expect("read")).expect("parse");
        assert_eq!(lis_core::practical_mst(&resized), marked_graph::Ratio::ONE);
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn threads_flag_is_stripped_and_applied() {
        // Restore whatever the process-wide budget was before the test.
        let previous = lis_par::set_max_threads(0);
        lis_par::set_max_threads(previous);

        let args: Vec<String> = ["--threads", "3", "analyze", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let stripped = apply_threads_flag(&args).expect("valid flag");
        assert_eq!(stripped, vec!["analyze".to_string(), "x".to_string()]);
        assert_eq!(lis_par::max_threads(), 3);
        lis_par::set_max_threads(previous);

        assert!(apply_threads_flag(&["--threads".to_string()]).is_err());
        assert!(apply_threads_flag(&["--threads".to_string(), "0".to_string()]).is_err());
        assert!(apply_threads_flag(&["--threads".to_string(), "moose".to_string()]).is_err());
    }

    #[test]
    fn engine_flag_is_stripped_and_parsed() {
        let args: Vec<String> = ["analyze", "x", "--engine", "karp"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (stripped, engine) = apply_engine_flag(&args).expect("valid flag");
        assert_eq!(stripped, vec!["analyze".to_string(), "x".to_string()]);
        assert_eq!(engine, McmEngine::Karp);

        let (_, default) = apply_engine_flag(&["analyze".to_string()]).expect("no flag");
        assert_eq!(default, McmEngine::Howard);

        assert!(apply_engine_flag(&["--engine".to_string()]).is_err());
        assert!(apply_engine_flag(&["--engine".to_string(), "dijkstra".to_string()]).is_err());
    }

    #[test]
    fn analysis_commands_accept_every_engine() {
        let path = write_fig1();
        for engine in ["howard", "karp", "lawler"] {
            for cmd in ["analyze", "qs"] {
                dispatch(&[
                    cmd.into(),
                    path.to_str().into(),
                    "--engine".into(),
                    engine.into(),
                ])
                .unwrap_or_else(|e| panic!("{cmd} --engine {engine} failed: {e}"));
            }
        }
    }

    #[test]
    fn serve_and_client_round_trip() {
        // Drive `client` against an in-process daemon; `serve` itself is
        // exercised via its building blocks (Server::bind + run) because it
        // blocks until shutdown.
        let server = lis_server::Server::bind("127.0.0.1:0", lis_server::ServerConfig::default())
            .expect("bind");
        let addr = server.local_addr().expect("addr");
        let daemon = std::thread::spawn(move || server.run());

        let path = write_fig1();
        dispatch(&[
            "client".into(),
            addr.to_string(),
            "analyze".into(),
            path.to_str().into(),
        ])
        .expect("client analyze");
        dispatch(&[
            "client".into(),
            addr.to_string(),
            "qs".into(),
            path.to_str().into(),
            "--exact".into(),
        ])
        .expect("client qs --exact");
        dispatch(&["client".into(), addr.to_string(), "metrics".into()]).expect("client metrics");
        dispatch(&[
            "client".into(),
            addr.to_string(),
            "analyze".into(),
            path.to_str().into(),
            "--retries".into(),
            "0".into(),
        ])
        .expect("client analyze --retries 0");
        dispatch(&[
            "client".into(),
            addr.to_string(),
            "analyze".into(),
            path.to_str().into(),
            "--schedule".into(),
            "--burst".into(),
            "100,300".into(),
            "--burst-trials".into(),
            "16".into(),
            "--burst-cycles".into(),
            "200".into(),
        ])
        .expect("client analyze --schedule --burst");

        // Bad usage surfaces as errors, not panics.
        assert!(dispatch(&["client".into()]).is_err());
        assert!(dispatch(&["client".into(), addr.to_string(), "frobnicate".into()]).is_err());
        assert!(dispatch(&["client".into(), addr.to_string(), "analyze".into()]).is_err());
        assert!(dispatch(&["serve".into()]).is_err());
        // A malformed fault spec is rejected before the daemon binds.
        assert!(dispatch(&[
            "serve".into(),
            "127.0.0.1:0".into(),
            "--faults".into(),
            "panic:moose".into(),
        ])
        .is_err());

        dispatch(&["client".into(), addr.to_string(), "shutdown".into()]).expect("client shutdown");
        daemon.join().expect("daemon").expect("clean exit");
    }

    #[test]
    fn sweep_runs_on_fig1() {
        let path = write_fig1();
        dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "1=1,2,3".into(),
            "--budget".into(),
            "1".into(),
        ])
        .expect("sweep");
        dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "1=1,2".into(),
            "--qs".into(),
            "--exact".into(),
        ])
        .expect("sweep --qs");
        dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--stalls".into(),
            "0,100".into(),
            "--trials".into(),
            "64".into(),
            "--cycles".into(),
            "200".into(),
        ])
        .expect("sweep --stalls");
        dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "1=1,2".into(),
            "--bursts".into(),
            "0,150".into(),
            "--burst-on".into(),
            "300".into(),
            "--trials".into(),
            "64".into(),
            "--cycles".into(),
            "200".into(),
        ])
        .expect("sweep --bursts");
        // Malformed axes are rejected before any evaluation.
        assert!(dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "moose".into(),
        ])
        .is_err());
        assert!(dispatch(&[
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "99=1,2".into(),
        ])
        .is_err());
    }

    #[test]
    fn client_sweep_round_trips_and_sheds_with_a_hint() {
        let server = lis_server::Server::bind(
            "127.0.0.1:0",
            lis_server::ServerConfig {
                max_concurrent_sweeps: 0, // every sweep is shed
                ..lis_server::ServerConfig::default()
            },
        )
        .expect("bind");
        let shed_addr = server.local_addr().expect("addr");
        let shed_daemon = std::thread::spawn(move || server.run());

        let server = lis_server::Server::bind("127.0.0.1:0", lis_server::ServerConfig::default())
            .expect("bind");
        let addr = server.local_addr().expect("addr");
        let daemon = std::thread::spawn(move || server.run());

        let path = write_fig1();
        dispatch(&[
            "client".into(),
            addr.to_string(),
            "sweep".into(),
            path.to_str().into(),
            "--cap".into(),
            "1=1,2".into(),
        ])
        .expect("client sweep");

        // A shed sweep surfaces as a StatusError carrying the body's retry
        // hint — the signal `main` maps to exit code 4.
        let err = dispatch(&[
            "client".into(),
            shed_addr.to_string(),
            "sweep".into(),
            path.to_str().into(),
            "--retries".into(),
            "0".into(),
        ])
        .expect_err("shed sweep fails");
        let status = err.downcast_ref::<StatusError>().expect("status error");
        assert_eq!(status.status, 503);
        assert_eq!(status.retry_after_ms, Some(1000));

        assert!(dispatch(&["client".into(), addr.to_string(), "sweep".into()]).is_err());

        for a in [addr, shed_addr] {
            dispatch(&["client".into(), a.to_string(), "shutdown".into()]).expect("shutdown");
        }
        daemon.join().expect("daemon").expect("clean exit");
        shed_daemon.join().expect("daemon").expect("clean exit");
    }

    #[test]
    fn sweep_flag_parsing() {
        assert_eq!(
            parse_cap_axis("1=1,2,3").expect("parses"),
            (1, vec![1, 2, 3])
        );
        assert!(parse_cap_axis("nope").is_err());
        assert!(parse_cap_axis("x=1").is_err());
        assert!(parse_cap_axis("1=x").is_err());

        let args: Vec<String> = ["--cap", "0=1,2", "--cap", "1=4", "--budget", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_sweep_flags(&args).expect("parses");
        assert_eq!(flags.caps, vec![(0, vec![1, 2]), (1, vec![4])]);
        assert_eq!(flags.budget, Some(2));
        assert!(flags.stalls.is_none());
        assert!(flags.bursts.is_none());
        let spec = flags.to_spec(McmEngine::Karp);
        assert_eq!(spec.engine, McmEngine::Karp);
        assert_eq!(spec.stations, StationGoal::Budget(2));
        // The remote lowering round-trips through the wire decoder shape.
        let json = sweep_options(&flags, McmEngine::Karp).to_string();
        assert!(json.contains("\"capacities\""), "{json}");
        assert!(json.contains("\"budget\""), "{json}");
        assert!(json.contains("\"engine\""), "{json}");

        // The burst axis parses its list plus the shared knobs, lands in
        // the spec, and lowers to the daemon's "bursts" envelope.
        let args: Vec<String> = [
            "--bursts",
            "0,100,250",
            "--burst-on",
            "500",
            "--trials",
            "32",
            "--cycles",
            "400",
            "--seed",
            "9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = parse_sweep_flags(&args).expect("parses");
        let bursts = flags.bursts.clone().expect("burst axis");
        assert_eq!(bursts.off_per_mille, vec![0, 100, 250]);
        assert_eq!(bursts.on_per_mille, 500);
        assert_eq!(bursts.trials, 32);
        assert_eq!(bursts.cycles, 400);
        assert_eq!(bursts.seed, 9);
        assert_eq!(flags.to_spec(McmEngine::Howard).bursts, Some(bursts));
        let json = sweep_options(&flags, McmEngine::Howard).to_string();
        assert!(json.contains("\"bursts\""), "{json}");
        assert!(json.contains("\"off_per_mille\""), "{json}");
        assert!(json.contains("\"on_per_mille\":500"), "{json}");
        assert!(parse_sweep_flags(&["--bursts".to_string()]).is_err());
        assert!(parse_sweep_flags(&["--bursts".to_string(), "moose".to_string()]).is_err());
    }

    #[test]
    fn front_flag_parses_and_rejects() {
        assert_eq!(
            front_flag(&[]).expect("default"),
            lis_server::FrontTier::Epoll
        );
        let args: Vec<String> = ["--front", "threaded"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            front_flag(&args).expect("threaded"),
            lis_server::FrontTier::Threaded
        );
        let bad: Vec<String> = ["--front", "moose"].iter().map(|s| s.to_string()).collect();
        assert!(front_flag(&bad).is_err());
    }

    #[test]
    fn option_parsing() {
        let rest = vec!["--budget".to_string(), "3".to_string()];
        assert_eq!(option(&rest, "--budget", 2u32).expect("parses"), 3);
        assert_eq!(option(&rest, "--steps", 7u64).expect("default"), 7);
        assert!(option::<u32>(&["--budget".to_string()], "--budget", 2).is_err());
        assert!(flag(&rest, "--budget"));
        assert!(!flag(&rest, "--exact"));
    }
}
