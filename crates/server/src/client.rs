//! A small blocking client for the daemon's wire protocol, used by
//! `lis client`, the end-to-end tests, and the `loadgen` workload driver.
//!
//! One [`Client`] owns one persistent (keep-alive) connection; requests on
//! it are strictly sequential. Drop the client to close the connection.
//!
//! [`RetryingClient`] wraps the same API in a [`RetryPolicy`]: transient
//! failures (connection reset, shed 503, timed-out 504, crashed-worker
//! 500) are retried with seeded, jittered exponential backoff and the
//! connection is re-established as needed. Client errors (400/422) are
//! **never** retried — resending a malformed netlist cannot fix it.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::http::{read_response, write_request, write_request_with, Response};
use crate::wire::{obj, Json};

/// A persistent connection to a `lis-server` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous guard so a wedged server cannot hang the client forever.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates I/O and HTTP-framing errors.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        write_request(&mut self.writer, method, path, body)?;
        read_response(&mut self.reader)
    }

    /// [`Client::request`] with extra request headers (e.g. a propagated
    /// `X-LIS-Request-Id`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and HTTP-framing errors.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        write_request_with(&mut self.writer, method, path, extra_headers, body)?;
        read_response(&mut self.reader)
    }

    /// POSTs a JSON value, returning the status and parsed JSON body.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; a non-JSON response body surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        let response = self.request("POST", path, body.to_string().as_bytes())?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        let json = Json::parse(text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-JSON response body: {e}"),
            )
        })?;
        Ok((response.status, json))
    }

    /// Issues an analysis request (`route` is `"analyze"`, `"qs"`,
    /// `"insert"`, or `"dot"`) for a netlist text, with request options.
    ///
    /// # Errors
    ///
    /// See [`Client::post_json`].
    pub fn analysis(
        &mut self,
        route: &str,
        netlist: &str,
        options: Json,
    ) -> io::Result<(u16, Json)> {
        let body = obj([("netlist", Json::str(netlist)), ("options", options)]);
        self.post_json(&format!("/{route}"), &body)
    }

    /// Issues a design-space sweep (`POST /sweep`) for a netlist text,
    /// returning the status and the raw NDJSON body. Chunked (streamed)
    /// responses are reassembled transparently by the HTTP layer.
    ///
    /// # Errors
    ///
    /// Propagates I/O and HTTP-framing errors.
    pub fn sweep(&mut self, netlist: &str, options: Json) -> io::Result<(u16, Vec<u8>)> {
        let body = obj([("netlist", Json::str(netlist)), ("options", options)]);
        let response = self.request("POST", "/sweep", body.to_string().as_bytes())?;
        Ok((response.status, response.body))
    }

    /// Fetches the Prometheus exposition from `GET /metrics`.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; a non-200 status or non-UTF-8 body is
    /// [`io::ErrorKind::InvalidData`].
    pub fn metrics(&mut self) -> io::Result<String> {
        let response = self.request("GET", "/metrics", b"")?;
        if response.status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("/metrics answered {}", response.status),
            ));
        }
        String::from_utf8(response.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 metrics"))
    }

    /// Asks the daemon to drain and exit. Returns the response status.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<u16> {
        Ok(self.request("POST", "/shutdown", b"")?.status)
    }
}

/// When and how [`RetryingClient`] retries a failed request.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Cap on any single backoff delay.
    pub max_delay: Duration,
    /// Response statuses worth retrying. Defaults to 500 (crashed worker),
    /// 503 (shed/draining), and 504 (deadline) — all transient server
    /// states. 400/422 are deliberately absent: client errors never heal.
    pub retry_statuses: Vec<u16>,
    /// Total retries this client may spend across its lifetime. A retry
    /// *budget*, so a persistently failing server degrades to fail-fast
    /// instead of amplifying load.
    pub budget: u64,
    /// Seed for the backoff jitter (deterministic per seed).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(3),
            max_delay: Duration::from_millis(250),
            retry_statuses: vec![500, 503, 504],
            budget: 1024,
            seed: 0x5eed_0f2e_7241_e500,
        }
    }
}

impl RetryPolicy {
    /// Never retries: every request gets exactly one attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            retry_statuses: Vec::new(),
            budget: 0,
            ..RetryPolicy::default()
        }
    }

    /// Retries transport failures only; every HTTP status is final. For
    /// drivers (like `loadgen`) that account shed/timeout statuses
    /// themselves.
    pub fn io_only() -> RetryPolicy {
        RetryPolicy {
            retry_statuses: Vec::new(),
            ..RetryPolicy::default()
        }
    }

    /// The jittered exponential backoff before retry number `retry`
    /// (1-based): `min(max, base · 2^(retry-1))` scaled by a seeded factor
    /// in `[0.5, 1.0)` so synchronized clients desynchronize.
    fn backoff(&self, retry: u32, rng_state: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_delay);
        exp.mul_f64(0.5 + 0.5 * next_unit(rng_state))
    }
}

/// SplitMix64 step, for dependency-free jitter.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next_unit(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Transport failures that a fresh connection can plausibly fix. Requests
/// to the daemon are idempotent (analysis is deterministic and cached), so
/// resending after a reset, truncation (`UnexpectedEof`), or garbled
/// response (`InvalidData` from the HTTP parser) is always safe.
fn is_retryable_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::InvalidData
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// A [`Client`] wrapped in a [`RetryPolicy`]: reconnects after transport
/// failures and retries transient statuses with jittered backoff.
pub struct RetryingClient {
    addr: std::net::SocketAddr,
    policy: RetryPolicy,
    client: Option<Client>,
    rng_state: u64,
    retries_used: u64,
}

impl RetryingClient {
    /// Connects to a daemon. The initial connection is itself retried
    /// under the policy.
    ///
    /// # Errors
    ///
    /// Address-resolution failures, or connection errors once the retry
    /// budget is spent.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<RetryingClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect"))?;
        let rng_state = policy.seed;
        let mut client = RetryingClient {
            addr,
            policy,
            client: None,
            rng_state,
            retries_used: 0,
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match client.ensure_connected().err() {
                None => return Ok(client),
                Some(e) if is_retryable_io(&e) && client.may_retry(attempt) => {
                    client.pause(attempt);
                }
                Some(e) => return Err(e),
            }
        }
    }

    /// Retries spent so far (across all requests).
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    fn ensure_connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            self.client = Some(Client::connect(self.addr)?);
        }
        Ok(self.client.as_mut().expect("client just ensured"))
    }

    fn may_retry(&self, attempt: u32) -> bool {
        attempt < self.policy.max_attempts && self.retries_used < self.policy.budget
    }

    /// Burns one unit of retry budget and sleeps the backoff for `attempt`.
    fn pause(&mut self, attempt: u32) {
        self.retries_used += 1;
        std::thread::sleep(self.policy.backoff(attempt, &mut self.rng_state));
    }

    /// Sends one request, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The final attempt's error, once attempts or budget run out;
    /// non-retryable errors immediately.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self
                .ensure_connected()
                .and_then(|c| c.request(method, path, body));
            match outcome {
                Ok(response) if self.policy.retry_statuses.contains(&response.status) => {
                    // The server answered coherently: the connection is
                    // still good, only the status says "come back later".
                    if !self.may_retry(attempt) {
                        return Ok(response);
                    }
                }
                Ok(response) => return Ok(response),
                Err(e) if is_retryable_io(&e) => {
                    // Transport failure: the connection is suspect. Drop it
                    // and reconnect on the next attempt.
                    self.client = None;
                    if !self.may_retry(attempt) {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
            self.pause(attempt);
        }
    }

    /// POSTs a JSON value, with retries. See [`Client::post_json`].
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::request`]; a well-framed non-JSON body is
    /// [`io::ErrorKind::InvalidData`] without further retries.
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        let response = self.request("POST", path, body.to_string().as_bytes())?;
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        let json = Json::parse(text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-JSON response body: {e}"),
            )
        })?;
        Ok((response.status, json))
    }

    /// Issues an analysis request, with retries. See [`Client::analysis`].
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::post_json`].
    pub fn analysis(
        &mut self,
        route: &str,
        netlist: &str,
        options: Json,
    ) -> io::Result<(u16, Json)> {
        let body = obj([("netlist", Json::str(netlist)), ("options", options)]);
        self.post_json(&format!("/{route}"), &body)
    }

    /// Issues a design-space sweep, with retries. See [`Client::sweep`].
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::request`].
    pub fn sweep(&mut self, netlist: &str, options: Json) -> io::Result<(u16, Vec<u8>)> {
        let body = obj([("netlist", Json::str(netlist)), ("options", options)]);
        let response = self.request("POST", "/sweep", body.to_string().as_bytes())?;
        Ok((response.status, response.body))
    }

    /// Fetches `GET /metrics`, with transport retries. See
    /// [`Client::metrics`].
    ///
    /// # Errors
    ///
    /// See [`Client::metrics`].
    pub fn metrics(&mut self) -> io::Result<String> {
        let response = self.request("GET", "/metrics", b"")?;
        if response.status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("/metrics answered {}", response.status),
            ));
        }
        String::from_utf8(response.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 metrics"))
    }

    /// Asks the daemon to drain and exit — exactly once, never retried:
    /// shutdown is a control-plane action whose duplicate delivery during
    /// a drain would just be noise.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> io::Result<u16> {
        Ok(self
            .ensure_connected()?
            .request("POST", "/shutdown", b"")?
            .status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let policy = RetryPolicy::default();
        let mut state = policy.seed;
        let d1 = policy.backoff(1, &mut state);
        let d8 = policy.backoff(8, &mut state);
        // Jitter keeps every delay in [half, full) of the exponential step.
        assert!(d1 >= policy.base_delay / 2 && d1 < policy.base_delay);
        assert!(
            d8 >= policy.max_delay / 2 && d8 < policy.max_delay,
            "{d8:?}"
        );
        // Huge retry counts saturate instead of overflowing the shift.
        let _ = policy.backoff(64, &mut state);
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let (mut a, mut b) = (policy.seed, policy.seed);
        for retry in 1..=10 {
            assert_eq!(policy.backoff(retry, &mut a), policy.backoff(retry, &mut b));
        }
        let mut c = policy.seed ^ 1;
        let schedule_a: Vec<_> = (1..=10).map(|r| policy.backoff(r, &mut a)).collect();
        let schedule_c: Vec<_> = (1..=10).map(|r| policy.backoff(r, &mut c)).collect();
        assert_ne!(
            schedule_a, schedule_c,
            "different seeds should jitter apart"
        );
    }

    #[test]
    fn client_errors_are_never_in_the_default_retry_set() {
        let policy = RetryPolicy::default();
        assert!(policy.retry_statuses.contains(&500));
        assert!(policy.retry_statuses.contains(&503));
        assert!(policy.retry_statuses.contains(&504));
        assert!(!policy.retry_statuses.contains(&400));
        assert!(!policy.retry_statuses.contains(&422));
        assert!(RetryPolicy::none().retry_statuses.is_empty());
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert!(RetryPolicy::io_only().retry_statuses.is_empty());
        assert!(RetryPolicy::io_only().max_attempts > 1);
    }

    #[test]
    fn io_error_classification() {
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::InvalidData,
        ] {
            assert!(is_retryable_io(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::AddrInUse,
            io::ErrorKind::InvalidInput,
        ] {
            assert!(!is_retryable_io(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }
}
