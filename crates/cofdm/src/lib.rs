//! The COFDM UWB transmitter case study (Section IX of the paper).
//!
//! The paper evaluates its queue-sizing algorithms on the top-level netlist
//! of a 480-Mb/s LDPC-COFDM ultrawideband transmitter (Fig. 18): 12 blocks,
//! 30 channels, 22 cycles before backpressure. The exact channel list was
//! never published; this module reconstructs a netlist satisfying every
//! structural constraint stated in the paper:
//!
//! * the 12 named blocks (`PI`, `PO`, `FEC`, `Spread`, `Pilot`, `Control`,
//!   `FFT_in`, `FFT`, `tx_Ctrl`, `Preamble`, `Clip`, `tx_Filter`);
//! * exactly 30 channels, hence `C(30, 2) = 435` two-station insertions;
//! * exactly 22 elementary cycles in the ideal graph;
//! * the Section IX feedback loop
//!   `(FEC, Spread, Pilot, FFT_in, FFT, tx_Ctrl, FEC)`, which caps the
//!   ideal MST at 0.75 when relay stations land on `(FEC, Spread)` and
//!   `(Spread, Pilot)`;
//! * for that scenario, doubling yields **exactly six** deficient cycles
//!   with the means of Table VI — five of 5/7 ≈ 0.71 and one of 4/6 ≈ 0.67
//!   — fixable by one extra queue slot on each of the backedges
//!   `(Pilot, Control)` and `(FFT_in, Control)`, the same solution the
//!   paper reports.
//!
//! The one statistic that depends on unpublished details is the cycle count
//! of the *doubled* graph (paper: 2896; this reconstruction: 5438, the
//! minimum over all reconstructions satisfying the published constraints);
//! the experiment binaries report both numbers side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lis_core::{BlockId, ChannelId, LisSystem};

/// Named handles to every block and the channels the experiments reference.
#[derive(Debug, Clone)]
pub struct CofdmSoc {
    /// The transmitter netlist (all queues at capacity one, no relay
    /// stations inserted yet).
    pub system: LisSystem,
    /// `PI` (packet input interface).
    pub pi: BlockId,
    /// `PO` (packet output staging).
    pub po: BlockId,
    /// `FEC` (LDPC forward error correction).
    pub fec: BlockId,
    /// `Spread` (spreader).
    pub spread: BlockId,
    /// `Pilot` (pilot insertion).
    pub pilot: BlockId,
    /// `Control` (global controller).
    pub control: BlockId,
    /// `FFT_in` (FFT input staging).
    pub fft_in: BlockId,
    /// `FFT` (inverse FFT).
    pub fft: BlockId,
    /// `tx_Ctrl` (transmit controller).
    pub tx_ctrl: BlockId,
    /// `Preamble` (preamble generator).
    pub preamble: BlockId,
    /// `Clip` (clipper).
    pub clip: BlockId,
    /// `tx_Filter` (transmit filter).
    pub tx_filter: BlockId,
    /// The `FEC → Spread` channel (Table VI scenario).
    pub fec_spread: ChannelId,
    /// The `Spread → Pilot` channel (Table VI scenario).
    pub spread_pilot: ChannelId,
    /// The `Control → Pilot` channel, whose reverse is the backedge
    /// `(Pilot, Control)` that the Table VI solution enlarges.
    pub control_pilot: ChannelId,
    /// The `Control → FFT_in` channel, whose reverse is the backedge
    /// `(FFT_in, Control)` that the Table VI solution enlarges.
    pub control_fft_in: ChannelId,
}

/// Builds the reconstructed COFDM transmitter netlist.
///
/// # Examples
///
/// ```
/// use lis_cofdm::cofdm_soc;
///
/// let soc = cofdm_soc();
/// assert_eq!(soc.system.block_count(), 12);
/// assert_eq!(soc.system.channel_count(), 30);
/// ```
pub fn cofdm_soc() -> CofdmSoc {
    let mut sys = LisSystem::new();
    let pi = sys.add_block("PI");
    let po = sys.add_block("PO");
    let fec = sys.add_block("FEC");
    let spread = sys.add_block("Spread");
    let pilot = sys.add_block("Pilot");
    let control = sys.add_block("Control");
    let fft_in = sys.add_block("FFT_in");
    let fft = sys.add_block("FFT");
    let tx_ctrl = sys.add_block("tx_Ctrl");
    let preamble = sys.add_block("Preamble");
    let clip = sys.add_block("Clip");
    let tx_filter = sys.add_block("tx_Filter");

    // Main datapath: packets enter at PI (staged through PO), are encoded,
    // spread, pilot-inserted, transformed, clipped, and filtered.
    sys.add_channel(pi, fec); // 1
    sys.add_channel(po, fec); // 2
    let fec_spread = sys.add_channel(fec, spread); // 3
    let spread_pilot = sys.add_channel(spread, pilot); // 4
    sys.add_channel(pilot, fft_in); // 5
    sys.add_channel(fft_in, fft); // 6

    // Transmit-control feedback loop (Section IX):
    // FEC -> Spread -> Pilot -> FFT_in -> FFT -> tx_Ctrl -> FEC.
    sys.add_channel(fft, tx_ctrl); // 7
    sys.add_channel(tx_ctrl, fec); // 8

    // Controller fan-out (configuration channels).
    sys.add_channel(control, pi); // 9
    let control_pilot = sys.add_channel(control, pilot); // 10
    let control_fft_in = sys.add_channel(control, fft_in); // 11
    sys.add_channel(control, tx_ctrl); // 12

    // Status channels back to the controller.
    sys.add_channel(fec, control); // 13
    sys.add_channel(po, control); // 14
    sys.add_channel(tx_ctrl, control); // 15

    // Output stage.
    sys.add_channel(fft, clip); // 16
    sys.add_channel(clip, tx_filter); // 17
    sys.add_channel(preamble, po); // 18
    sys.add_channel(control, preamble); // 19
    sys.add_channel(control, clip); // 20
    sys.add_channel(control, tx_filter); // 21
    sys.add_channel(preamble, clip); // 22
    sys.add_channel(preamble, control); // 23
    sys.add_channel(fft, control); // 24
    sys.add_channel(pi, po); // 25
    sys.add_channel(tx_ctrl, clip); // 26
    sys.add_channel(fft, tx_filter); // 27
    sys.add_channel(tx_ctrl, tx_filter); // 28
    sys.add_channel(fft_in, clip); // 29
    sys.add_channel(po, clip); // 30

    CofdmSoc {
        system: sys,
        pi,
        po,
        fec,
        spread,
        pilot,
        control,
        fft_in,
        fft,
        tx_ctrl,
        preamble,
        clip,
        tx_filter,
        fec_spread,
        spread_pilot,
        control_pilot,
        control_fft_in,
    }
}

/// The Table VI scenario: the SoC with one relay station on
/// `(FEC, Spread)` and one on `(Spread, Pilot)`.
///
/// # Examples
///
/// ```
/// use lis_cofdm::table6_scenario;
/// use lis_core::{ideal_mst, practical_mst};
/// use marked_graph::Ratio;
///
/// let soc = table6_scenario();
/// assert_eq!(ideal_mst(&soc.system), Ratio::new(3, 4));
/// assert_eq!(practical_mst(&soc.system), Ratio::new(2, 3));
/// ```
pub fn table6_scenario() -> CofdmSoc {
    let mut soc = cofdm_soc();
    soc.system.add_relay_station(soc.fec_spread);
    soc.system.add_relay_station(soc.spread_pilot);
    soc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::{ideal_mst, practical_mst, LisModel};
    use marked_graph::cycles::count_elementary_cycles;
    use marked_graph::Ratio;

    #[test]
    fn census_matches_paper() {
        let soc = cofdm_soc();
        let ideal = LisModel::ideal(&soc.system);
        let doubled = LisModel::doubled(&soc.system);
        assert_eq!(soc.system.block_count(), 12);
        assert_eq!(soc.system.channel_count(), 30);
        assert_eq!(
            count_elementary_cycles(ideal.graph(), 1_000_000).unwrap(),
            22
        );
        // Paper: 2896 after doubling; our reconstruction: 5440 (see module
        // docs for why the doubled census cannot be matched exactly).
        assert_eq!(
            count_elementary_cycles(doubled.graph(), 1_000_000).unwrap(),
            5438
        );
    }

    #[test]
    fn no_stations_no_degradation() {
        let soc = cofdm_soc();
        assert_eq!(ideal_mst(&soc.system), Ratio::ONE);
        assert_eq!(practical_mst(&soc.system), Ratio::ONE);
    }

    #[test]
    fn table6_scenario_msts() {
        let soc = table6_scenario();
        // The Section IX feedback loop with two stations: 6 tokens/8 places.
        assert_eq!(ideal_mst(&soc.system), Ratio::new(3, 4));
        // The worst deficient cycle (mean 4/6) sets the practical MST.
        assert_eq!(practical_mst(&soc.system), Ratio::new(2, 3));
    }

    #[test]
    fn table6_exactly_six_deficient_cycles() {
        let soc = table6_scenario();
        let inst = lis_qs::extract_instance(&soc.system, 1_000_000).unwrap();
        assert_eq!(inst.target, Ratio::new(3, 4));
        assert_eq!(inst.cycles.len(), 6);
        let mut means: Vec<Ratio> = inst
            .cycles
            .iter()
            .map(|c| Ratio::new(c.tokens as i64, c.len as i64))
            .collect();
        means.sort();
        assert_eq!(
            means,
            vec![
                Ratio::new(2, 3),
                Ratio::new(5, 7),
                Ratio::new(5, 7),
                Ratio::new(5, 7),
                Ratio::new(5, 7),
                Ratio::new(5, 7),
            ]
        );
        // Every deficit is one token, as in the paper.
        assert!(inst.cycles.iter().all(|c| c.deficit == 1));
    }

    #[test]
    fn table6_paper_solution_works() {
        // The paper's solution: grow the queues behind backedges
        // (Pilot, Control) and (FFT_in, Control) by one each.
        let mut soc = table6_scenario();
        soc.system.grow_queue(soc.control_pilot, 1);
        soc.system.grow_queue(soc.control_fft_in, 1);
        assert_eq!(practical_mst(&soc.system), Ratio::new(3, 4));
    }

    #[test]
    fn table6_solvers_find_two_token_solutions() {
        let soc = table6_scenario();
        let exact = lis_qs::solve(
            &soc.system,
            lis_qs::Algorithm::Exact,
            &lis_qs::QsConfig::default(),
        )
        .unwrap();
        assert!(exact.optimal);
        assert_eq!(exact.total_extra, 2);
        assert!(lis_qs::verify_solution(&soc.system, &exact));
        let heur = lis_qs::solve(
            &soc.system,
            lis_qs::Algorithm::Heuristic,
            &lis_qs::QsConfig::default(),
        )
        .unwrap();
        assert!(lis_qs::verify_solution(&soc.system, &heur));
        assert!(heur.total_extra >= 2);
    }
}
