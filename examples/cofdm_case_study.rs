//! The COFDM UWB transmitter case study (Section IX of the paper).
//!
//! Loads the reconstructed 12-block / 30-channel SoC, inserts the Table VI
//! relay stations, inspects the deficient cycles, sizes the queues, and
//! validates the result with a cycle-accurate simulation driven by
//! behavioral cores.
//!
//! Run with: `cargo run --example cofdm_case_study`

use lis::cofdm::table6_scenario;
use lis::core::{ideal_mst, practical_mst};
use lis::qs::{extract_instance, solve, verify_solution, Algorithm, QsConfig};
use lis::sim::{CoreModel, LisSimulator, Passthrough, QueueMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = table6_scenario();
    let sys = &soc.system;
    println!(
        "COFDM transmitter: {} blocks, {} channels, {} relay stations",
        sys.block_count(),
        sys.channel_count(),
        sys.relay_station_count()
    );
    println!("ideal MST:     {}", ideal_mst(sys));
    println!("practical MST: {}", practical_mst(sys));

    // The six potential critical cycles of Table VI.
    let inst = extract_instance(sys, 10_000_000)?;
    println!("\ndeficient cycles after doubling: {}", inst.cycles.len());
    for (i, c) in inst.cycles.iter().enumerate() {
        println!(
            "  C{}: {} tokens / {} places (needs {} more token{})",
            i + 1,
            c.tokens,
            c.len,
            c.deficit,
            if c.deficit == 1 { "" } else { "s" }
        );
    }

    // Queue sizing: exact solution.
    let report = solve(sys, Algorithm::Exact, &QsConfig::default())?;
    println!(
        "\nexact queue sizing spends {} extra token(s):",
        report.total_extra
    );
    for (c, w) in &report.extra_tokens {
        println!(
            "  +{w} on queue of {} -> {}",
            sys.block_name(sys.channel_from(*c)),
            sys.block_name(sys.channel_to(*c))
        );
    }
    assert!(verify_solution(sys, &report));

    // Validate in simulation: measured rates before and after.
    let cores = |sys: &lis::core::LisSystem| -> Vec<Box<dyn CoreModel>> {
        sys.block_ids()
            .map(|b| {
                let outs = sys
                    .channel_ids()
                    .filter(|&c| sys.channel_from(c) == b)
                    .count();
                Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
            })
            .collect()
    };
    let mut before = LisSimulator::new(sys, cores(sys), QueueMode::Finite);
    before.run(6000);
    let mut resized = sys.clone();
    lis::qs::apply_solution(&mut resized, &report);
    let mut after = LisSimulator::new(&resized, cores(&resized), QueueMode::Finite);
    after.run(6000);
    println!(
        "\nmeasured FEC rate: {:.4} before vs {:.4} after queue sizing (analytic: {} vs {})",
        before.throughput(soc.fec).to_f64(),
        after.throughput(soc.fec).to_f64(),
        practical_mst(sys),
        practical_mst(&resized),
    );

    Ok(())
}
