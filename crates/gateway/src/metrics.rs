//! Gateway observability, rendered in the same Prometheus text format as
//! the shard daemons (and reusing [`lis_server::metrics::Histogram`] for
//! latency, so dashboards treat both tiers uniformly).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lis_server::metrics::Histogram;
use lis_server::NetStats;

use crate::replicate::ReplicationStats;
use crate::table::ShardTable;

/// The status codes the gateway tracks per-counter, mirroring the shard
/// daemon's set.
const STATUSES: [u16; 12] = [200, 400, 404, 405, 408, 413, 422, 429, 500, 502, 503, 504];

fn status_slot(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or_else(|| {
            // Unknown codes count as 500.
            STATUSES
                .iter()
                .position(|&s| s == 500)
                .expect("500 tracked")
        })
}

/// Counters and histograms for the gateway tier.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Finished client requests by status.
    requests: [AtomicU64; STATUSES.len()],
    /// Attempts routed past the first-choice shard after a failure.
    pub failovers: AtomicU64,
    /// Hedge requests actually launched (deadline expired).
    pub hedges_launched: AtomicU64,
    /// Hedges whose answer beat the primary's.
    pub hedges_won: AtomicU64,
    /// Shard health transitions healthy → ejected.
    pub ejections: AtomicU64,
    /// Dead child shards respawned by the supervisor.
    pub respawns: AtomicU64,
    /// Replication counters, shared with the write-behind replicator.
    pub replication: Arc<ReplicationStats>,
    /// End-to-end latency as seen at the gateway (routing + hop included).
    pub latency: Histogram,
    /// Network-front gauges/counters (open connections, pipeline depth,
    /// readiness wakeups), shared with the event loop.
    pub net: Arc<NetStats>,
}

impl GatewayMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> GatewayMetrics {
        GatewayMetrics::default()
    }

    /// Counts one finished client request.
    pub fn record_request(&self, status: u16, elapsed: std::time::Duration) {
        self.requests[status_slot(status)].fetch_add(1, Ordering::Relaxed);
        self.latency.observe(elapsed);
    }

    /// Requests counted for one status (test observability).
    pub fn requests_for(&self, status: u16) -> u64 {
        self.requests[status_slot(status)].load(Ordering::Relaxed)
    }

    /// Total requests across all statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the exposition, including per-shard series read live from
    /// the table at scrape time.
    pub fn render(&self, table: &ShardTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE lis_gateway_requests_total counter");
        for (s, status) in STATUSES.iter().enumerate() {
            let n = self.requests[s].load(Ordering::Relaxed);
            if n > 0 {
                let _ = writeln!(out, "lis_gateway_requests_total{{status=\"{status}\"}} {n}");
            }
        }
        for (name, value) in [
            ("lis_gateway_failovers_total", &self.failovers),
            ("lis_gateway_hedges_launched_total", &self.hedges_launched),
            ("lis_gateway_hedges_won_total", &self.hedges_won),
            ("lis_gateway_shard_ejections_total", &self.ejections),
            ("lis_gateway_shard_respawns_total", &self.respawns),
            ("lis_replication_pushes_total", &self.replication.pushes),
            (
                "lis_replication_push_failures_total",
                &self.replication.push_failures,
            ),
            ("lis_replication_dropped_total", &self.replication.dropped),
            ("lis_replication_handoffs_total", &self.replication.handoffs),
            (
                "lis_replication_handoff_entries_total",
                &self.replication.handoff_entries,
            ),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", value.load(Ordering::Relaxed));
        }
        let _ = writeln!(out, "# TYPE lis_gateway_shard_healthy gauge");
        for shard in table.shards() {
            let _ = writeln!(
                out,
                "lis_gateway_shard_healthy{{shard=\"{}\"}} {}",
                shard.name,
                u8::from(shard.is_healthy())
            );
        }
        let _ = writeln!(out, "# TYPE lis_gateway_shard_requests_total counter");
        for shard in table.shards() {
            let _ = writeln!(
                out,
                "lis_gateway_shard_requests_total{{shard=\"{}\"}} {}",
                shard.name,
                shard.requests.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# TYPE lis_gateway_shard_failures_total counter");
        for shard in table.shards() {
            let _ = writeln!(
                out,
                "lis_gateway_shard_failures_total{{shard=\"{}\"}} {}",
                shard.name,
                shard.failures.load(Ordering::Relaxed)
            );
        }
        self.latency.render(&mut out, "lis_gateway_request_seconds");
        self.net.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Shard;
    use lis_server::parse_metric;
    use std::sync::Arc;
    use std::time::Duration;

    fn table() -> ShardTable {
        let addr = "127.0.0.1:1".parse().unwrap();
        ShardTable::new(vec![
            Arc::new(Shard::new("s0", addr)),
            Arc::new(Shard::new("s1", addr)),
        ])
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let m = GatewayMetrics::new();
        let t = table();
        m.record_request(200, Duration::from_micros(120));
        m.record_request(502, Duration::from_millis(1));
        m.failovers.fetch_add(2, Ordering::Relaxed);
        t.shards()[1].mark_failure(1);
        t.shards()[1].requests.fetch_add(5, Ordering::Relaxed);
        m.replication.pushes.fetch_add(7, Ordering::Relaxed);
        let text = m.render(&t);
        assert!(text.contains("lis_gateway_requests_total{status=\"200\"} 1"));
        assert_eq!(
            parse_metric(&text, "lis_replication_pushes_total"),
            Some(7.0)
        );
        assert_eq!(
            parse_metric(&text, "lis_replication_handoffs_total"),
            Some(0.0)
        );
        assert!(text.contains("lis_gateway_requests_total{status=\"502\"} 1"));
        assert_eq!(
            parse_metric(&text, "lis_gateway_failovers_total"),
            Some(2.0)
        );
        assert!(text.contains("lis_gateway_shard_healthy{shard=\"s0\"} 1"));
        assert!(text.contains("lis_gateway_shard_healthy{shard=\"s1\"} 0"));
        assert!(text.contains("lis_gateway_shard_requests_total{shard=\"s1\"} 5"));
        assert!(text.contains("lis_gateway_request_seconds_count 2"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn unknown_statuses_count_as_500() {
        let m = GatewayMetrics::new();
        m.record_request(299, Duration::ZERO);
        assert_eq!(m.requests_for(500), 1);
        assert_eq!(m.requests_total(), 1);
    }
}
