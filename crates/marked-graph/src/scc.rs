//! Strongly connected components and the condensation (component DAG).
//!
//! The paper's MST definition (Section III-C) is per-SCC: the throughput of a
//! multi-SCC graph is the minimum over its components' throughputs. Tarjan's
//! algorithm gives the components in reverse topological order, which the
//! condensation preserves.

use crate::graph::{MarkedGraph, PlaceId, TransitionId};

/// The strongly-connected-component decomposition of a [`MarkedGraph`].
///
/// # Examples
///
/// ```
/// use marked_graph::{MarkedGraph, SccDecomposition};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 1); // {A, B} is one SCC
/// g.add_place(b, c, 1); // C is its own SCC downstream
/// let scc = SccDecomposition::compute(&g);
/// assert_eq!(scc.count(), 2);
/// assert_eq!(scc.component_of(a), scc.component_of(b));
/// assert_ne!(scc.component_of(a), scc.component_of(c));
/// ```
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// Component index per transition.
    comp_of: Vec<usize>,
    /// Transitions per component.
    members: Vec<Vec<TransitionId>>,
}

impl SccDecomposition {
    /// Runs Tarjan's algorithm (iteratively, so deep graphs cannot overflow
    /// the call stack) over the transition graph induced by the places.
    pub fn compute(graph: &MarkedGraph) -> SccDecomposition {
        let n = graph.transition_count();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut members: Vec<Vec<TransitionId>> = Vec::new();
        let mut comp_of = vec![UNVISITED; n];

        // Explicit DFS frame: (vertex, next output-place index).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            call.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&(v, out_idx)) = call.last() {
                let outs = graph.outputs(TransitionId::new(v));
                if out_idx < outs.len() {
                    call.last_mut().expect("frame exists").1 += 1;
                    let w = graph.target(outs[out_idx]).index();
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let comp_id = members.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp_of[w] = comp_id;
                            comp.push(TransitionId::new(w));
                            if w == v {
                                break;
                            }
                        }
                        members.push(comp);
                    }
                }
            }
        }

        SccDecomposition { comp_of, members }
    }

    /// Number of strongly connected components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component index a transition belongs to.
    ///
    /// Components are numbered in reverse topological order (a Tarjan
    /// property): if component `i` has an edge to component `j`, then
    /// `i > j`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn component_of(&self, t: TransitionId) -> usize {
        self.comp_of[t.index()]
    }

    /// The transitions of component `c`.
    pub fn members(&self, c: usize) -> &[TransitionId] {
        &self.members[c]
    }

    /// Iterator over component indices.
    pub fn component_ids(&self) -> impl Iterator<Item = usize> {
        0..self.members.len()
    }

    /// Whether the whole graph is one strongly connected component.
    pub fn is_strongly_connected(&self) -> bool {
        self.members.len() == 1
    }

    /// Whether a place connects two transitions of the same component.
    pub fn is_internal(&self, graph: &MarkedGraph, p: PlaceId) -> bool {
        self.comp_of[graph.source(p).index()] == self.comp_of[graph.target(p).index()]
    }

    /// Whether component `c` contains at least one place internal to it
    /// (i.e., the component is cyclic rather than a trivial single vertex).
    pub fn is_cyclic(&self, graph: &MarkedGraph, c: usize) -> bool {
        if self.members[c].len() > 1 {
            return true;
        }
        // Single vertex: cyclic only if it has a self-loop place.
        let t = self.members[c][0];
        graph.outputs(t).iter().any(|&p| graph.target(p) == t)
    }

    /// Edges of the condensation: deduplicated `(from_component,
    /// to_component)` pairs over all inter-component places.
    pub fn condensation_edges(&self, graph: &MarkedGraph) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = graph
            .place_ids()
            .filter_map(|p| {
                let s = self.comp_of[graph.source(p).index()];
                let t = self.comp_of[graph.target(p).index()];
                (s != t).then_some((s, t))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vertex_no_loop() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 1);
        assert!(!scc.is_cyclic(&g, scc.component_of(a)));
        assert!(scc.is_strongly_connected());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        g.add_place(a, a, 1);
        let scc = SccDecomposition::compute(&g);
        assert!(scc.is_cyclic(&g, 0));
    }

    #[test]
    fn two_rings_connected_by_a_bridge() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        g.add_place(a, b, 1);
        g.add_place(b, a, 1);
        g.add_place(c, d, 1);
        g.add_place(d, c, 1);
        let bridge = g.add_place(b, c, 1);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.component_of(a), scc.component_of(b));
        assert_eq!(scc.component_of(c), scc.component_of(d));
        assert!(!scc.is_internal(&g, bridge));
        // Reverse topological numbering: downstream {C,D} gets the smaller id.
        assert!(scc.component_of(b) > scc.component_of(c));
        assert_eq!(
            scc.condensation_edges(&g),
            vec![(scc.component_of(b), scc.component_of(c))]
        );
    }

    #[test]
    fn chain_is_all_singletons() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..5).map(|i| g.add_transition(format!("t{i}"))).collect();
        for w in ts.windows(2) {
            g.add_place(w[0], w[1], 1);
        }
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 5);
        for c in scc.component_ids() {
            assert_eq!(scc.members(c).len(), 1);
            assert!(!scc.is_cyclic(&g, c));
        }
    }

    #[test]
    fn big_ring_is_one_component() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..1000)
            .map(|i| g.add_transition(format!("t{i}")))
            .collect();
        for i in 0..ts.len() {
            g.add_place(ts[i], ts[(i + 1) % ts.len()], 1);
        }
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 1);
        assert!(scc.is_cyclic(&g, 0));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-vertex path; a recursive Tarjan would blow the stack here.
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..200_000)
            .map(|i| g.add_transition(format!("t{i}")))
            .collect();
        for w in ts.windows(2) {
            g.add_place(w[0], w[1], 1);
        }
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 200_000);
    }

    #[test]
    fn parallel_edges_and_dedup_in_condensation() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        g.add_place(a, b, 0);
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.condensation_edges(&g).len(), 1);
    }
}
