//! Multi-cycle cores (paper footnote 3) through the whole stack: latency
//! expansion, analysis, queue sizing, and both simulators.

use lis::core::{expand_block_latency, ideal_mst, practical_mst, LisSystem};
use lis::marked_graph::Ratio;
use lis::qs::{solve, verify_solution, Algorithm, QsConfig};
use lis::sim::{
    valid_values, CoreModel, LisSimulator, Passthrough, QueueMode, RtlSimulator, SequenceSource,
};

fn stage_cores(sys: &LisSystem, source: lis::core::BlockId) -> Vec<Box<dyn CoreModel>> {
    sys.block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            if b == source {
                Box::new(SequenceSource::new((1..=200).collect(), outs)) as Box<dyn CoreModel>
            } else {
                Box::new(Passthrough::new(outs.max(1), 0)) as Box<dyn CoreModel>
            }
        })
        .collect()
}

#[test]
fn pipelined_adder_streams_with_latency_but_full_rate() {
    // src -> M(latency 3) -> dst, feed-forward: rate 1, first valid output
    // of the final stage delayed by the pipeline depth.
    let mut sys = LisSystem::new();
    let src = sys.add_block("src");
    let m = sys.add_block("M");
    let dst = sys.add_block("dst");
    sys.add_channel(src, m);
    let m_dst = sys.add_channel(m, dst);
    let e = expand_block_latency(&sys, m, 3);
    assert_eq!(ideal_mst(&e.system), Ratio::ONE);
    assert_eq!(practical_mst(&e.system), Ratio::ONE);

    let src2 = e.system.block_by_name("src").expect("exists");
    let mut sim = LisSimulator::new(&e.system, stage_cores(&e.system, src2), QueueMode::Finite);
    sim.run(50);
    // The channel into dst: first two periods void (two uninitialized
    // stages), then the stream flows at rate 1.
    let tail_channel = e.channel_map[m_dst.index()];
    let trace = sim.channel_trace(tail_channel);
    assert_eq!(trace[0], None);
    assert_eq!(trace[1], None);
    assert!(trace[2].is_some());
    let valid = valid_values(&trace);
    assert!(valid.len() >= 47);
}

#[test]
fn rtl_agrees_on_pipelined_cores() {
    let mut sys = LisSystem::new();
    let src = sys.add_block("src");
    let m = sys.add_block("M");
    let dst = sys.add_block("dst");
    sys.add_channel(src, m);
    sys.add_channel(m, dst);
    sys.add_channel(dst, src); // close the loop: latency now costs rate
    let e = expand_block_latency(&sys, m, 2);
    let expected = Ratio::new(3, 4); // 3 shells over 4 places
    assert_eq!(ideal_mst(&e.system), expected);

    let src2 = e.system.block_by_name("src").expect("exists");
    let mut mg = LisSimulator::new(&e.system, stage_cores(&e.system, src2), QueueMode::Finite);
    let mut rtl = RtlSimulator::new(&e.system, stage_cores(&e.system, src2));
    mg.run(4000);
    rtl.run(4000);
    for b in e.system.block_ids() {
        let m_rate = mg.throughput(b).to_f64();
        let r_rate = rtl.throughput(b).to_f64();
        assert!(
            (m_rate - expected.to_f64()).abs() < 0.02,
            "{b:?} mg {m_rate}"
        );
        assert!(
            (r_rate - expected.to_f64()).abs() < 0.02,
            "{b:?} rtl {r_rate}"
        );
    }
}

#[test]
fn queue_sizing_handles_pipelined_reconvergence() {
    // Unbalanced reconvergence created by a pipelined core: the QS pipeline
    // treats the stage hops like any other blocks.
    let mut sys = LisSystem::new();
    let a = sys.add_block("A");
    let m = sys.add_block("M");
    let b = sys.add_block("B");
    sys.add_channel(a, m);
    sys.add_channel(m, b);
    sys.add_channel(a, b);
    let e = expand_block_latency(&sys, m, 3);
    assert!(practical_mst(&e.system) < Ratio::ONE);
    let report = solve(&e.system, Algorithm::Exact, &QsConfig::default()).expect("bounded");
    assert!(report.optimal);
    assert!(report.total_extra > 0);
    assert!(verify_solution(&e.system, &report));
}

#[test]
fn deeper_pipelines_need_more_queue_slots() {
    // The deficit on the direct path grows with the pipeline depth.
    let mut totals = Vec::new();
    for latency in 2..=5u32 {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let m = sys.add_block("M");
        let b = sys.add_block("B");
        sys.add_channel(a, m);
        sys.add_channel(m, b);
        sys.add_channel(a, b);
        let e = expand_block_latency(&sys, m, latency);
        let report = solve(&e.system, Algorithm::Exact, &QsConfig::default()).expect("bounded");
        assert!(verify_solution(&e.system, &report));
        totals.push(report.total_extra);
    }
    assert!(
        totals.windows(2).all(|w| w[0] <= w[1]),
        "queue cost should grow with latency: {totals:?}"
    );
    assert!(totals[totals.len() - 1] > totals[0]);
}
