//! Undirected structural analysis: biconnected components, articulation
//! points, and reconvergent-path detection.
//!
//! Section IV of the paper classifies LIS topologies by these properties:
//! trees and SCCs *without reconvergent paths* keep their ideal throughput
//! with fixed queues of size one. The paper defines a group of simple paths
//! as *reconvergent* "if they would form a cycle if the graph was
//! undirected"; a directed cycle is not reconvergent (the SCC-without-
//! reconvergent-paths class is exactly the graphs whose undirected
//! biconnected components are single directed cycles, glued at articulation
//! points).

use crate::graph::{MarkedGraph, PlaceId, TransitionId};

/// The undirected biconnected-component decomposition of a graph.
#[derive(Debug, Clone)]
pub struct Biconnected {
    /// Places grouped by biconnected component. Self-loop places form their
    /// own singleton components.
    pub components: Vec<Vec<PlaceId>>,
    /// Articulation points (cut vertices) of the undirected multigraph.
    pub articulation_points: Vec<TransitionId>,
}

/// Computes biconnected components and articulation points of the undirected
/// view of `graph` (Hopcroft–Tarjan, iterative).
///
/// Every place is one undirected edge; parallel and antiparallel places are
/// distinct edges, so a pair of channels between the same two blocks forms a
/// 2-edge biconnected component.
///
/// # Examples
///
/// ```
/// use marked_graph::{structure::biconnected, MarkedGraph};
///
/// // A ring of 3 plus a pendant vertex: one 3-edge component, one bridge.
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// let d = g.add_transition("D");
/// g.add_place(a, b, 1);
/// g.add_place(b, c, 1);
/// g.add_place(c, a, 1);
/// g.add_place(c, d, 1);
/// let bc = biconnected(&g);
/// assert_eq!(bc.components.len(), 2);
/// assert_eq!(bc.articulation_points, vec![c]);
/// ```
pub fn biconnected(graph: &MarkedGraph) -> Biconnected {
    let n = graph.transition_count();
    // Undirected adjacency: vertex -> (neighbor, place index).
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut self_loops: Vec<PlaceId> = Vec::new();
    for p in graph.place_ids() {
        let u = graph.source(p).index();
        let v = graph.target(p).index();
        if u == v {
            self_loops.push(p);
        } else {
            adj[u].push((v, p.index()));
            adj[v].push((u, p.index()));
        }
    }

    const UNSET: usize = usize::MAX;
    let mut disc = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut time = 0usize;
    let mut edge_stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<PlaceId>> = Vec::new();
    let mut is_ap = vec![false; n];

    // Frame: (vertex, entering edge (place index) or UNSET, next adj index).
    let mut frames: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != UNSET {
            continue;
        }
        disc[root] = time;
        low[root] = time;
        time += 1;
        frames.push((root, UNSET, 0));
        let mut root_children = 0usize;

        while let Some(&(u, pe, i)) = frames.last() {
            if i < adj[u].len() {
                frames.last_mut().expect("frame").2 += 1;
                let (v, e) = adj[u][i];
                if e == pe {
                    continue; // do not traverse the entering edge backwards
                }
                if disc[v] == UNSET {
                    if u == root {
                        root_children += 1;
                    }
                    edge_stack.push(e);
                    disc[v] = time;
                    low[v] = time;
                    time += 1;
                    frames.push((v, e, 0));
                } else if disc[v] < disc[u] {
                    // Back edge to an ancestor.
                    edge_stack.push(e);
                    if disc[v] < low[u] {
                        low[u] = disc[v];
                    }
                }
                // disc[v] > disc[u]: the edge was handled from v's side.
            } else {
                frames.pop();
                if let Some(&(parent, _, _)) = frames.last() {
                    if low[u] < low[parent] {
                        low[parent] = low[u];
                    }
                    if low[u] >= disc[parent] {
                        // parent separates u's subtree: pop one component.
                        let mut comp = Vec::new();
                        while let Some(&e) = edge_stack.last() {
                            // Stop after popping the tree edge parent-u (pe).
                            edge_stack.pop();
                            comp.push(PlaceId::new(e));
                            if e == pe {
                                break;
                            }
                        }
                        components.push(comp);
                        if parent != root {
                            is_ap[parent] = true;
                        }
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[root] = true;
        }
    }

    for p in self_loops {
        components.push(vec![p]);
    }

    Biconnected {
        components,
        articulation_points: (0..n)
            .filter(|&v| is_ap[v])
            .map(TransitionId::new)
            .collect(),
    }
}

/// The bridge places of `graph`: channels whose (undirected) removal
/// disconnects the system. A bridge is exactly a single-edge biconnected
/// component that is not a self-loop.
///
/// # Examples
///
/// ```
/// use marked_graph::{structure::bridges, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 1); // ring: not a bridge
/// let link = g.add_place(b, c, 1); // pendant link: bridge
/// assert_eq!(bridges(&g), vec![link]);
/// ```
pub fn bridges(graph: &MarkedGraph) -> Vec<PlaceId> {
    let mut out: Vec<PlaceId> = biconnected(graph)
        .components
        .into_iter()
        .filter(|c| c.len() == 1 && graph.source(c[0]) != graph.target(c[0]))
        .map(|c| c[0])
        .collect();
    out.sort();
    out
}

/// Whether the undirected view of `graph` is a forest (no undirected cycles,
/// hence in particular no reconvergent paths and no directed cycles).
///
/// Parallel channels, antiparallel channel pairs, and self-loops all count
/// as undirected cycles.
///
/// # Examples
///
/// ```
/// use marked_graph::{structure::is_forest, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// g.add_place(a, b, 1);
/// g.add_place(a, c, 1);
/// assert!(is_forest(&g));
/// ```
pub fn is_forest(graph: &MarkedGraph) -> bool {
    biconnected(graph).components.iter().all(|c| {
        c.len() == 1 && {
            let p = c[0];
            graph.source(p) != graph.target(p)
        }
    })
}

/// Whether a set of places forms exactly one directed elementary cycle.
///
/// Used to decide if an undirected biconnected component is a plain directed
/// cycle (not reconvergent) or a genuine reconvergence.
pub fn is_single_directed_cycle(graph: &MarkedGraph, places: &[PlaceId]) -> bool {
    if places.is_empty() {
        return false;
    }
    use std::collections::HashMap;
    let mut next: HashMap<TransitionId, TransitionId> = HashMap::new();
    let mut indeg: HashMap<TransitionId, usize> = HashMap::new();
    for &p in places {
        let s = graph.source(p);
        let t = graph.target(p);
        if next.insert(s, t).is_some() {
            return false; // out-degree > 1 inside the component
        }
        *indeg.entry(t).or_insert(0) += 1;
    }
    if next.len() != places.len() {
        return false;
    }
    if indeg.values().any(|&d| d != 1) || indeg.len() != places.len() {
        return false;
    }
    // Out-degree 1, in-degree 1 everywhere: functional permutation. One cycle
    // iff following `next` from any vertex visits all vertices.
    let start = graph.source(places[0]);
    let mut cur = start;
    for _ in 0..places.len() {
        cur = match next.get(&cur) {
            Some(&t) => t,
            None => return false,
        };
    }
    cur == start && {
        let mut visited = 1;
        let mut cur = *next.get(&start).expect("start has a successor");
        while cur != start {
            visited += 1;
            cur = match next.get(&cur) {
                Some(&t) => t,
                None => return false,
            };
        }
        visited == places.len()
    }
}

/// Whether `graph` contains reconvergent paths in the paper's sense: an
/// undirected cycle that is not a single directed cycle.
///
/// # Examples
///
/// The Fig. 1 system (two channels from A to B, one pipelined) *is*
/// reconvergent, which is why backpressure degrades it:
///
/// ```
/// use marked_graph::{structure::has_reconvergent_paths, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let rs = g.add_transition("rs");
/// let b = g.add_transition("B");
/// g.add_place(a, rs, 1);
/// g.add_place(rs, b, 0);
/// g.add_place(a, b, 1);
/// assert!(has_reconvergent_paths(&g));
/// ```
///
/// A plain directed ring is not:
///
/// ```
/// use marked_graph::{structure::has_reconvergent_paths, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 1);
/// assert!(!has_reconvergent_paths(&g));
/// ```
pub fn has_reconvergent_paths(graph: &MarkedGraph) -> bool {
    biconnected(graph)
        .components
        .iter()
        .any(|c| c.len() >= 2 && !is_single_directed_cycle(graph, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_detection() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        g.add_place(a, b, 1);
        g.add_place(a, c, 1);
        g.add_place(c, d, 1);
        assert!(is_forest(&g));
        g.add_place(b, d, 1); // closes an undirected cycle
        assert!(!is_forest(&g));
    }

    #[test]
    fn parallel_channels_are_not_forest() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        g.add_place(a, b, 1);
        assert!(!is_forest(&g));
        assert!(has_reconvergent_paths(&g));
    }

    #[test]
    fn directed_ring_is_not_reconvergent() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..5).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..5 {
            g.add_place(ts[i], ts[(i + 1) % 5], 1);
        }
        assert!(!has_reconvergent_paths(&g));
        assert!(!is_forest(&g));
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 1);
        assert_eq!(bc.components[0].len(), 5);
        assert!(bc.articulation_points.is_empty());
    }

    #[test]
    fn antiparallel_pair_is_a_directed_cycle() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        g.add_place(b, a, 1);
        assert!(!has_reconvergent_paths(&g));
    }

    #[test]
    fn figure_eight_rings_share_articulation_point() {
        // Two directed rings sharing exactly one vertex: the paper's
        // "SCC with no reconvergent paths" canonical shape.
        let mut g = MarkedGraph::new();
        let hub = g.add_transition("hub");
        let a = g.add_transition("a");
        let b = g.add_transition("b");
        g.add_place(hub, a, 1);
        g.add_place(a, hub, 1);
        g.add_place(hub, b, 1);
        g.add_place(b, hub, 1);
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 2);
        assert_eq!(bc.articulation_points, vec![hub]);
        assert!(!has_reconvergent_paths(&g));
    }

    #[test]
    fn diamond_is_reconvergent() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        g.add_place(a, b, 1);
        g.add_place(a, c, 1);
        g.add_place(b, d, 1);
        g.add_place(c, d, 1);
        assert!(has_reconvergent_paths(&g));
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 1);
        assert_eq!(bc.components[0].len(), 4);
    }

    #[test]
    fn self_loop_is_own_component_and_not_reconvergent() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        g.add_place(a, a, 1);
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 1);
        assert!(!has_reconvergent_paths(&g));
        assert!(!is_forest(&g)); // a self-loop is an undirected cycle
    }

    #[test]
    fn chain_of_rings_no_reconvergence() {
        // ring - bridge - ring: articulation points at bridge endpoints.
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..6).map(|i| g.add_transition(format!("t{i}"))).collect();
        g.add_place(ts[0], ts[1], 1);
        g.add_place(ts[1], ts[2], 1);
        g.add_place(ts[2], ts[0], 1);
        g.add_place(ts[2], ts[3], 1); // bridge
        g.add_place(ts[3], ts[4], 1);
        g.add_place(ts[4], ts[5], 1);
        g.add_place(ts[5], ts[3], 1);
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 3);
        let mut aps = bc.articulation_points.clone();
        aps.sort();
        assert_eq!(aps, vec![ts[2], ts[3]]);
        assert!(!has_reconvergent_paths(&g));
    }

    #[test]
    fn single_directed_cycle_checker() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let p1 = g.add_place(a, b, 1);
        let p2 = g.add_place(b, c, 1);
        let p3 = g.add_place(c, a, 1);
        assert!(is_single_directed_cycle(&g, &[p1, p2, p3]));
        assert!(!is_single_directed_cycle(&g, &[p1, p2]));
        assert!(!is_single_directed_cycle(&g, &[]));
        // Two disjoint 2-cycles are a permutation but not a single cycle.
        let mut h = MarkedGraph::new();
        let w = h.add_transition("w");
        let x = h.add_transition("x");
        let y = h.add_transition("y");
        let z = h.add_transition("z");
        let q1 = h.add_place(w, x, 1);
        let q2 = h.add_place(x, w, 1);
        let q3 = h.add_place(y, z, 1);
        let q4 = h.add_place(z, y, 1);
        assert!(!is_single_directed_cycle(&h, &[q1, q2, q3, q4]));
    }

    #[test]
    fn bridges_of_chained_rings() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..6).map(|i| g.add_transition(format!("t{i}"))).collect();
        g.add_place(ts[0], ts[1], 1);
        g.add_place(ts[1], ts[2], 1);
        g.add_place(ts[2], ts[0], 1);
        let bridge = g.add_place(ts[2], ts[3], 1);
        g.add_place(ts[3], ts[4], 1);
        g.add_place(ts[4], ts[5], 1);
        g.add_place(ts[5], ts[3], 1);
        assert_eq!(bridges(&g), vec![bridge]);
        // Self-loops are never bridges.
        let mut h = MarkedGraph::new();
        let a = h.add_transition("a");
        h.add_place(a, a, 1);
        assert!(bridges(&h).is_empty());
        // In a tree every place is a bridge.
        let mut t = MarkedGraph::new();
        let x = t.add_transition("x");
        let y = t.add_transition("y");
        let z = t.add_transition("z");
        let p1 = t.add_place(x, y, 1);
        let p2 = t.add_place(x, z, 1);
        assert_eq!(bridges(&t), vec![p1, p2]);
    }

    #[test]
    fn empty_graph() {
        let g = MarkedGraph::new();
        assert!(is_forest(&g));
        assert!(!has_reconvergent_paths(&g));
        assert!(biconnected(&g).components.is_empty());
    }

    #[test]
    fn disconnected_components_handled() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        g.add_place(a, b, 1);
        g.add_place(c, d, 1);
        g.add_place(d, c, 1);
        let bc = biconnected(&g);
        assert_eq!(bc.components.len(), 2);
        assert!(!has_reconvergent_paths(&g));
    }
}
