//! Bursty-source scenario analysis on the packed Monte-Carlo kernel.

use lis_core::{ChannelId, LisSystem};
use lis_sim::{BurstSpec, CompiledProgram, McKernel, QueueMode, StallSpec};

/// Parameters of a bursty-source experiment. All fields are integral so the
/// parameters can key caches (probabilities are in per-mille, matching the
/// stall-sweep convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstParams {
    /// Per-cycle probability (‰) that an ON source turns OFF.
    pub off_per_mille: u32,
    /// Per-cycle probability (‰) that an OFF source turns back ON.
    pub on_per_mille: u32,
    /// Number of Monte-Carlo trials.
    pub trials: u32,
    /// Cycles per trial.
    pub cycles: u64,
    /// Base seed of the deterministic site-RNG streams.
    pub seed: u64,
}

impl Default for BurstParams {
    fn default() -> BurstParams {
        BurstParams {
            off_per_mille: 100,
            on_per_mille: 300,
            trials: 256,
            cycles: 4096,
            seed: 0,
        }
    }
}

/// Observed maximum occupancy of one channel's input queue under the
/// burst plan, next to the hard cap it must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelOccupancy {
    /// The channel.
    pub channel: ChannelId,
    /// Highest token count of the channel's consumer-side queue place over
    /// any cycle of any trial (initial marking included).
    pub max: u64,
    /// The pair-invariant cap: occupancy can never exceed this, burst plan
    /// or not.
    pub cap: u64,
}

/// Result of [`burst_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurstReport {
    /// The parameters the experiment ran with.
    pub params: BurstParams,
    /// Mean system rate across trials.
    pub mean_rate: f64,
    /// Smallest system rate across trials.
    pub min_rate: f64,
    /// Largest system rate across trials.
    pub max_rate: f64,
    /// Per-channel observed maxima and caps, in channel order.
    pub occupancy: Vec<ChannelOccupancy>,
}

impl BurstReport {
    /// `true` iff every channel's observed maximum respects its cap (it
    /// always should — an excess means a kernel bug, and the differential
    /// tests assert this).
    pub fn within_caps(&self) -> bool {
        self.occupancy.iter().all(|o| o.max <= o.cap)
    }
}

/// Runs the seeded bursty-source experiment: every source block is driven
/// by an independent Markov-modulated on/off chain (chains start ON; relay
/// stations stay smooth) and the packed kernel reports firing rates and
/// per-channel maximum queue occupancy. Byte-deterministic in
/// `(sys, params)` at any thread count.
///
/// # Panics
///
/// Panics if `params.trials` is zero.
pub fn burst_report(sys: &LisSystem, params: &BurstParams) -> BurstReport {
    let prog = CompiledProgram::compile(sys, QueueMode::Finite);
    let burst = BurstSpec::sources(
        &prog,
        params.off_per_mille as f64 / 1000.0,
        params.on_per_mille as f64 / 1000.0,
    );
    let caps: Vec<u64> = sys
        .channel_ids()
        .map(|c| {
            prog.place_cap(prog.queue_place(c))
                .expect("finite-mode programs cap every place")
        })
        .collect();
    let stall = StallSpec::none(&prog);
    let kernel = McKernel::new(prog, stall, params.seed).with_burst(burst);
    let (report, occupancy) = kernel.run_occupancy(params.trials as usize, params.cycles);
    BurstReport {
        params: *params,
        mean_rate: report.mean_system_rate(),
        min_rate: report.min_system_rate(),
        max_rate: report.max_system_rate(),
        occupancy: sys
            .channel_ids()
            .zip(occupancy)
            .zip(caps)
            .map(|((channel, max), cap)| ChannelOccupancy { channel, max, cap })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;
    use lis_core::{figures, practical_mst_with};
    use marked_graph::McmEngine;

    #[test]
    fn burst_report_is_deterministic_and_capped() {
        let (sys, _, _) = figures::fig1();
        let params = BurstParams {
            trials: 96,
            cycles: 512,
            ..BurstParams::default()
        };
        let a = burst_report(&sys, &params);
        let b = burst_report(&sys, &params);
        assert_eq!(a, b, "byte-identical reruns");
        assert!(a.within_caps());
        let theta = practical_mst_with(&sys, McmEngine::default()).to_f64();
        assert!(a.max_rate <= theta + 1e-9, "bursts cannot beat θ");
        assert!(a.mean_rate < theta, "bursts cost throughput");
    }

    #[test]
    fn burst_occupancy_respects_the_schedule_caps() {
        let (sys, _, _) = figures::fig6();
        let schedule = Schedule::compute(&sys, McmEngine::default()).unwrap();
        let report = burst_report(
            &sys,
            &BurstParams {
                trials: 64,
                cycles: 256,
                ..BurstParams::default()
            },
        );
        for occ in &report.occupancy {
            assert_eq!(occ.cap, schedule.bound(occ.channel).cap);
            assert!(occ.max <= occ.cap);
        }
    }

    #[test]
    fn zero_burst_attains_the_schedule_peak() {
        let (sys, _, _) = figures::fig1();
        let schedule = Schedule::compute(&sys, McmEngine::default()).unwrap();
        let report = burst_report(
            &sys,
            &BurstParams {
                off_per_mille: 0,
                on_per_mille: 1000,
                trials: 1,
                cycles: 256,
                seed: 7,
            },
        );
        for occ in &report.occupancy {
            assert_eq!(
                occ.max,
                schedule.bound(occ.channel).peak,
                "zero-stall run attains the periodic peak on {:?}",
                occ.channel
            );
        }
    }
}
