//! Step-semantics execution of marked graphs.
//!
//! The paper restricts marked-graph behavior to *step semantics*: the graph
//! moves from marking `M_i` to `M_{i+1}` in a single step during which **all
//! enabled transitions fire concurrently** (Section III-B). Each step
//! corresponds to one clock period of the synchronous system, so per-
//! transition firing rates converge to the throughput values computed by the
//! static minimum-cycle-mean analysis.

use crate::graph::{MarkedGraph, PlaceId, TransitionId};
use crate::ratio::Ratio;

/// A token assignment to every place of a graph.
///
/// # Examples
///
/// ```
/// use marked_graph::{MarkedGraph, Marking};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let p = g.add_place(a, b, 1);
/// let m = Marking::initial(&g);
/// assert_eq!(m.tokens(p), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// Captures the initial marking of a graph.
    pub fn initial(graph: &MarkedGraph) -> Marking {
        Marking {
            tokens: graph.place_ids().map(|p| graph.tokens(p)).collect(),
        }
    }

    /// Token count of a place under this marking.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for the graph this marking was built from.
    pub fn tokens(&self, p: PlaceId) -> u64 {
        self.tokens[p.index()]
    }

    /// Total token count over all places.
    pub fn total(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// Whether a transition is enabled (every input place holds ≥ 1 token).
    pub fn is_enabled(&self, graph: &MarkedGraph, t: TransitionId) -> bool {
        graph.inputs(t).iter().all(|&p| self.tokens[p.index()] > 0)
    }

    /// Token count of the places along a cycle. Invariant under firing
    /// (a defining property of marked graphs).
    pub fn cycle_tokens(&self, cycle: &[PlaceId]) -> u64 {
        cycle.iter().map(|&p| self.tokens[p.index()]).sum()
    }
}

/// The eventually-periodic characterization of a marked graph's execution,
/// produced by [`FiringEngine::periodic_behavior`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicBehavior {
    /// Steps (relative to the engine's start) before the periodic regime.
    ///
    /// More precisely: the step index at which the first recurring marking
    /// was first visited, so the reported period starts there. The true
    /// minimal transient is at most this value.
    pub transient: u64,
    /// Length of the repeating marking cycle.
    pub period: u64,
    /// Firings of each transition over one period.
    pub firings_per_period: Vec<u64>,
}

/// Executes a marked graph under step semantics and records firing counts.
///
/// # Examples
///
/// A two-stage ring where the single token makes each transition fire every
/// other step, i.e. at rate 1/2:
///
/// ```
/// use marked_graph::{FiringEngine, MarkedGraph, Ratio};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 0);
/// let mut engine = FiringEngine::new(&g);
/// engine.run(100);
/// assert_eq!(engine.firings(a), 50);
/// assert_eq!(engine.throughput(a), Ratio::new(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct FiringEngine<'g> {
    graph: &'g MarkedGraph,
    marking: Marking,
    firings: Vec<u64>,
    steps: u64,
    /// Per-place running maximum of tokens over every visited marking
    /// (including the start marking).
    max_tokens: Vec<u64>,
    /// Scratch buffer of transitions enabled in the current step.
    enabled: Vec<TransitionId>,
}

impl<'g> FiringEngine<'g> {
    /// Creates an engine positioned at the graph's initial marking.
    pub fn new(graph: &'g MarkedGraph) -> FiringEngine<'g> {
        FiringEngine::with_marking(graph, Marking::initial(graph))
    }

    /// Creates an engine starting from an explicit marking.
    pub fn with_marking(graph: &'g MarkedGraph, marking: Marking) -> FiringEngine<'g> {
        let max_tokens = marking.tokens.clone();
        FiringEngine {
            graph,
            marking,
            firings: vec![0; graph.transition_count()],
            steps: 0,
            max_tokens,
            enabled: Vec::new(),
        }
    }

    /// The current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Number of steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of times transition `t` has fired.
    pub fn firings(&self, t: TransitionId) -> u64 {
        self.firings[t.index()]
    }

    /// The highest token count place `p` has held over the execution so
    /// far, sampled at step boundaries (the start marking counts).
    ///
    /// On a doubled LIS model the forward place entering a shell is the
    /// channel's input queue, so this maximum is the queue's backlog peak —
    /// the quantity the schedule-derived occupancy bounds cap.
    pub fn max_tokens(&self, p: PlaceId) -> u64 {
        self.max_tokens[p.index()]
    }

    /// Average firing rate of `t` over the steps executed so far.
    ///
    /// # Panics
    ///
    /// Panics if no step has been executed yet.
    pub fn throughput(&self, t: TransitionId) -> Ratio {
        assert!(self.steps > 0, "throughput requires at least one step");
        Ratio::new(self.firings[t.index()] as i64, self.steps as i64)
    }

    /// The lowest per-transition firing rate observed so far.
    ///
    /// For a strongly connected live graph this converges to the graph's
    /// maximal sustainable throughput.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or no step has been executed.
    pub fn min_throughput(&self) -> Ratio {
        self.graph
            .transition_ids()
            .map(|t| self.throughput(t))
            .min()
            .expect("graph has at least one transition")
    }

    /// Executes one synchronous step: all currently-enabled transitions fire
    /// concurrently. Returns how many transitions fired.
    pub fn step(&mut self) -> usize {
        self.enabled.clear();
        for t in self.graph.transition_ids() {
            if self.marking.is_enabled(self.graph, t) {
                self.enabled.push(t);
            }
        }
        for &t in &self.enabled {
            for &p in self.graph.inputs(t) {
                self.marking.tokens[p.index()] -= 1;
            }
            self.firings[t.index()] += 1;
        }
        for &t in &self.enabled {
            for &p in self.graph.outputs(t) {
                let slot = p.index();
                self.marking.tokens[slot] += 1;
                if self.marking.tokens[slot] > self.max_tokens[slot] {
                    self.max_tokens[slot] = self.marking.tokens[slot];
                }
            }
        }
        self.steps += 1;
        self.enabled.len()
    }

    /// Executes `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until the marking repeats and returns the full periodic
    /// characterization: transient length, period, and per-transition
    /// firings per period.
    ///
    /// For a live strongly connected marked graph the marking space is
    /// finite and the dynamics deterministic, so the sequence is eventually
    /// periodic; `firings_per_period[t] / period` is the *exact* long-run
    /// rate of `t`, equal to the minimum cycle mean for strongly connected
    /// graphs. Returns `None` if no repeat occurs within `max_steps`.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::{FiringEngine, MarkedGraph};
    ///
    /// let mut g = MarkedGraph::new();
    /// let a = g.add_transition("A");
    /// let b = g.add_transition("B");
    /// g.add_place(a, b, 1);
    /// g.add_place(b, a, 0);
    /// let mut engine = FiringEngine::new(&g);
    /// let p = engine.periodic_behavior(100).expect("tiny state space");
    /// assert_eq!(p.period, 2);
    /// assert_eq!(p.firings_per_period, vec![1, 1]);
    /// ```
    pub fn periodic_behavior(&mut self, max_steps: u64) -> Option<PeriodicBehavior> {
        use std::collections::HashMap;
        let mut seen: HashMap<Marking, (u64, Vec<u64>)> = HashMap::new();
        seen.insert(self.marking.clone(), (self.steps, self.firings.clone()));
        for _ in 0..max_steps {
            self.step();
            if let Some((step0, fired0)) = seen.get(&self.marking) {
                let period = self.steps - step0;
                let firings_per_period = self
                    .firings
                    .iter()
                    .zip(fired0)
                    .map(|(now, then)| now - then)
                    .collect();
                return Some(PeriodicBehavior {
                    transient: *step0,
                    period,
                    firings_per_period,
                });
            }
            seen.insert(self.marking.clone(), (self.steps, self.firings.clone()));
        }
        None
    }

    /// Runs until the marking repeats (periodic behavior reached) or
    /// `max_steps` is hit, then returns the exact long-run throughput of
    /// transition `t` over one period.
    ///
    /// For a live strongly connected marked graph the reachable marking space
    /// is finite, so a marking must repeat; the firing counts between the two
    /// occurrences give the *exact* sustained rate, free of transient warm-up
    /// effects.
    ///
    /// Returns `None` if no repetition was found within `max_steps`.
    pub fn periodic_throughput(&mut self, t: TransitionId, max_steps: u64) -> Option<Ratio> {
        use std::collections::HashMap;
        let mut seen: HashMap<Marking, (u64, u64)> = HashMap::new();
        seen.insert(self.marking.clone(), (self.steps, self.firings[t.index()]));
        for _ in 0..max_steps {
            self.step();
            if let Some(&(step0, fired0)) = seen.get(&self.marking) {
                let dsteps = self.steps - step0;
                let dfired = self.firings[t.index()] - fired0;
                if dsteps == 0 {
                    return None;
                }
                return Some(Ratio::new(dfired as i64, dsteps as i64));
            }
            seen.insert(self.marking.clone(), (self.steps, self.firings[t.index()]));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(tokens: &[u64]) -> MarkedGraph {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..tokens.len())
            .map(|i| g.add_transition(format!("t{i}")))
            .collect();
        for i in 0..tokens.len() {
            g.add_place(ts[i], ts[(i + 1) % ts.len()], tokens[i]);
        }
        g
    }

    #[test]
    fn enabled_requires_all_inputs() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        g.add_place(a, c, 1);
        g.add_place(b, c, 0);
        let m = Marking::initial(&g);
        assert!(m.is_enabled(&g, a)); // sources (no inputs) are always enabled
        assert!(!m.is_enabled(&g, c));
    }

    #[test]
    fn ring_throughput_matches_token_density() {
        // 2 tokens on a 5-place ring -> rate 2/5 per transition.
        let g = ring(&[1, 0, 1, 0, 0]);
        let mut e = FiringEngine::new(&g);
        e.run(1000);
        for t in g.transition_ids() {
            let tp = e.throughput(t);
            assert!((tp.to_f64() - 0.4).abs() < 0.01, "rate {tp} for {t:?}");
        }
    }

    #[test]
    fn periodic_throughput_is_exact() {
        let g = ring(&[1, 0, 1, 0, 0]);
        let mut e = FiringEngine::new(&g);
        let t0 = TransitionId::new(0);
        assert_eq!(e.periodic_throughput(t0, 10_000), Some(Ratio::new(2, 5)));
    }

    #[test]
    fn cycle_token_count_is_invariant() {
        let g = ring(&[2, 0, 1]);
        let cycle: Vec<_> = g.place_ids().collect();
        let mut e = FiringEngine::new(&g);
        let before = e.marking().cycle_tokens(&cycle);
        e.run(57);
        assert_eq!(e.marking().cycle_tokens(&cycle), before);
    }

    #[test]
    fn deadlocked_ring_never_fires() {
        let g = ring(&[0, 0, 0]);
        let mut e = FiringEngine::new(&g);
        assert_eq!(e.step(), 0);
        e.run(10);
        assert_eq!(e.firings(TransitionId::new(0)), 0);
        assert_eq!(e.min_throughput(), Ratio::ZERO);
    }

    #[test]
    fn source_transition_fires_every_step() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 0);
        let mut e = FiringEngine::new(&g);
        e.run(10);
        assert_eq!(e.firings(a), 10);
        // b receives a token each step after the first and fires at rate -> 1.
        assert_eq!(e.firings(b), 9);
    }

    #[test]
    fn step_returns_fired_count() {
        let g = ring(&[1, 0]);
        let mut e = FiringEngine::new(&g);
        assert_eq!(e.step(), 1);
        assert_eq!(e.step(), 1);
    }

    #[test]
    fn with_marking_starts_elsewhere() {
        let g = ring(&[1, 0]);
        let mut m = Marking::initial(&g);
        // Move the token by one step manually: now it sits on the place
        // entering t0, so t0 is the transition that fires next.
        m.tokens[0] = 0;
        m.tokens[1] = 1;
        let mut e = FiringEngine::with_marking(&g, m);
        e.step();
        assert_eq!(e.firings(TransitionId::new(0)), 1);
        assert_eq!(e.firings(TransitionId::new(1)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn throughput_before_steps_panics() {
        let g = ring(&[1, 0]);
        let e = FiringEngine::new(&g);
        let _ = e.throughput(TransitionId::new(0));
    }

    #[test]
    fn max_tokens_tracks_the_backlog_peak() {
        // src fires every step; mid is gated to rate 1/2 by a self-loop
        // throttle, so the place src -> mid accumulates up to 2 tokens
        // before settling.
        let mut g = MarkedGraph::new();
        let src = g.add_transition("src");
        let mid = g.add_transition("mid");
        let queue = g.add_place(src, mid, 0);
        let t = g.add_transition("throttle");
        let tick = g.add_place(t, t, 1);
        g.add_place(t, mid, 0);
        g.add_place(mid, t, 1);
        let mut e = FiringEngine::new(&g);
        assert_eq!(e.max_tokens(queue), 0); // start marking counts
        e.run(20);
        let peak = e.max_tokens(queue);
        assert!(peak >= 1, "the queue must have been occupied");
        assert_eq!(e.max_tokens(tick), 1); // a 1-token self-loop never grows
                                           // Running further never lowers a recorded maximum.
        e.run(20);
        assert!(e.max_tokens(queue) >= peak);
    }

    #[test]
    fn marking_total() {
        let g = ring(&[3, 2, 0]);
        assert_eq!(Marking::initial(&g).total(), 5);
    }

    #[test]
    fn periodic_behavior_of_ring() {
        // 2 tokens on 5 places: period 5, each transition fires twice.
        let g = ring(&[1, 0, 1, 0, 0]);
        let mut e = FiringEngine::new(&g);
        let p = e.periodic_behavior(1000).expect("small state space");
        assert_eq!(p.firings_per_period, vec![2; 5]);
        assert_eq!(p.period, 5);
        assert_eq!(p.transient, 0); // a single ring is periodic from reset
    }

    #[test]
    fn periodic_behavior_rate_matches_mcm() {
        // Two coupled rings: long-run rate = min cycle mean exactly.
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        g.add_place(a, b, 1);
        g.add_place(b, a, 1);
        g.add_place(b, c, 1);
        g.add_place(c, b, 0);
        let mut e = FiringEngine::new(&g);
        let p = e.periodic_behavior(10_000).expect("finite");
        let mcm = crate::mcm::karp(&g).expect("cyclic");
        for t in 0..3 {
            assert_eq!(
                Ratio::new(p.firings_per_period[t] as i64, p.period as i64),
                mcm
            );
        }
    }

    #[test]
    fn periodic_behavior_none_when_budget_too_small() {
        let g = ring(&[1, 0, 1, 0, 0]);
        let mut e = FiringEngine::new(&g);
        assert_eq!(e.periodic_behavior(2), None);
    }

    #[test]
    fn source_driven_graph_accumulates_and_never_repeats() {
        // A source feeding a sink through an unbounded place: tokens pile
        // up, the marking never repeats.
        let mut g = MarkedGraph::new();
        let src = g.add_transition("src");
        let mid = g.add_transition("mid");
        g.add_place(src, mid, 0);
        g.add_place(src, mid, 0);
        // mid consumes one pair per step but src produces one pair too;
        // add a second source place so mid lags... simplest: make mid
        // require a token from a self-throttled ring at rate 1/2.
        let t = g.add_transition("throttle");
        g.add_place(t, t, 1); // fires every step
        let gate = g.add_place(t, mid, 0);
        let back = g.add_place(mid, t, 0);
        // t needs mid's token back every other step: rate limit.
        let _ = (gate, back);
        let mut e = FiringEngine::new(&g);
        // Depending on structure this may or may not repeat; the call must
        // simply terminate and be consistent with throughput().
        let _ = e.periodic_behavior(100);
        assert!(e.steps() <= 101);
    }
}
