//! The compiled scalar simulation kernel.
//!
//! [`CompiledSim`] executes a [`CompiledProgram`] one clock period at a
//! time with zero per-step allocation and no dynamic dispatch: the enabled
//! set is a transition bitmask computed in one pass over the schedule, and
//! the marking update is one pass over the flat place arrays writing a
//! *second* state region (`new[p] = old[p] - fired[dst] + fired[src]`),
//! after which the regions swap. Because the AND-firing rule reads only the
//! pre-step marking, this read-old/write-new pass is cycle-exact with the
//! reference interpreter by construction — the differential harness in
//! [`crate::diff`] asserts it on every committed netlist.

use lis_core::{BlockId, ChannelId, LisSystem};
use marked_graph::Ratio;

use crate::compile::CompiledProgram;
use crate::simulator::QueueMode;

/// A compiled, allocation-free simulator for protocol-level questions:
/// firing schedules, throughput, stalls, queue occupancy.
///
/// Values carried by tokens are not modeled — the latency-insensitive
/// protocol makes firing independent of data, so every timing-observable
/// quantity of [`crate::LisSimulator`] is reproduced exactly.
///
/// # Examples
///
/// ```
/// use lis_core::figures;
/// use lis_sim::{CompiledSim, QueueMode};
///
/// let (sys, _, _) = figures::fig1();
/// let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
/// sim.run(3000);
/// let a = sys.block_by_name("A").expect("block A exists");
/// assert!((sim.throughput(a).to_f64() - 2.0 / 3.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSim {
    prog: CompiledProgram,
    /// Current marking (region A).
    tokens: Vec<u64>,
    /// Next marking (region B); swapped with `tokens` each step.
    tokens_next: Vec<u64>,
    /// Fired bitmask over transitions, scratch per step.
    fired: Vec<u64>,
    /// Cumulative firing count per transition.
    fired_count: Vec<u64>,
    steps: u64,
    /// When tracing, the per-step fired bitmasks, `words()` words per step.
    trace: Option<Vec<u64>>,
    /// When tracking occupancy, the per-place running token maximum
    /// (the pre-step marking counts).
    max_tokens: Option<Vec<u64>>,
}

impl CompiledSim {
    /// Compiles `sys` under `mode` and builds a simulator at the initial
    /// marking.
    pub fn new(sys: &LisSystem, mode: QueueMode) -> CompiledSim {
        CompiledSim::from_program(CompiledProgram::compile(sys, mode))
    }

    /// Builds a simulator over an already-compiled program.
    pub fn from_program(prog: CompiledProgram) -> CompiledSim {
        let np = prog.place_count();
        let nt = prog.transition_count();
        let words = prog.words();
        CompiledSim {
            tokens: prog.init_tokens.clone(),
            tokens_next: vec![0; np],
            fired: vec![0; words],
            fired_count: vec![0; nt],
            steps: 0,
            trace: None,
            max_tokens: None,
            prog,
        }
    }

    /// Enables per-step fired-trace recording (required by
    /// [`transition_fired_trace`](CompiledSim::transition_fired_trace)).
    /// Call before stepping.
    pub fn record_traces(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Enables per-place running-maximum occupancy tracking (required by
    /// [`max_queue_occupancy`](CompiledSim::max_queue_occupancy)). The
    /// current marking counts immediately, so enabling before any step
    /// includes the initial marking in the maximum.
    pub fn track_occupancy(&mut self) {
        if self.max_tokens.is_none() {
            self.max_tokens = Some(self.tokens.clone());
        }
    }

    /// The compiled program this simulator executes.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// The number of clock periods simulated so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one clock period: every enabled transition fires.
    /// Returns how many transitions fired.
    pub fn step(&mut self) -> usize {
        self.step_masked(&[])
    }

    /// One clock period with an external stall mask: transition `t` is
    /// suppressed (does not fire even if enabled) when bit `t % 64` of
    /// `stalled[t / 64]` is set. An empty slice stalls nothing. This is the
    /// single-trial reference path of the Monte-Carlo kernel.
    pub fn step_masked(&mut self, stalled: &[u64]) -> usize {
        let prog = &self.prog;
        for w in self.fired.iter_mut() {
            *w = 0;
        }
        // Phase 1 (pure read of the old region): the enabled set.
        for &t in &prog.schedule {
            let t = t as usize;
            let lo = prog.in_off[t] as usize;
            let hi = prog.in_off[t + 1] as usize;
            let enabled = prog.in_places[lo..hi]
                .iter()
                .all(|&p| self.tokens[p as usize] > 0);
            let suppressed = stalled.get(t / 64).is_some_and(|w| w >> (t % 64) & 1 == 1);
            if enabled && !suppressed {
                self.fired[t / 64] |= 1u64 << (t % 64);
                self.fired_count[t] += 1;
            }
        }
        // Phase 2 (write the new region): move one token across every
        // place whose endpoints fired.
        for p in 0..prog.place_count() {
            let src = prog.place_src[p] as usize;
            let dst = prog.place_dst[p] as usize;
            let produced = self.fired[src / 64] >> (src % 64) & 1;
            let consumed = self.fired[dst / 64] >> (dst % 64) & 1;
            self.tokens_next[p] = self.tokens[p] - consumed + produced;
        }
        std::mem::swap(&mut self.tokens, &mut self.tokens_next);
        if let Some(max) = &mut self.max_tokens {
            for (m, &t) in max.iter_mut().zip(&self.tokens) {
                if t > *m {
                    *m = t;
                }
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.extend_from_slice(&self.fired);
        }
        self.steps += 1;
        self.fired.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Runs `n` clock periods.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Firing count of a flat transition index.
    pub fn transition_firings(&self, t: usize) -> u64 {
        self.fired_count[t]
    }

    /// Firing count of a block's shell.
    pub fn firings(&self, b: BlockId) -> u64 {
        self.fired_count[self.prog.block_transition(b)]
    }

    /// Average firing rate of a block over the simulated periods.
    ///
    /// # Panics
    ///
    /// Panics if no step has been executed.
    pub fn throughput(&self, b: BlockId) -> Ratio {
        assert!(self.steps > 0, "throughput requires at least one step");
        Ratio::new(self.firings(b) as i64, self.steps as i64)
    }

    /// The smallest per-block firing rate (converges to the system MST for
    /// strongly connected doubled graphs).
    pub fn min_throughput(&self) -> Ratio {
        let steps = self.steps.max(1) as i64;
        self.prog
            .block_transition
            .iter()
            .map(|&t| Ratio::new(self.fired_count[t as usize] as i64, steps))
            .min()
            .expect("system has at least one block")
    }

    /// Whether flat transition `t` fired at `step` (requires
    /// [`record_traces`](CompiledSim::record_traces)).
    ///
    /// # Panics
    ///
    /// Panics if tracing is off or `step` has not been simulated.
    pub fn fired_at(&self, t: usize, step: u64) -> bool {
        let trace = self.trace.as_ref().expect("tracing not enabled");
        let words = self.prog.words();
        let w = trace[step as usize * words + t / 64];
        w >> (t % 64) & 1 == 1
    }

    /// Per period: whether flat transition `t` fired (requires
    /// [`record_traces`](CompiledSim::record_traces)).
    pub fn transition_fired_trace(&self, t: usize) -> Vec<bool> {
        (0..self.steps).map(|s| self.fired_at(t, s)).collect()
    }

    /// Per period: whether block `b`'s shell fired (requires
    /// [`record_traces`](CompiledSim::record_traces)).
    pub fn block_fired_trace(&self, b: BlockId) -> Vec<bool> {
        self.transition_fired_trace(self.prog.block_transition(b))
    }

    /// The number of valid data items buffered on the consumer side of
    /// channel `c` (input queue + the in-flight item), exactly as the
    /// reference interpreter reports it.
    pub fn queue_occupancy(&self, c: ChannelId) -> u64 {
        self.tokens[self.prog.queue_place(c)]
    }

    /// The highest occupancy channel `c`'s input queue has reached over the
    /// run so far, sampled at step boundaries (requires
    /// [`track_occupancy`](CompiledSim::track_occupancy)).
    ///
    /// # Panics
    ///
    /// Panics if occupancy tracking is off.
    pub fn max_queue_occupancy(&self, c: ChannelId) -> u64 {
        let max = self
            .max_tokens
            .as_ref()
            .expect("occupancy tracking not enabled");
        max[self.prog.queue_place(c)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;

    #[test]
    fn fig1_backpressure_rate() {
        let (sys, _, _) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.run(3000);
        let a = sys.block_by_name("A").unwrap();
        assert!((sim.throughput(a).to_f64() - 2.0 / 3.0).abs() < 0.01);
        assert!((sim.min_throughput().to_f64() - 2.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn fig6_sizing_restores_rate() {
        let (sys, _, _) = figures::fig6();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.run(3000);
        let a = sys.block_by_name("A").unwrap();
        assert!(sim.throughput(a).to_f64() > 0.999);
    }

    #[test]
    fn traces_match_firing_pattern() {
        // Fig. 1 finite queues: A settles into the 1,1,0 repeating pattern.
        let (sys, _, _) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.record_traces();
        sim.run(9);
        let a = sys.block_by_name("A").unwrap();
        let trace = sim.block_fired_trace(a);
        assert_eq!(trace.len(), 9);
        assert_eq!(trace.iter().filter(|&&f| f).count() as u64, sim.firings(a));
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let (sys, _, lower) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        for _ in 0..100 {
            sim.step();
            assert!(sim.queue_occupancy(lower) <= sys.queue_capacity(lower) + 1);
        }
    }

    #[test]
    fn max_occupancy_is_a_running_maximum() {
        let (sys, upper, lower) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.track_occupancy();
        let mut observed = 0;
        for _ in 0..100 {
            sim.step();
            observed = observed.max(sim.queue_occupancy(lower));
            assert!(sim.max_queue_occupancy(lower) >= sim.queue_occupancy(lower));
        }
        assert_eq!(sim.max_queue_occupancy(lower), observed);
        assert!(sim.max_queue_occupancy(upper) <= sys.queue_capacity(upper) + 1);
    }

    #[test]
    fn stall_mask_suppresses_firing() {
        let (sys, _, _) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        let a = sys.block_by_name("A").unwrap();
        let t = sim.program().block_transition(a);
        let mask = vec![1u64 << (t % 64); sim.program().words()];
        for _ in 0..50 {
            sim.step_masked(&mask);
        }
        assert_eq!(sim.firings(a), 0, "stalled shell must never fire");
        // Un-stalled, it recovers.
        for _ in 0..50 {
            sim.step();
        }
        assert!(sim.firings(a) > 0);
    }

    #[test]
    fn infinite_mode_runs_free() {
        let (sys, _, _) = figures::fig1();
        let mut sim = CompiledSim::new(&sys, QueueMode::Infinite);
        sim.run(100);
        let a = sys.block_by_name("A").unwrap();
        assert_eq!(sim.firings(a), 100, "ideal model never backpressures A");
    }
}
