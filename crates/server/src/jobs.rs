//! Analysis request kinds: parsing from the wire, cache identity, and
//! execution against the analysis engine.
//!
//! Every `POST` analysis route carries the same envelope:
//!
//! ```json
//! {"netlist": "<lis-core netlist text>", "options": { ... }}
//! ```
//!
//! The route selects the job, `options` its knobs. Execution is pure: the
//! same parsed system and kind always produce the same JSON (the solvers
//! underneath are deterministic), which is what makes the responses safe
//! to cache by content hash.

use lis_core::{canonical_hash, explain_with, AnalysisReport, LisModel, LisSystem, TopologyClass};
use lis_qs::{solve, verify_solution, Algorithm, QsConfig, QsReport};
use lis_rsopt::{exhaustive_insertion, greedy_insertion};
use lis_schedule::{burst_report, BurstParams, Schedule};
use lis_sweep::{
    BurstAxis, CapacityAxis, PointReport, StallAxis, StationGoal, Sweep, SweepMode, SweepRow,
    SweepSpec, SweepSummary,
};
use marked_graph::{McmEngine, Ratio};

use crate::cache::CacheKey;
use crate::error::ServerError;
use crate::wire::{obj, Json};

/// A decoded analysis request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Throughput analysis + topology classification (`POST /analyze`).
    Analyze {
        /// The MCM engine backing the throughput solves.
        engine: McmEngine,
        /// Also compute the explicit periodic firing schedule and the
        /// per-channel queue-occupancy bounds.
        schedule: bool,
        /// Also run the bursty-source Monte-Carlo experiment.
        burst: Option<BurstParams>,
    },
    /// Queue sizing (`POST /qs`), heuristic or exact.
    Qs {
        /// Run the exact branch-and-bound instead of the heuristic.
        exact: bool,
        /// The MCM engine backing the throughput solves.
        engine: McmEngine,
    },
    /// Relay-station insertion search (`POST /insert`).
    Insert {
        /// Maximum stations to insert.
        budget: u32,
    },
    /// Graphviz export of the marked-graph model (`POST /dot`).
    Dot {
        /// Export the doubled model `d[G]` instead of the ideal `G`.
        doubled: bool,
    },
    /// Design-space exploration (`POST /sweep`): one netlist, a grid of
    /// capacities/stations/stall probabilities, streamed row by row.
    Sweep {
        /// The full sweep specification (grid axes, mode, engine).
        spec: SweepSpec,
    },
}

impl RequestKind {
    /// Decodes a request body for the analysis route `route`
    /// (`"analyze"`, `"qs"`, `"insert"`, or `"dot"`), returning the
    /// netlist text and the decoded kind.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] on missing/ill-typed fields.
    pub fn decode(route: &str, body: &Json) -> Result<(String, RequestKind), ServerError> {
        let netlist = body
            .get("netlist")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ServerError::BadRequest("body must be {\"netlist\": \"...\", ...}".into())
            })?
            .to_string();
        let options = body.get("options").unwrap_or(&Json::Null);
        let opt_bool = |name: &str| -> Result<bool, ServerError> {
            match options.get(name) {
                None => Ok(false),
                Some(v) => v.as_bool().ok_or_else(|| {
                    ServerError::BadRequest(format!("option {name:?} must be a boolean"))
                }),
            }
        };
        let opt_engine = || -> Result<McmEngine, ServerError> {
            match options.get("engine") {
                None => Ok(McmEngine::default()),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        ServerError::BadRequest("option \"engine\" must be a string".into())
                    })?
                    .parse()
                    .map_err(ServerError::BadRequest),
            }
        };
        let kind = match route {
            "analyze" => RequestKind::Analyze {
                engine: opt_engine()?,
                schedule: opt_bool("schedule")?,
                burst: decode_burst_params(options)?,
            },
            "qs" => RequestKind::Qs {
                exact: opt_bool("exact")?,
                engine: opt_engine()?,
            },
            "insert" => {
                let budget = match options.get("budget") {
                    None => 2,
                    Some(v) => v.as_u64().filter(|&b| b <= 16).ok_or_else(|| {
                        ServerError::BadRequest(
                            "option \"budget\" must be an integer in 0..=16".into(),
                        )
                    })? as u32,
                };
                RequestKind::Insert { budget }
            }
            "dot" => RequestKind::Dot {
                doubled: opt_bool("doubled")?,
            },
            "sweep" => RequestKind::Sweep {
                spec: decode_sweep_spec(options, opt_bool("exact")?, opt_engine()?)?,
            },
            other => return Err(ServerError::NotFound(format!("/{other}"))),
        };
        Ok((netlist, kind))
    }

    /// A stable token naming the kind *and* every option that affects the
    /// result — the request half of the cache key.
    pub fn token(&self) -> String {
        match self {
            // The bare form stays exactly `analyze:engine=...` so existing
            // cache entries and replicas keep their identity; options
            // append only when set.
            RequestKind::Analyze {
                engine,
                schedule,
                burst,
            } => {
                let mut t = format!("analyze:engine={engine}");
                if *schedule {
                    t.push_str(":schedule=true");
                }
                if let Some(b) = burst {
                    use std::fmt::Write;
                    let _ = write!(
                        t,
                        ":burst=off{}:on{}:trials{}:cycles{}:seed{}",
                        b.off_per_mille, b.on_per_mille, b.trials, b.cycles, b.seed
                    );
                }
                t
            }
            RequestKind::Qs { exact, engine } => format!("qs:exact={exact}:engine={engine}"),
            RequestKind::Insert { budget } => format!("insert:budget={budget}"),
            RequestKind::Dot { doubled } => format!("dot:doubled={doubled}"),
            RequestKind::Sweep { spec } => spec.token(),
        }
    }

    /// The MCM engine label for the per-engine latency metrics, for the
    /// kinds whose runtime is dominated by throughput solves.
    pub fn engine_label(&self) -> Option<&'static str> {
        match self {
            RequestKind::Analyze { engine, .. } | RequestKind::Qs { engine, .. } => {
                Some(engine.as_str())
            }
            RequestKind::Sweep { spec } => Some(spec.engine.as_str()),
            RequestKind::Insert { .. } | RequestKind::Dot { .. } => None,
        }
    }

    /// The content-addressed cache key for this kind applied to `sys`.
    pub fn cache_key(&self, sys: &LisSystem) -> CacheKey {
        let token = self.token();
        let request = token.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        CacheKey {
            system: canonical_hash(sys),
            request,
        }
    }

    /// Runs the job. Deterministic in `(sys, self)`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Analysis`] when the underlying solver fails (e.g.
    /// cycle-enumeration limits).
    pub fn execute(&self, sys: &LisSystem) -> Result<Json, ServerError> {
        match self {
            RequestKind::Analyze {
                engine,
                schedule,
                burst,
            } => analyze(sys, *engine, *schedule, burst.as_ref()),
            RequestKind::Qs { exact, engine } => qs(sys, *exact, *engine),
            RequestKind::Insert { budget } => Ok(insert(sys, *budget)),
            RequestKind::Dot { doubled } => Ok(dot(sys, *doubled)),
            RequestKind::Sweep { spec } => sweep_table(sys, spec),
        }
    }
}

/// Decodes the optional `"burst"` object of `/analyze` options into
/// [`BurstParams`] (missing fields take the [`BurstParams::default`]
/// values). `None` when the option is absent.
fn decode_burst_params(options: &Json) -> Result<Option<BurstParams>, ServerError> {
    let Some(b) = options.get("burst") else {
        return Ok(None);
    };
    let bad = |msg: &str| ServerError::BadRequest(msg.into());
    let field_u64 = |name: &str, default: u64| -> Result<u64, ServerError> {
        match b.get(name) {
            None => Ok(default),
            Some(v) => v.as_u64().ok_or_else(|| {
                ServerError::BadRequest(format!("burst {name:?} must be a non-negative integer"))
            }),
        }
    };
    let defaults = BurstParams::default();
    let per_mille = |name: &str, default: u32| -> Result<u32, ServerError> {
        let v = field_u64(name, u64::from(default))?;
        u32::try_from(v)
            .ok()
            .filter(|&p| p <= 1000)
            .ok_or_else(|| ServerError::BadRequest(format!("burst {name:?} must be ≤ 1000‰")))
    };
    let off_per_mille = per_mille("off_per_mille", defaults.off_per_mille)?;
    let on_per_mille = per_mille("on_per_mille", defaults.on_per_mille)?;
    if on_per_mille == 0 {
        return Err(bad("burst \"on_per_mille\" must be positive"));
    }
    let trials = u32::try_from(field_u64("trials", u64::from(defaults.trials))?)
        .ok()
        .filter(|&t| (1..=4096).contains(&t))
        .ok_or_else(|| bad("burst \"trials\" must be in 1..=4096"))?;
    let cycles = field_u64("cycles", defaults.cycles)?;
    if cycles == 0 || cycles > 1_000_000 {
        return Err(bad("burst \"cycles\" must be in 1..=1000000"));
    }
    Ok(Some(BurstParams {
        off_per_mille,
        on_per_mille,
        trials,
        cycles,
        seed: field_u64("seed", defaults.seed)?,
    }))
}

/// Decodes the `/sweep` options object into a [`SweepSpec`]. Type errors
/// are caught here; semantic validation (unknown channels, grid-size caps)
/// happens when the plan is expanded against the parsed netlist.
fn decode_sweep_spec(
    options: &Json,
    exact: bool,
    engine: McmEngine,
) -> Result<SweepSpec, ServerError> {
    let bad = |msg: &str| ServerError::BadRequest(msg.into());
    let as_u64 = |v: &Json, what: &str| {
        v.as_u64().ok_or_else(|| {
            ServerError::BadRequest(format!("{what} must be a non-negative integer"))
        })
    };
    let mode = match options.get("mode") {
        None => SweepMode::Analyze,
        Some(v) => match v.as_str() {
            Some("analyze") => SweepMode::Analyze,
            Some("qs") => SweepMode::Qs { exact },
            _ => return Err(bad("option \"mode\" must be \"analyze\" or \"qs\"")),
        },
    };
    let mut capacities = Vec::new();
    if let Some(axes) = options.get("capacities") {
        let axes = axes
            .as_arr()
            .ok_or_else(|| bad("option \"capacities\" must be an array of axes"))?;
        for axis in axes {
            let channel = as_u64(
                axis.get("channel").ok_or_else(|| {
                    bad("each capacity axis must be {\"channel\": N, \"values\": [...]}")
                })?,
                "axis \"channel\"",
            )? as usize;
            let values = axis
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("axis \"values\" must be an array"))?
                .iter()
                .map(|v| as_u64(v, "axis value"))
                .collect::<Result<Vec<u64>, _>>()?;
            capacities.push(CapacityAxis { channel, values });
        }
    }
    let stations = match (options.get("budget"), options.get("stations")) {
        (Some(_), Some(_)) => {
            return Err(bad(
                "options \"budget\" and \"stations\" are mutually exclusive",
            ))
        }
        (Some(b), None) => {
            let b = as_u64(b, "option \"budget\"")?;
            let b = u32::try_from(b).map_err(|_| bad("option \"budget\" is out of range"))?;
            StationGoal::Budget(b)
        }
        (None, Some(configs)) => {
            let configs = configs
                .as_arr()
                .ok_or_else(|| bad("option \"stations\" must be an array of configurations"))?;
            let mut out = Vec::with_capacity(configs.len());
            for cfg in configs {
                let cfg = cfg
                    .as_arr()
                    .ok_or_else(|| bad("each station configuration must be an array"))?;
                let mut placements = Vec::with_capacity(cfg.len());
                for entry in cfg {
                    let channel = as_u64(
                        entry.get("channel").ok_or_else(|| {
                            bad("each station entry must be {\"channel\": N, \"add\": N}")
                        })?,
                        "station \"channel\"",
                    )? as usize;
                    let add = as_u64(
                        entry
                            .get("add")
                            .ok_or_else(|| bad("station entry is missing \"add\""))?,
                        "station \"add\"",
                    )?;
                    let add =
                        u32::try_from(add).map_err(|_| bad("station \"add\" is out of range"))?;
                    placements.push((channel, add));
                }
                out.push(placements);
            }
            StationGoal::Configs(out)
        }
        (None, None) => StationGoal::Base,
    };
    let stalls = match options.get("stalls") {
        None => None,
        Some(s) => {
            let per_mille = s
                .get("per_mille")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("stalls \"per_mille\" must be an array"))?
                .iter()
                .map(|v| {
                    as_u64(v, "stall probability").and_then(|p| {
                        u32::try_from(p).map_err(|_| bad("stall probability is out of range"))
                    })
                })
                .collect::<Result<Vec<u32>, _>>()?;
            let trials = match s.get("trials") {
                None => 64,
                Some(v) => u32::try_from(as_u64(v, "stalls \"trials\"")?)
                    .map_err(|_| bad("stalls \"trials\" is out of range"))?,
            };
            let cycles = match s.get("cycles") {
                None => 10_000,
                Some(v) => as_u64(v, "stalls \"cycles\"")?,
            };
            let seed = match s.get("seed") {
                None => 0,
                Some(v) => as_u64(v, "stalls \"seed\"")?,
            };
            Some(StallAxis {
                per_mille,
                trials,
                cycles,
                seed,
            })
        }
    };
    let bursts = match options.get("bursts") {
        None => None,
        Some(s) => {
            let off_per_mille = s
                .get("off_per_mille")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("bursts \"off_per_mille\" must be an array"))?
                .iter()
                .map(|v| {
                    as_u64(v, "burst probability").and_then(|p| {
                        u32::try_from(p).map_err(|_| bad("burst probability is out of range"))
                    })
                })
                .collect::<Result<Vec<u32>, _>>()?;
            let on_per_mille = match s.get("on_per_mille") {
                None => 300,
                Some(v) => u32::try_from(as_u64(v, "bursts \"on_per_mille\"")?)
                    .map_err(|_| bad("bursts \"on_per_mille\" is out of range"))?,
            };
            let trials = match s.get("trials") {
                None => 64,
                Some(v) => u32::try_from(as_u64(v, "bursts \"trials\"")?)
                    .map_err(|_| bad("bursts \"trials\" is out of range"))?,
            };
            let cycles = match s.get("cycles") {
                None => 10_000,
                Some(v) => as_u64(v, "bursts \"cycles\"")?,
            };
            let seed = match s.get("seed") {
                None => 0,
                Some(v) => as_u64(v, "bursts \"seed\"")?,
            };
            Some(BurstAxis {
                off_per_mille,
                on_per_mille,
                trials,
                cycles,
                seed,
            })
        }
    };
    Ok(SweepSpec {
        mode,
        engine,
        capacities,
        stations,
        stalls,
        bursts,
    })
}

fn ratio_json(r: Ratio) -> Json {
    obj([
        ("num", Json::num(r.numer() as f64)),
        ("den", Json::num(r.denom() as f64)),
    ])
}

fn class_label(class: TopologyClass) -> &'static str {
    match class {
        TopologyClass::Tree => "tree",
        TopologyClass::SccNoReconvergence => "scc_no_reconvergence",
        TopologyClass::NetworkNoReconvergence => "network_no_reconvergence",
        TopologyClass::General => "general",
    }
}

fn channel_json(sys: &LisSystem, c: lis_core::ChannelId) -> Json {
    obj([
        ("channel", Json::num(c.index() as f64)),
        ("from", Json::str(sys.block_name(sys.channel_from(c)))),
        ("to", Json::str(sys.block_name(sys.channel_to(c)))),
    ])
}

fn analyze(
    sys: &LisSystem,
    engine: McmEngine,
    schedule: bool,
    burst: Option<&BurstParams>,
) -> Result<Json, ServerError> {
    let base = analyze_report_json(sys, &explain_with(sys, engine));
    if !schedule && burst.is_none() {
        return Ok(base);
    }
    let mut fields = match base {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("analyze_report_json returns an object"),
    };
    if schedule {
        let s = Schedule::compute(sys, engine).map_err(|e| ServerError::Analysis(e.to_string()))?;
        fields.push(("schedule".into(), schedule_json(sys, &s)));
    }
    if let Some(params) = burst {
        fields.push(("burst".into(), burst_json(sys, &burst_report(sys, params))));
    }
    Ok(Json::Obj(fields))
}

/// Renders a computed [`Schedule`]: the exact throughput, the regime shape,
/// one word per transition, and one `{peak, cap}` bound per channel.
fn schedule_json(sys: &LisSystem, s: &Schedule) -> Json {
    let transitions: Vec<Json> = s
        .transitions
        .iter()
        .map(|t| {
            let word: String = t.word.iter().map(|&b| if b { '1' } else { '0' }).collect();
            obj([
                ("name", Json::str(&t.name)),
                ("rate", ratio_json(t.rate)),
                ("firings_per_period", Json::num(t.firings_per_period as f64)),
                ("phase", t.phase.map_or(Json::Null, |p| Json::num(p as f64))),
                ("word", Json::str(&word)),
            ])
        })
        .collect();
    let bounds: Vec<Json> = s
        .bounds
        .iter()
        .map(|b| {
            let mut entry = match channel_json(sys, b.channel) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("peak".into(), Json::num(b.peak as f64)));
            entry.push(("cap".into(), Json::num(b.cap as f64)));
            Json::Obj(entry)
        })
        .collect();
    obj([
        ("throughput", ratio_json(s.throughput)),
        ("transient", Json::num(s.transient as f64)),
        ("period", Json::num(s.period as f64)),
        ("transitions", Json::Arr(transitions)),
        ("bounds", Json::Arr(bounds)),
    ])
}

/// Renders a [`lis_schedule::BurstReport`]: the experiment's parameters,
/// observed rates, and per-channel occupancy maxima against the caps.
fn burst_json(sys: &LisSystem, report: &lis_schedule::BurstReport) -> Json {
    let occupancy: Vec<Json> = report
        .occupancy
        .iter()
        .map(|o| {
            let mut entry = match channel_json(sys, o.channel) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("max".into(), Json::num(o.max as f64)));
            entry.push(("cap".into(), Json::num(o.cap as f64)));
            Json::Obj(entry)
        })
        .collect();
    obj([
        (
            "off_per_mille",
            Json::num(f64::from(report.params.off_per_mille)),
        ),
        (
            "on_per_mille",
            Json::num(f64::from(report.params.on_per_mille)),
        ),
        ("trials", Json::num(f64::from(report.params.trials))),
        ("cycles", Json::num(report.params.cycles as f64)),
        ("seed", Json::num(report.params.seed as f64)),
        ("mean_rate", Json::Num(report.mean_rate)),
        ("min_rate", Json::Num(report.min_rate)),
        ("max_rate", Json::Num(report.max_rate)),
        ("occupancy", Json::Arr(occupancy)),
    ])
}

/// Renders an [`AnalysisReport`] exactly as the `/analyze` route does — the
/// single source of the body layout, shared by the sweep row renderer so a
/// sweep point is byte-identical to an individual round trip.
pub(crate) fn analyze_report_json(sys: &LisSystem, report: &AnalysisReport) -> Json {
    let bottlenecks: Vec<Json> = report
        .bottleneck_queues
        .iter()
        .map(|&c| channel_json(sys, c))
        .collect();
    obj([
        ("blocks", Json::num(sys.block_count() as f64)),
        ("channels", Json::num(sys.channel_count() as f64)),
        (
            "relay_stations",
            Json::num(f64::from(sys.relay_station_count())),
        ),
        // The report's own class, not a fresh classify(sys): the value is
        // identical (explain_with stores classify's answer) and a sweep
        // renders thousands of rows — re-deriving it per row would cost
        // more than the row's entire warm solve.
        ("topology_class", Json::str(class_label(report.class))),
        ("engine", Json::str(report.engine.as_str())),
        ("ideal_mst", ratio_json(report.ideal)),
        ("practical_mst", ratio_json(report.practical)),
        ("degraded", Json::Bool(report.is_degraded())),
        (
            "critical_cycle",
            report
                .critical_cycle
                .as_deref()
                .map_or(Json::Null, Json::str),
        ),
        ("bottleneck_queues", Json::Arr(bottlenecks)),
    ])
}

fn qs(sys: &LisSystem, exact: bool, engine: McmEngine) -> Result<Json, ServerError> {
    let algo = if exact {
        Algorithm::Exact
    } else {
        Algorithm::Heuristic
    };
    let cfg = QsConfig {
        engine,
        ..QsConfig::default()
    };
    let report = solve(sys, algo, &cfg).map_err(|e| ServerError::Analysis(e.to_string()))?;
    if !verify_solution(sys, &report) {
        return Err(ServerError::Analysis(
            "queue-sizing solution failed verification".into(),
        ));
    }
    Ok(qs_report_json(sys, engine, &report))
}

/// Renders a [`QsReport`] exactly as the `/qs` route does (see
/// [`analyze_report_json`] for why this is shared).
pub(crate) fn qs_report_json(sys: &LisSystem, engine: McmEngine, report: &QsReport) -> Json {
    let extra: Vec<Json> = report
        .extra_tokens
        .iter()
        .map(|&(c, w)| {
            let mut entry = match channel_json(sys, c) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("extra_slots".into(), Json::num(w as f64)));
            entry.push((
                "new_capacity".into(),
                Json::num((sys.queue_capacity(c) + w) as f64),
            ));
            Json::Obj(entry)
        })
        .collect();
    obj([
        ("engine", Json::str(engine.as_str())),
        ("target_mst", ratio_json(report.target)),
        ("practical_before", ratio_json(report.practical_before)),
        ("total_extra", Json::num(report.total_extra as f64)),
        ("optimal", Json::Bool(report.optimal)),
        (
            "deficient_cycles",
            Json::num(report.deficient_cycles as f64),
        ),
        ("extra_tokens", Json::Arr(extra)),
    ])
}

fn insert(sys: &LisSystem, budget: u32) -> Json {
    // Exhaustive search is exponential in the budget; same feasibility
    // cutoff the CLI uses.
    let exhaustive_feasible = (sys.channel_count() as u64).pow(budget.min(6)) <= 2_000_000;
    let result = if exhaustive_feasible {
        exhaustive_insertion(sys, budget)
    } else {
        greedy_insertion(sys, budget)
    };
    let placements: Vec<Json> = result
        .placements
        .iter()
        .map(|&(c, n)| {
            let mut entry = match channel_json(sys, c) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("stations".into(), Json::num(f64::from(n))));
            Json::Obj(entry)
        })
        .collect();
    obj([
        (
            "search",
            Json::str(if exhaustive_feasible {
                "exhaustive"
            } else {
                "greedy"
            }),
        ),
        ("practical_mst", ratio_json(result.practical)),
        ("ideal_mst", ratio_json(result.ideal)),
        ("inserted", Json::num(f64::from(result.inserted))),
        ("placements", Json::Arr(placements)),
    ])
}

fn dot(sys: &LisSystem, doubled: bool) -> Json {
    let model = if doubled {
        LisModel::doubled(sys)
    } else {
        LisModel::ideal(sys)
    };
    obj([
        (
            "model",
            Json::str(if doubled { "doubled" } else { "ideal" }),
        ),
        ("dot", Json::str(marked_graph::dot::to_dot(model.graph()))),
    ])
}

/// The first NDJSON line of a streamed sweep: grid shape and knobs.
pub(crate) fn sweep_header_json(sweep: &Sweep) -> Json {
    let spec = sweep.spec();
    obj([
        ("points", Json::num(sweep.point_count() as f64)),
        ("groups", Json::num(sweep.plan().groups.len() as f64)),
        (
            "mode",
            Json::str(match spec.mode {
                SweepMode::Analyze => "analyze",
                SweepMode::Qs { .. } => "qs",
            }),
        ),
        ("engine", Json::str(spec.engine.as_str())),
    ])
}

/// One streamed sweep row. The `result` field is rendered by the same
/// functions as the single-shot `/analyze` and `/qs` routes, applied to the
/// row's fully-modified system, so it is byte-identical to the body an
/// individual round trip on that design point would return.
pub(crate) fn sweep_row_json(row: &SweepRow, engine: McmEngine) -> Json {
    let stations: Vec<Json> = row
        .placements
        .iter()
        .map(|&(c, n)| {
            let mut entry = match channel_json(&row.sys, c) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("add".into(), Json::num(f64::from(n))));
            Json::Obj(entry)
        })
        .collect();
    let capacities: Vec<Json> = row
        .capacities
        .iter()
        .map(|&(c, q)| {
            obj([
                ("channel", Json::num(c.index() as f64)),
                ("capacity", Json::num(q as f64)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("point".to_string(), Json::num(row.point as f64)),
        ("group".to_string(), Json::num(row.group as f64)),
        ("stations".to_string(), Json::Arr(stations)),
        ("capacities".to_string(), Json::Arr(capacities)),
        (
            "total_capacity".to_string(),
            Json::num(row.total_capacity as f64),
        ),
    ];
    match &row.outcome {
        Ok(PointReport::Analyze(report)) => {
            fields.push(("result".into(), analyze_report_json(&row.sys, report)))
        }
        Ok(PointReport::Qs(report)) => {
            fields.push(("result".into(), qs_report_json(&row.sys, engine, report)))
        }
        Err(msg) => fields.push(("error".into(), Json::str(msg))),
    }
    if !row.sim.is_empty() {
        let sim: Vec<Json> = row
            .sim
            .iter()
            .map(|p| {
                obj([
                    ("per_mille", Json::num(f64::from(p.per_mille))),
                    ("mean_rate", Json::Num(p.mean_rate)),
                    ("min_rate", Json::Num(p.min_rate)),
                    ("max_rate", Json::Num(p.max_rate)),
                ])
            })
            .collect();
        fields.push(("sim".into(), Json::Arr(sim)));
    }
    if !row.burst.is_empty() {
        let burst: Vec<Json> = row
            .burst
            .iter()
            .map(|p| {
                obj([
                    ("off_per_mille", Json::num(f64::from(p.off_per_mille))),
                    ("mean_rate", Json::Num(p.mean_rate)),
                    ("min_rate", Json::Num(p.min_rate)),
                    ("max_rate", Json::Num(p.max_rate)),
                    ("peak_occupancy", Json::num(p.peak_occupancy as f64)),
                ])
            })
            .collect();
        fields.push(("burst".into(), Json::Arr(burst)));
    }
    Json::Obj(fields)
}

/// The last NDJSON line of a streamed sweep: row count, Pareto front (by
/// point index), and warm-cache statistics.
pub(crate) fn sweep_trailer_json(pareto: &[usize], summary: &SweepSummary) -> Json {
    obj([
        ("done", Json::Bool(true)),
        ("rows", Json::num(summary.points as f64)),
        (
            "pareto",
            Json::Arr(pareto.iter().map(|&i| Json::num(i as f64)).collect()),
        ),
        ("warm_hits", Json::num(summary.warm_hits as f64)),
        ("warm_misses", Json::num(summary.warm_misses as f64)),
    ])
}

/// The buffered (non-streaming) sweep result: the same header, rows, and
/// trailer a streamed `/sweep` emits, as one JSON object. This is what
/// [`RequestKind::execute`] returns; the server's streaming path emits the
/// pieces incrementally instead.
fn sweep_table(sys: &LisSystem, spec: &SweepSpec) -> Result<Json, ServerError> {
    let sweep = Sweep::new(sys.clone(), spec.clone())
        .map_err(|e| ServerError::BadRequest(e.to_string()))?;
    let (rows, summary) = sweep.evaluate();
    let pareto = lis_sweep::pareto_front(&rows);
    let header = sweep_header_json(&sweep);
    let row_json: Vec<Json> = rows
        .iter()
        .map(|row| sweep_row_json(row, spec.engine))
        .collect();
    let mut fields = match header {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("sweep_header_json returns an object"),
    };
    fields.push(("rows".into(), Json::Arr(row_json)));
    let trailer = match sweep_trailer_json(&pareto, &summary) {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("sweep_trailer_json returns an object"),
    };
    fields.extend(trailer.into_iter().filter(|(k, _)| k != "done"));
    Ok(Json::Obj(fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::parse_netlist;

    const FIG1: &str = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";

    fn fig1() -> LisSystem {
        parse_netlist(FIG1).expect("fig1 parses")
    }

    #[test]
    fn decode_accepts_every_route_and_option() {
        let body = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"exact": true, "budget": 3, "doubled": true}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        let (text, kind) = RequestKind::decode("analyze", &body).unwrap();
        assert_eq!(text, FIG1);
        assert_eq!(
            kind,
            RequestKind::Analyze {
                engine: McmEngine::Howard,
                schedule: false,
                burst: None,
            }
        );
        assert_eq!(
            RequestKind::decode("qs", &body).unwrap().1,
            RequestKind::Qs {
                exact: true,
                engine: McmEngine::Howard
            }
        );
        assert_eq!(
            RequestKind::decode("insert", &body).unwrap().1,
            RequestKind::Insert { budget: 3 }
        );
        assert_eq!(
            RequestKind::decode("dot", &body).unwrap().1,
            RequestKind::Dot { doubled: true }
        );
    }

    #[test]
    fn decode_defaults_options() {
        let body = Json::parse(&format!(r#"{{"netlist": {}}}"#, Json::str(FIG1))).unwrap();
        assert_eq!(
            RequestKind::decode("qs", &body).unwrap().1,
            RequestKind::Qs {
                exact: false,
                engine: McmEngine::Howard
            }
        );
        assert_eq!(
            RequestKind::decode("insert", &body).unwrap().1,
            RequestKind::Insert { budget: 2 }
        );
    }

    #[test]
    fn decode_selects_and_validates_the_engine() {
        for (name, engine) in [
            ("howard", McmEngine::Howard),
            ("karp", McmEngine::Karp),
            ("lawler", McmEngine::Lawler),
        ] {
            let body = Json::parse(&format!(
                r#"{{"netlist": {}, "options": {{"engine": "{name}"}}}}"#,
                Json::str(FIG1)
            ))
            .unwrap();
            assert_eq!(
                RequestKind::decode("analyze", &body).unwrap().1,
                RequestKind::Analyze {
                    engine,
                    schedule: false,
                    burst: None,
                }
            );
            assert_eq!(
                RequestKind::decode("qs", &body).unwrap().1,
                RequestKind::Qs {
                    exact: false,
                    engine
                }
            );
        }
        let bad = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"engine": "dijkstra"}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("analyze", &bad),
            Err(ServerError::BadRequest(_))
        ));
        let ill_typed = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"engine": 7}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("qs", &ill_typed),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_envelopes() {
        let no_netlist = Json::parse(r#"{"options": {}}"#).unwrap();
        assert!(matches!(
            RequestKind::decode("analyze", &no_netlist),
            Err(ServerError::BadRequest(_))
        ));
        let bad_opt = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"exact": 1}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("qs", &bad_opt),
            Err(ServerError::BadRequest(_))
        ));
        let big_budget = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"budget": 999}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("insert", &big_budget),
            Err(ServerError::BadRequest(_))
        ));
        let ok = Json::parse(&format!(r#"{{"netlist": {}}}"#, Json::str(FIG1))).unwrap();
        assert!(matches!(
            RequestKind::decode("nonsense", &ok),
            Err(ServerError::NotFound(_))
        ));
    }

    #[test]
    fn cache_keys_separate_kinds_and_share_equivalent_netlists() {
        let sys = fig1();
        let noisy = parse_netlist(
            "# same system\nblock \"A\"\nblock B\nchannel A -> B rs=1 q=1\nchannel A -> B\n",
        )
        .unwrap();
        let analyze = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: false,
            burst: None,
        };
        let analyze_karp = RequestKind::Analyze {
            engine: McmEngine::Karp,
            schedule: false,
            burst: None,
        };
        let qs_h = RequestKind::Qs {
            exact: false,
            engine: McmEngine::Howard,
        };
        let qs_x = RequestKind::Qs {
            exact: true,
            engine: McmEngine::Howard,
        };
        assert_eq!(analyze.cache_key(&sys), analyze.cache_key(&noisy));
        assert_ne!(analyze.cache_key(&sys), qs_h.cache_key(&sys));
        assert_ne!(qs_h.cache_key(&sys), qs_x.cache_key(&sys));
        // Different engines must not share cache entries.
        assert_ne!(analyze.cache_key(&sys), analyze_karp.cache_key(&sys));
    }

    #[test]
    fn engine_labels_cover_the_throughput_routes() {
        assert_eq!(
            RequestKind::Analyze {
                engine: McmEngine::Karp,
                schedule: false,
                burst: None,
            }
            .engine_label(),
            Some("karp")
        );
        assert_eq!(
            RequestKind::Qs {
                exact: true,
                engine: McmEngine::Lawler
            }
            .engine_label(),
            Some("lawler")
        );
        assert_eq!(RequestKind::Insert { budget: 1 }.engine_label(), None);
        assert_eq!(RequestKind::Dot { doubled: false }.engine_label(), None);
    }

    #[test]
    fn analyze_reports_the_fig1_numbers() {
        let out = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: false,
            burst: None,
        }
        .execute(&fig1())
        .unwrap();
        assert_eq!(out.get("blocks").unwrap().as_u64(), Some(2));
        assert_eq!(out.get("topology_class").unwrap().as_str(), Some("general"));
        assert_eq!(out.get("engine").unwrap().as_str(), Some("howard"));
        let practical = out.get("practical_mst").unwrap();
        assert_eq!(practical.get("num").unwrap().as_u64(), Some(2));
        assert_eq!(practical.get("den").unwrap().as_u64(), Some(3));
        assert_eq!(out.get("degraded").unwrap().as_bool(), Some(true));
        assert!(!out
            .get("bottleneck_queues")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn qs_exact_fixes_fig1_with_one_slot() {
        let out = RequestKind::Qs {
            exact: true,
            engine: McmEngine::Howard,
        }
        .execute(&fig1())
        .unwrap();
        assert_eq!(out.get("total_extra").unwrap().as_u64(), Some(1));
        assert_eq!(out.get("optimal").unwrap().as_bool(), Some(true));
        let extra = out.get("extra_tokens").unwrap().as_arr().unwrap();
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].get("extra_slots").unwrap().as_u64(), Some(1));
        assert_eq!(extra[0].get("new_capacity").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn insert_and_dot_run_on_fig1() {
        let out = RequestKind::Insert { budget: 1 }.execute(&fig1()).unwrap();
        assert_eq!(out.get("search").unwrap().as_str(), Some("exhaustive"));
        assert!(out.get("practical_mst").unwrap().get("num").is_some());
        let ideal = RequestKind::Dot { doubled: false }
            .execute(&fig1())
            .unwrap();
        assert!(ideal
            .get("dot")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("digraph"));
        let doubled = RequestKind::Dot { doubled: true }.execute(&fig1()).unwrap();
        assert!(
            doubled.get("dot").unwrap().as_str().unwrap().len()
                > ideal.get("dot").unwrap().as_str().unwrap().len()
        );
    }

    #[test]
    fn decode_analyze_schedule_and_burst_options() {
        let body = Json::parse(&format!(
            concat!(
                r#"{{"netlist": {}, "options": {{"schedule": true, "#,
                r#""burst": {{"off_per_mille": 150, "on_per_mille": 400, "#,
                r#""trials": 96, "cycles": 2048, "seed": 11}}}}}}"#
            ),
            Json::str(FIG1)
        ))
        .unwrap();
        let (_, kind) = RequestKind::decode("analyze", &body).unwrap();
        assert_eq!(
            kind,
            RequestKind::Analyze {
                engine: McmEngine::Howard,
                schedule: true,
                burst: Some(BurstParams {
                    off_per_mille: 150,
                    on_per_mille: 400,
                    trials: 96,
                    cycles: 2048,
                    seed: 11,
                }),
            }
        );

        // Burst fields default; absent burst stays None.
        let body = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"burst": {{}}}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        let (_, kind) = RequestKind::decode("analyze", &body).unwrap();
        assert_eq!(
            kind,
            RequestKind::Analyze {
                engine: McmEngine::Howard,
                schedule: false,
                burst: Some(BurstParams::default()),
            }
        );

        // Out-of-range probabilities and zero workloads are rejected.
        for bad in [
            r#"{"off_per_mille": 1500}"#,
            r#"{"on_per_mille": 0}"#,
            r#"{"trials": 0}"#,
            r#"{"trials": 100000}"#,
            r#"{"cycles": 0}"#,
        ] {
            let body = Json::parse(&format!(
                r#"{{"netlist": {}, "options": {{"burst": {bad}}}}}"#,
                Json::str(FIG1)
            ))
            .unwrap();
            assert!(
                matches!(
                    RequestKind::decode("analyze", &body),
                    Err(ServerError::BadRequest(_))
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn schedule_tokens_preserve_the_legacy_identity_and_separate_options() {
        let bare = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: false,
            burst: None,
        };
        // The bare token is byte-identical to the pre-schedule format, so
        // existing cache entries and store replicas keep their identity.
        assert_eq!(bare.token(), "analyze:engine=howard");
        let with_schedule = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: true,
            burst: None,
        };
        let with_burst = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: false,
            burst: Some(BurstParams::default()),
        };
        let sys = fig1();
        assert_ne!(bare.cache_key(&sys), with_schedule.cache_key(&sys));
        assert_ne!(bare.cache_key(&sys), with_burst.cache_key(&sys));
        assert_ne!(with_schedule.cache_key(&sys), with_burst.cache_key(&sys));
        let other_seed = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: false,
            burst: Some(BurstParams {
                seed: 1,
                ..BurstParams::default()
            }),
        };
        assert_ne!(with_burst.cache_key(&sys), other_seed.cache_key(&sys));
    }

    #[test]
    fn analyze_with_schedule_reports_the_fig1_regime() {
        let out = RequestKind::Analyze {
            engine: McmEngine::Howard,
            schedule: true,
            burst: Some(BurstParams {
                trials: 64,
                cycles: 512,
                ..BurstParams::default()
            }),
        }
        .execute(&fig1())
        .unwrap();
        // The plain analyze fields are untouched by the extras.
        assert_eq!(out.get("blocks").unwrap().as_u64(), Some(2));
        let schedule = out.get("schedule").unwrap();
        let theta = schedule.get("throughput").unwrap();
        assert_eq!(theta.get("num").unwrap().as_u64(), Some(2));
        assert_eq!(theta.get("den").unwrap().as_u64(), Some(3));
        for t in schedule.get("transitions").unwrap().as_arr().unwrap() {
            let rate = t.get("rate").unwrap();
            assert_eq!(rate.get("num").unwrap().as_u64(), Some(2));
            assert_eq!(rate.get("den").unwrap().as_u64(), Some(3));
            let word = t.get("word").unwrap().as_str().unwrap();
            assert_eq!(
                word.len() as u64,
                schedule.get("period").unwrap().as_u64().unwrap()
            );
        }
        for b in schedule.get("bounds").unwrap().as_arr().unwrap() {
            assert!(b.get("peak").unwrap().as_u64() <= b.get("cap").unwrap().as_u64());
        }
        let burst = out.get("burst").unwrap();
        assert!(burst.get("mean_rate").unwrap().as_f64().unwrap() <= 2.0 / 3.0 + 1e-9);
        for occ in burst.get("occupancy").unwrap().as_arr().unwrap() {
            assert!(occ.get("max").unwrap().as_u64() <= occ.get("cap").unwrap().as_u64());
        }
    }

    #[test]
    fn decode_sweep_options() {
        let body = Json::parse(&format!(
            concat!(
                r#"{{"netlist": {}, "options": {{"mode": "qs", "exact": true, "#,
                r#""engine": "karp", "capacities": [{{"channel": 1, "values": [1, 2, 4]}}], "#,
                r#""budget": 2, "stalls": {{"per_mille": [0, 250], "trials": 32, "#,
                r#""cycles": 500, "seed": 7}}}}}}"#
            ),
            Json::str(FIG1)
        ))
        .unwrap();
        let (_, kind) = RequestKind::decode("sweep", &body).unwrap();
        let RequestKind::Sweep { spec } = &kind else {
            panic!("sweep kind");
        };
        assert_eq!(spec.mode, SweepMode::Qs { exact: true });
        assert_eq!(spec.engine, McmEngine::Karp);
        assert_eq!(spec.capacities.len(), 1);
        assert_eq!(spec.capacities[0].values, vec![1, 2, 4]);
        assert_eq!(spec.stations, StationGoal::Budget(2));
        let stalls = spec.stalls.as_ref().unwrap();
        assert_eq!(stalls.per_mille, vec![0, 250]);
        assert_eq!(stalls.trials, 32);
        assert_eq!(stalls.cycles, 500);
        assert_eq!(stalls.seed, 7);
        assert_eq!(kind.engine_label(), Some("karp"));
        assert_eq!(kind.token(), spec.token());

        // Defaults: analyze mode, base stations, no stalls.
        let bare = Json::parse(&format!(r#"{{"netlist": {}}}"#, Json::str(FIG1))).unwrap();
        let (_, kind) = RequestKind::decode("sweep", &bare).unwrap();
        assert_eq!(
            kind,
            RequestKind::Sweep {
                spec: SweepSpec::analyze()
            }
        );

        // Budget and explicit stations are mutually exclusive.
        let both = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"budget": 1, "stations": [[]]}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("sweep", &both),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn sweep_rows_match_individual_round_trip_bodies() {
        let body = Json::parse(&format!(
            concat!(
                r#"{{"netlist": {}, "options": {{"capacities": "#,
                r#"[{{"channel": 1, "values": [1, 2, 3]}}], "budget": 2}}}}"#
            ),
            Json::str(FIG1)
        ))
        .unwrap();
        let (_, kind) = RequestKind::decode("sweep", &body).unwrap();
        let table = kind.execute(&fig1()).unwrap();
        let rows = table.get("rows").unwrap().as_arr().unwrap();
        // Fig. 1 greedy frontier has two groups (bare, one station) × 3 caps.
        assert_eq!(table.get("points").unwrap().as_u64(), Some(6));
        assert_eq!(rows.len(), 6);
        for row in rows {
            // Rebuild the row's design point from scratch and run the
            // single-shot analyze job on it: byte-identical bodies.
            let mut sys = fig1();
            for s in row.get("stations").unwrap().as_arr().unwrap() {
                let c =
                    lis_core::ChannelId::new(s.get("channel").unwrap().as_u64().unwrap() as usize);
                for _ in 0..s.get("add").unwrap().as_u64().unwrap() {
                    sys.add_relay_station(c);
                }
            }
            for cap in row.get("capacities").unwrap().as_arr().unwrap() {
                let c = lis_core::ChannelId::new(
                    cap.get("channel").unwrap().as_u64().unwrap() as usize
                );
                sys.set_queue_capacity(c, cap.get("capacity").unwrap().as_u64().unwrap())
                    .unwrap();
            }
            let single = RequestKind::Analyze {
                engine: McmEngine::Howard,
                schedule: false,
                burst: None,
            }
            .execute(&sys)
            .unwrap();
            assert_eq!(
                row.get("result").unwrap().to_string(),
                single.to_string(),
                "point {:?}",
                row.get("point")
            );
        }
        // The trailer data rides on the table: Pareto indices and warm stats.
        assert!(!table.get("pareto").unwrap().as_arr().unwrap().is_empty());
        assert!(table.get("warm_hits").unwrap().as_u64().is_some());
    }

    #[test]
    fn execution_is_deterministic() {
        let sys = fig1();
        for kind in [
            RequestKind::Analyze {
                engine: McmEngine::Howard,
                schedule: true,
                burst: Some(BurstParams {
                    trials: 64,
                    cycles: 256,
                    ..BurstParams::default()
                }),
            },
            RequestKind::Qs {
                exact: false,
                engine: McmEngine::Lawler,
            },
            RequestKind::Insert { budget: 2 },
            RequestKind::Dot { doubled: true },
        ] {
            let a = kind.execute(&sys).unwrap().to_string();
            let b = kind.execute(&sys).unwrap().to_string();
            assert_eq!(a, b, "{kind:?} was not deterministic");
        }
    }
}
