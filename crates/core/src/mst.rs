//! Maximal sustainable throughput (MST).
//!
//! Section III-C of the paper defines the MST `θ(G)` of a marked graph `G`:
//!
//! * 1 if `G` is acyclic (it can sustain any token rate);
//! * `min(1, 1/π(G))` if `G` is strongly connected, where the cycle time
//!   `π(G)` is the reciprocal of the minimum cycle mean;
//! * the minimum of the SCC throughputs otherwise (the slowest component
//!   throttles everything downstream and constrains everything upstream).
//!
//! All three cases collapse to `min(1, minimum cycle mean over all cycles)`,
//! with the convention that an acyclic graph has no cycles and contributes 1.

use marked_graph::mcm::{self, McmEngine, McmResult};
use marked_graph::{GraphError, MarkedGraph, PlaceId, Ratio};

use crate::model::LisModel;
use crate::system::LisSystem;

/// The maximal sustainable throughput of a marked graph.
///
/// # Examples
///
/// ```
/// use lis_core::mst;
/// use marked_graph::{MarkedGraph, Ratio};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// assert_eq!(mst(&g), Ratio::ONE); // acyclic
///
/// g.add_place(b, a, 0);
/// assert_eq!(mst(&g), Ratio::new(1, 2)); // 1 token / 2 places
/// ```
pub fn mst(graph: &MarkedGraph) -> Ratio {
    mst_with(graph, McmEngine::default())
}

/// [`mst`] with an explicit MCM engine choice; all engines agree exactly.
pub fn mst_with(graph: &MarkedGraph, engine: McmEngine) -> Ratio {
    match mcm::mcm_serial(graph, engine) {
        Some(mean) => mean.min(Ratio::ONE),
        None => Ratio::ONE,
    }
}

/// The MST together with a critical cycle, when one exists.
///
/// Returns `(1, None)` for acyclic graphs; when the graph is cyclic but all
/// cycle means are at least one (no throughput limitation), the returned
/// cycle is still the minimum-mean one, with the MST capped at 1.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] for graphs with no transitions.
pub fn mst_with_critical_cycle(
    graph: &MarkedGraph,
) -> Result<(Ratio, Option<Vec<PlaceId>>), GraphError> {
    mst_with_critical_cycle_with(graph, McmEngine::default())
}

/// [`mst_with_critical_cycle`] with an explicit MCM engine choice.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] for graphs with no transitions.
pub fn mst_with_critical_cycle_with(
    graph: &MarkedGraph,
    engine: McmEngine,
) -> Result<(Ratio, Option<Vec<PlaceId>>), GraphError> {
    if graph.is_empty() {
        return Err(GraphError::Empty);
    }
    match mcm::minimum_cycle_mean_with(graph, engine) {
        Ok(McmResult {
            mean,
            critical_cycle,
        }) => Ok((mean.min(Ratio::ONE), Some(critical_cycle))),
        Err(GraphError::Acyclic) => Ok((Ratio::ONE, None)),
        Err(e) => Err(e),
    }
}

/// The MST of the *ideal* LIS (infinite queues, no backpressure).
///
/// # Examples
///
/// ```
/// use lis_core::{ideal_mst, LisSystem};
/// use marked_graph::Ratio;
///
/// let mut sys = LisSystem::new();
/// let a = sys.add_block("A");
/// let b = sys.add_block("B");
/// let upper = sys.add_channel(a, b);
/// sys.add_channel(a, b);
/// sys.add_relay_station(upper);
/// // No feedback loop: the tau leaves the system, MST stays 1.
/// assert_eq!(ideal_mst(&sys), Ratio::ONE);
/// ```
pub fn ideal_mst(sys: &LisSystem) -> Ratio {
    mst(LisModel::ideal(sys).graph())
}

/// [`ideal_mst`] with an explicit MCM engine choice.
pub fn ideal_mst_with(sys: &LisSystem, engine: McmEngine) -> Ratio {
    mst_with(LisModel::ideal(sys).graph(), engine)
}

/// The MST of the *practical* LIS (finite queues with backpressure), i.e.
/// `θ(d[G])` for the system's current queue capacities.
///
/// # Examples
///
/// ```
/// use lis_core::{practical_mst, LisSystem};
/// use marked_graph::Ratio;
///
/// let mut sys = LisSystem::new();
/// let a = sys.add_block("A");
/// let b = sys.add_block("B");
/// let upper = sys.add_channel(a, b);
/// sys.add_channel(a, b);
/// sys.add_relay_station(upper);
/// // Backpressure with q = 1 degrades the MST to 2/3 (paper Fig. 5).
/// assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
/// ```
pub fn practical_mst(sys: &LisSystem) -> Ratio {
    mst(LisModel::doubled(sys).graph())
}

/// [`practical_mst`] with an explicit MCM engine choice.
pub fn practical_mst_with(sys: &LisSystem, engine: McmEngine) -> Ratio {
    mst_with(LisModel::doubled(sys).graph(), engine)
}

/// How much throughput backpressure costs: `ideal - practical`, always ≥ 0.
pub fn mst_degradation(sys: &LisSystem) -> Ratio {
    ideal_mst(sys) - practical_mst(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::LisSystem;

    #[test]
    fn empty_graph_mst_is_one_by_convention() {
        // karp() returns None for the empty graph; mst() maps that to 1.
        let g = MarkedGraph::new();
        assert_eq!(mst(&g), Ratio::ONE);
        assert!(mst_with_critical_cycle(&g).is_err());
    }

    #[test]
    fn acyclic_reports_no_cycle() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        let (m, c) = mst_with_critical_cycle(&g).unwrap();
        assert_eq!(m, Ratio::ONE);
        assert!(c.is_none());
    }

    #[test]
    fn mst_is_capped_at_one() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 3);
        g.add_place(b, a, 3);
        assert_eq!(mst(&g), Ratio::ONE);
        let (m, c) = mst_with_critical_cycle(&g).unwrap();
        assert_eq!(m, Ratio::ONE);
        assert!(c.is_some());
    }

    #[test]
    fn degradation_of_fig1() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let upper = sys.add_channel(a, b);
        sys.add_channel(a, b);
        sys.add_relay_station(upper);
        assert_eq!(ideal_mst(&sys), Ratio::ONE);
        assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
        assert_eq!(mst_degradation(&sys), Ratio::new(1, 3));
    }

    #[test]
    fn relay_station_in_feedback_loop_degrades_ideal_mst() {
        // A ring A -> B -> A with one relay station on the return channel:
        // the tau keeps circulating, ideal MST = 2/3 (2 tokens, 3 places).
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        sys.add_channel(a, b);
        let back = sys.add_channel(b, a);
        sys.add_relay_station(back);
        assert_eq!(ideal_mst(&sys), Ratio::new(2, 3));
        // Doubling cannot make it worse here (no reconvergent paths).
        assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
    }

    #[test]
    fn practical_never_exceeds_ideal() {
        // Doubling only adds cycles, so theta(d[G]) <= theta(G).
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        let ab = sys.add_channel(a, b);
        sys.add_channel(b, c);
        sys.add_channel(a, c);
        sys.add_channel(c, a);
        sys.add_relay_station(ab);
        assert!(practical_mst(&sys) <= ideal_mst(&sys));
        assert!(mst_degradation(&sys) >= Ratio::ZERO);
    }

    #[test]
    fn no_relay_stations_means_no_degradation() {
        // Without relay stations every cycle of d[G] has tokens >= places.
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        sys.add_channel(a, b);
        sys.add_channel(b, c);
        sys.add_channel(c, a);
        sys.add_channel(a, c);
        assert_eq!(ideal_mst(&sys), Ratio::ONE);
        assert_eq!(practical_mst(&sys), Ratio::ONE);
    }
}
