//! Minimum-cycle-mean kernel benchmarks: Karp vs Lawler.
//!
//! These back the CPU-time columns of Tables IV/V: every queue-sizing
//! verification is one MCM computation on the doubled graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lis_core::LisModel;
use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use marked_graph::mcm::{karp, lawler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn doubled_graph(vertices: usize, sccs: usize) -> marked_graph::MarkedGraph {
    let cfg = GeneratorConfig {
        vertices,
        sccs,
        min_cycles_per_scc: 5,
        relay_stations: 10,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: None,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let lis = generate(&cfg, &mut rng);
    LisModel::doubled(&lis.system).into_graph()
}

fn bench_mcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcm");
    for (v, s) in [(50, 10), (100, 10), (200, 10), (400, 20)] {
        let g = doubled_graph(v, s);
        group.bench_with_input(BenchmarkId::new("karp", v), &g, |b, g| {
            b.iter(|| karp(std::hint::black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("lawler", v), &g, |b, g| {
            b.iter(|| lawler(std::hint::black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcm);
criterion_main!(benches);
