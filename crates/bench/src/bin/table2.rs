//! Table II — classification of LIS topologies and the fixed-queue-sizing
//! guarantee.
//!
//! For each topology class the paper describes, this binary generates
//! random instances, sprinkles relay stations, and *measures* whether fixed
//! queues of size one preserve the ideal MST — confirming the guarantee for
//! trees and reconvergence-free (networks of) SCCs, and exhibiting
//! violations for general topologies.

use lis_bench::{ExpOptions, Table};
use lis_core::{classify, fixed_q_preserves_mst, LisSystem, TopologyClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random tree with stations on random channels.
fn random_tree(n: usize, rs: usize, rng: &mut StdRng) -> LisSystem {
    let mut sys = LisSystem::new();
    let blocks: Vec<_> = (0..n).map(|i| sys.add_block(format!("b{i}"))).collect();
    let mut channels = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        // Random orientation keeps it a DAG without reconvergence.
        if rng.gen_bool(0.5) {
            channels.push(sys.add_channel(blocks[parent], blocks[i]));
        } else {
            channels.push(sys.add_channel(blocks[i], blocks[parent]));
        }
    }
    for _ in 0..rs {
        let c = channels[rng.gen_range(0..channels.len())];
        sys.add_relay_station(c);
    }
    sys
}

/// Random "cactus" SCC: directed rings glued at articulation points.
fn random_cactus(rings: usize, ring_len: usize, rs: usize, rng: &mut StdRng) -> LisSystem {
    let mut sys = LisSystem::new();
    let hub = sys.add_block("hub0");
    let mut hubs = vec![hub];
    let mut channels = Vec::new();
    for r in 0..rings {
        let attach = hubs[rng.gen_range(0..hubs.len())];
        let mut prev = attach;
        for k in 1..ring_len {
            let b = sys.add_block(format!("r{r}n{k}"));
            channels.push(sys.add_channel(prev, b));
            prev = b;
            if k == ring_len / 2 {
                hubs.push(b);
            }
        }
        channels.push(sys.add_channel(prev, attach));
    }
    for _ in 0..rs {
        let c = channels[rng.gen_range(0..channels.len())];
        sys.add_relay_station(c);
    }
    sys
}

/// Two cactus SCCs joined by a tree of inter-SCC channels.
fn random_network(rs: usize, rng: &mut StdRng) -> LisSystem {
    let mut sys = LisSystem::new();
    let ring = |sys: &mut LisSystem, tag: &str, len: usize| -> Vec<lis_core::BlockId> {
        let blocks: Vec<_> = (0..len)
            .map(|i| sys.add_block(format!("{tag}{i}")))
            .collect();
        for i in 0..len {
            sys.add_channel(blocks[i], blocks[(i + 1) % len]);
        }
        blocks
    };
    let a = ring(&mut sys, "a", 4);
    let b = ring(&mut sys, "b", 3);
    let bridge = sys.add_channel(a[rng.gen_range(0..4)], b[rng.gen_range(0..3)]);
    for _ in 0..rs {
        sys.add_relay_station(bridge);
    }
    sys
}

/// The general (reconvergent) shape: Fig. 1 with extra stations.
fn general(rs: usize) -> LisSystem {
    let (mut sys, upper, _) = lis_core::figures::fig1();
    for _ in 1..rs.max(1) {
        sys.add_relay_station(upper);
    }
    sys
}

fn main() {
    let opts = ExpOptions::from_args();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut t = Table::new(
        "Table II: topology classes vs fixed queue sizing (q = 1)",
        &[
            "topology",
            "trials",
            "classified as",
            "q=1 preserves MST",
            "guaranteed by Table II",
        ],
    );

    let run = |name: &str,
               gen: &mut dyn FnMut(&mut StdRng) -> LisSystem,
               rng: &mut StdRng,
               t: &mut Table| {
        let mut preserved = 0;
        let mut class: Option<TopologyClass> = None;
        for _ in 0..opts.trials {
            let sys = gen(rng);
            class = Some(classify(&sys));
            if fixed_q_preserves_mst(&sys, 1) {
                preserved += 1;
            }
        }
        let class = class.expect("at least one trial");
        t.row(&[
            name.to_string(),
            opts.trials.to_string(),
            class.to_string(),
            format!("{preserved}/{}", opts.trials),
            if class.fixed_q1_suffices() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    };

    run(
        "tree (random, 12 blocks, 4 rs)",
        &mut |rng| random_tree(12, 4, rng),
        &mut rng,
        &mut t,
    );
    run(
        "SCC, no reconvergent paths (cactus)",
        &mut |rng| random_cactus(3, 4, 5, rng),
        &mut rng,
        &mut t,
    );
    run(
        "network of SCCs, no reconvergence",
        &mut |rng| random_network(3, rng),
        &mut rng,
        &mut t,
    );
    run(
        "general (reconvergent paths, Fig. 1)",
        &mut |_| general(1),
        &mut rng,
        &mut t,
    );
    t.print();
    println!();
    println!(
        "conservative bound check: q = r+1 restores the ideal MST on the general case: {}",
        fixed_q_preserves_mst(&general(1), lis_core::conservative_fixed_q(&general(1)))
    );
}
