//! End-to-end queue sizing on a LIS netlist.
//!
//! Pipeline: extract deficient cycles from `d[G]` → abstract to a Token
//! Deficit instance (optionally collapsing SCCs and applying the
//! simplification rules) → solve (heuristic or exact) → map weights back to
//! per-channel queue growth → verify with Karp that `θ(d[G]) = θ(G)`.

use std::time::Duration;

use lis_core::{ChannelId, LisSystem};
use marked_graph::{McmEngine, Ratio};

use crate::collapse::collapse_sccs;
use crate::deficit::{extract_instance_with, DEFAULT_CYCLE_LIMIT};
use crate::error::QsError;
use crate::exact::{exact_solve_with, ExactOptions};
use crate::heuristic::heuristic_solve;
use crate::oracle::{trim_weights, ThroughputOracle};
use crate::td::{simplify, TdInstance, TdSolution};

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's polynomial heuristic (Section VII-B).
    Heuristic,
    /// The paper's exact branch-and-bound with binary search on the budget.
    Exact,
}

/// Configuration of the queue-sizing pipeline.
#[derive(Debug, Clone)]
pub struct QsConfig {
    /// Cap on elementary-cycle enumeration.
    pub cycle_limit: usize,
    /// Apply the subset/singleton simplification rules before solving.
    pub simplify: bool,
    /// Try SCC collapsing (rule 4) before extraction.
    pub collapse_sccs: bool,
    /// Wall-clock budget for the exact solver (`None` = run to completion).
    pub budget: Option<Duration>,
    /// Explore the exact search's root branches on worker threads
    /// ([`ExactOptions::parallel_root`]). Results are identical to the
    /// serial search; only wall-clock time changes.
    pub parallel: bool,
    /// After solving, trim the solution against the real throughput with
    /// the incremental [`ThroughputOracle`]. Never breaks feasibility (each
    /// removal is verified); can go below the Token Deficit optimum when
    /// cycle enumeration was truncated. Off by default to keep the paper's
    /// reported numbers.
    pub oracle_trim: bool,
    /// The MCM engine backing every throughput solve in the pipeline
    /// (extraction, verification, oracle trimming). All engines give
    /// identical answers; Howard (the default) is the fastest.
    pub engine: McmEngine,
}

impl Default for QsConfig {
    fn default() -> QsConfig {
        QsConfig {
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            simplify: true,
            collapse_sccs: true,
            budget: None,
            parallel: false,
            oracle_trim: false,
            engine: McmEngine::default(),
        }
    }
}

/// The outcome of queue sizing a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QsReport {
    /// The ideal MST `θ(G)` the solution restores.
    pub target: Ratio,
    /// The practical MST `θ(d[G])` before queue sizing.
    pub practical_before: Ratio,
    /// Extra queue slots per channel (only channels receiving tokens).
    pub extra_tokens: Vec<(ChannelId, u64)>,
    /// Total extra slots spent.
    pub total_extra: u64,
    /// Whether the solution is proven optimal (always `false` for the
    /// heuristic on degraded instances unless trivially zero; `true` for a
    /// completed exact search).
    pub optimal: bool,
    /// Number of deficient cycles in the instance.
    pub deficient_cycles: usize,
    /// Total elementary cycles enumerated in `d[G]`.
    pub total_cycles: usize,
    /// Search nodes explored by the exact solver (0 for the heuristic).
    pub nodes: u64,
}

/// Runs the queue-sizing pipeline on a system.
///
/// # Errors
///
/// Returns [`QsError::TooManyCycles`] if cycle enumeration exceeds
/// `cfg.cycle_limit`.
///
/// # Examples
///
/// The Fig. 5 degradation is fixed by one extra slot on the lower channel:
///
/// ```
/// use lis_core::figures;
/// use lis_qs::{solve, Algorithm, QsConfig};
/// use marked_graph::Ratio;
///
/// let (sys, _, lower) = figures::fig1();
/// let report = solve(&sys, Algorithm::Exact, &QsConfig::default())?;
/// assert_eq!(report.total_extra, 1);
/// assert_eq!(report.extra_tokens, vec![(lower, 1)]);
/// assert!(report.optimal);
/// # Ok::<(), lis_qs::QsError>(())
/// ```
pub fn solve(sys: &LisSystem, algo: Algorithm, cfg: &QsConfig) -> Result<QsReport, QsError> {
    let mut report = solve_core(sys, algo, cfg)?;
    if cfg.oracle_trim && report.total_extra > 0 {
        let mut oracle = ThroughputOracle::with_engine(sys, cfg.engine);
        let mut weights: Vec<u64> = report.extra_tokens.iter().map(|&(_, w)| w).collect();
        let labels: Vec<ChannelId> = report.extra_tokens.iter().map(|&(c, _)| c).collect();
        trim_weights(&mut weights, &labels, &mut oracle, report.target);
        report.extra_tokens = labels
            .into_iter()
            .zip(weights)
            .filter(|&(_, w)| w > 0)
            .collect();
        report.total_extra = report.extra_tokens.iter().map(|&(_, w)| w).sum();
    }
    Ok(report)
}

/// The pipeline proper, without the oracle-trim post-pass.
fn solve_core(sys: &LisSystem, algo: Algorithm, cfg: &QsConfig) -> Result<QsReport, QsError> {
    // Rule 4: collapse SCCs when applicable, then solve on the smaller
    // system and map channels back.
    if cfg.collapse_sccs {
        if let Some(col) = collapse_sccs(sys) {
            if col.system.block_count() < sys.block_count() {
                let mut sub_cfg = cfg.clone();
                sub_cfg.collapse_sccs = false;
                sub_cfg.oracle_trim = false;
                let sub = solve_core(&col.system, algo, &sub_cfg)?;
                let extra_tokens = sub
                    .extra_tokens
                    .iter()
                    .map(|&(c, w)| (col.channel_map[c.index()], w))
                    .collect();
                // Cycle counts describe the (smaller) collapsed instance —
                // that reduction is the point of rule 4 — but the throughput
                // figures must describe the original system: contraction
                // shortens cycles, changing their means (not their deficits).
                return Ok(QsReport {
                    extra_tokens,
                    practical_before: lis_core::practical_mst_with(sys, cfg.engine),
                    ..sub
                });
            }
        }
    }

    let inst = extract_instance_with(sys, cfg.cycle_limit, cfg.engine)?;
    let (td, labels) = TdInstance::from_qs(&inst);

    let (solution, optimal, nodes) = run_solver(&td, algo, cfg);

    let extra_tokens: Vec<(ChannelId, u64)> = solution
        .weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0)
        .map(|(i, &w)| (labels[i], w))
        .collect();
    Ok(QsReport {
        target: inst.target,
        practical_before: inst.practical,
        total_extra: solution.total(),
        extra_tokens,
        optimal,
        deficient_cycles: inst.cycles.len(),
        total_cycles: inst.total_cycles,
        nodes,
    })
}

fn run_solver(td: &TdInstance, algo: Algorithm, cfg: &QsConfig) -> (TdSolution, bool, u64) {
    if cfg.simplify {
        let simp = simplify(td);
        let (reduced_sol, optimal, nodes) = match algo {
            Algorithm::Heuristic => (heuristic_solve(&simp.instance), false, 0),
            Algorithm::Exact => {
                let out = exact_solve_with(&simp.instance, &exact_options(cfg));
                (out.solution, out.optimal, out.nodes)
            }
        };
        let sol = simp.expand(&reduced_sol);
        let trivially_optimal = sol.total() == 0;
        (sol, optimal || trivially_optimal, nodes)
    } else {
        match algo {
            Algorithm::Heuristic => {
                let sol = heuristic_solve(td);
                let trivially_optimal = sol.total() == 0;
                (sol, trivially_optimal, 0)
            }
            Algorithm::Exact => {
                let out = exact_solve_with(td, &exact_options(cfg));
                (out.solution, out.optimal, out.nodes)
            }
        }
    }
}

fn exact_options(cfg: &QsConfig) -> ExactOptions {
    ExactOptions {
        budget: cfg.budget,
        parallel_root: cfg.parallel,
        ..ExactOptions::default()
    }
}

/// Applies a queue-sizing report to a system, growing the named queues.
pub fn apply_solution(sys: &mut LisSystem, report: &QsReport) {
    for &(c, w) in &report.extra_tokens {
        sys.grow_queue(c, w);
    }
}

/// Verifies a report by re-running the static analysis on the resized
/// system: the practical MST must now equal the target (this is the
/// polynomial certificate from the paper's NP-membership argument).
pub fn verify_solution(sys: &LisSystem, report: &QsReport) -> bool {
    let mut resized = sys.clone();
    apply_solution(&mut resized, report);
    lis_core::practical_mst(&resized) == report.target
}

/// [`verify_solution`] through a reusable [`ThroughputOracle`]: no clone,
/// no model rebuild, only the components touched by the solution are
/// re-analyzed. Equivalent to the from-scratch check on every input; use it
/// when verifying many reports against the same system.
pub fn verify_solution_incremental(oracle: &mut ThroughputOracle, report: &QsReport) -> bool {
    oracle.practical_mst_with_extra(&report.extra_tokens) == report.target
}

/// Verifies a report *dynamically*: resizes the system, executes it on the
/// compiled simulation kernel for `steps` clock periods, and checks that
/// the measured steady-state rate reaches the restored target.
///
/// This is the executable counterpart of the static certificate in
/// [`verify_solution`] — independent of the MCM engines, it exercises the
/// actual token game the queues play. Cumulative rates carry an
/// `O(1/steps)` start-up transient, so the comparison uses a tolerance of
/// `max(0.01, 64/steps)`; a few thousand steps separates any real
/// degradation (rational gaps are far larger on realistic systems).
///
/// # Panics
///
/// Panics if `steps` is zero.
pub fn verify_solution_simulated(sys: &LisSystem, report: &QsReport, steps: u64) -> bool {
    assert!(steps > 0, "simulated verification needs at least one step");
    let mut resized = sys.clone();
    apply_solution(&mut resized, report);
    let mut sim = lis_sim::CompiledSim::new(&resized, lis_sim::QueueMode::Finite);
    sim.run(steps);
    let measured = sim.min_throughput().to_f64();
    let tol = (64.0 / steps as f64).max(0.01);
    (measured - report.target.to_f64()).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::figures;

    #[test]
    fn fig1_heuristic_and_exact() {
        let (sys, _, lower) = figures::fig1();
        for algo in [Algorithm::Heuristic, Algorithm::Exact] {
            let report = solve(&sys, algo, &QsConfig::default()).unwrap();
            assert_eq!(report.total_extra, 1, "{algo:?}");
            assert_eq!(report.extra_tokens, vec![(lower, 1)]);
            assert_eq!(report.practical_before, Ratio::new(2, 3));
            assert_eq!(report.target, Ratio::ONE);
            assert!(verify_solution(&sys, &report), "{algo:?}");
        }
    }

    #[test]
    fn simulated_verification_agrees_with_static_certificate() {
        let (sys, _, _) = figures::fig1();
        let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        assert!(verify_solution_simulated(&sys, &report, 4000));

        // Withholding the extra slot leaves the system at 2/3 < 1: the
        // simulated check must reject the claim just as the static one does.
        let mut broken = report.clone();
        broken.extra_tokens.clear();
        assert!(!verify_solution(&sys, &broken));
        assert!(!verify_solution_simulated(&sys, &broken, 4000));
    }

    #[test]
    fn fig15_solution_verifies_simulated() {
        let (sys, _) = figures::fig15();
        let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        assert!(verify_solution(&sys, &report));
        assert!(verify_solution_simulated(&sys, &report, 6000));
    }

    #[test]
    fn non_degraded_system_needs_nothing() {
        let (sys, _, _) = figures::fig2_right();
        let report = solve(&sys, Algorithm::Heuristic, &QsConfig::default()).unwrap();
        assert_eq!(report.total_extra, 0);
        assert!(report.optimal);
        assert!(report.extra_tokens.is_empty());
        assert!(verify_solution(&sys, &report));
    }

    #[test]
    fn fig15_queue_sizing_restores_ideal() {
        let (sys, _) = figures::fig15();
        let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        assert!(report.optimal);
        assert!(report.total_extra >= 1);
        assert!(verify_solution(&sys, &report));
        let h = solve(&sys, Algorithm::Heuristic, &QsConfig::default()).unwrap();
        assert!(verify_solution(&sys, &h));
        assert!(h.total_extra >= report.total_extra);
    }

    #[test]
    fn solver_options_agree_on_fig15() {
        let (sys, _) = figures::fig15();
        let base = solve(
            &sys,
            Algorithm::Exact,
            &QsConfig {
                simplify: false,
                collapse_sccs: false,
                ..QsConfig::default()
            },
        )
        .unwrap();
        let simp = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        assert_eq!(base.total_extra, simp.total_extra);
        assert!(base.optimal && simp.optimal);
    }

    #[test]
    fn collapse_path_produces_original_channel_ids() {
        // Two rings bridged by two reconvergent pipelined paths.
        let mut sys = LisSystem::new();
        let a0 = sys.add_block("a0");
        let a1 = sys.add_block("a1");
        let b0 = sys.add_block("b0");
        let b1 = sys.add_block("b1");
        sys.add_channel(a0, a1);
        sys.add_channel(a1, a0);
        sys.add_channel(b0, b1);
        sys.add_channel(b1, b0);
        let up = sys.add_channel(a1, b0);
        let down = sys.add_channel(a0, b1);
        sys.add_relay_station(up);
        let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        for (c, _) in &report.extra_tokens {
            assert!(sys.check_channel(*c).is_ok());
            assert!(*c == up || *c == down || c.index() < 6);
        }
        assert!(verify_solution(&sys, &report));
    }

    #[test]
    fn parallel_config_reproduces_serial_reports() {
        let (sys, _) = figures::fig15();
        let serial = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        let parallel = lis_par::with_threads(4, || {
            solve(
                &sys,
                Algorithm::Exact,
                &QsConfig {
                    parallel: true,
                    ..QsConfig::default()
                },
            )
            .unwrap()
        });
        assert_eq!(serial.total_extra, parallel.total_extra);
        assert_eq!(serial.extra_tokens, parallel.extra_tokens);
        assert_eq!(serial.optimal, parallel.optimal);
    }

    #[test]
    fn oracle_trim_preserves_feasibility() {
        let (sys, _) = figures::fig15();
        for algo in [Algorithm::Heuristic, Algorithm::Exact] {
            let plain = solve(&sys, algo, &QsConfig::default()).unwrap();
            let trimmed = solve(
                &sys,
                algo,
                &QsConfig {
                    oracle_trim: true,
                    ..QsConfig::default()
                },
            )
            .unwrap();
            assert!(verify_solution(&sys, &trimmed), "{algo:?}");
            assert!(trimmed.total_extra <= plain.total_extra, "{algo:?}");
            let mut oracle = ThroughputOracle::new(&sys);
            assert!(verify_solution_incremental(&mut oracle, &trimmed));
        }
    }

    #[test]
    fn incremental_verification_agrees_with_clone_based() {
        let (sys, _, _) = figures::fig1();
        let report = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        let mut oracle = ThroughputOracle::new(&sys);
        assert_eq!(
            verify_solution(&sys, &report),
            verify_solution_incremental(&mut oracle, &report)
        );
        // A broken report must fail both ways.
        let mut broken = report.clone();
        broken.extra_tokens.clear();
        assert_eq!(
            verify_solution(&sys, &broken),
            verify_solution_incremental(&mut oracle, &broken)
        );
        assert!(!verify_solution(&sys, &broken));
    }

    #[test]
    fn collapse_and_direct_agree_on_totals() {
        let mut sys = LisSystem::new();
        let a0 = sys.add_block("a0");
        let a1 = sys.add_block("a1");
        let b0 = sys.add_block("b0");
        sys.add_channel(a0, a1);
        sys.add_channel(a1, a0);
        let p1 = sys.add_channel(a1, b0);
        sys.add_channel(a0, b0);
        sys.add_relay_station(p1);
        let with = solve(&sys, Algorithm::Exact, &QsConfig::default()).unwrap();
        let without = solve(
            &sys,
            Algorithm::Exact,
            &QsConfig {
                collapse_sccs: false,
                ..QsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(with.total_extra, without.total_extra);
        assert!(verify_solution(&sys, &with));
        assert!(verify_solution(&sys, &without));
    }
}
