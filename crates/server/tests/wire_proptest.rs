//! Round-trip property for the wire-format JSON module: for every value
//! the serializer can emit, `parse(serialize(v)) == v`, byte layout
//! included (serialization is deterministic, so serializing twice gives
//! identical bytes — the property the content-addressed cache leans on).

use lis_server::wire::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Characters worth stressing in the string escaper: quotes, backslashes,
/// control characters, multi-byte BMP characters, and astral-plane
/// characters that need `\uXXXX` surrogate pairs when escaped.
const PALETTE: &[char] = &[
    'a', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', '\u{7f}', 'é', 'ß',
    '中', '\u{2028}', '😀', '𝔘',
];

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

/// Finite f64s: every finite double round-trips through the shortest
/// Display representation, so the full finite range is fair game.
fn arb_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..5) {
        0 => rng.gen_range(-(1i64 << 53)..=(1i64 << 53)) as f64,
        1 => rng.gen_range(-1_000_000i64..1_000_000) as f64 / 1024.0,
        2 => f64::from_bits(rng.next_u64() & 0x7fef_ffff_ffff_ffff), // finite positives
        3 => -f64::from_bits(rng.next_u64() & 0x7fef_ffff_ffff_ffff),
        _ => [0.0, -0.0, 1e308, 5e-324, 0.1, 2.5][rng.gen_range(0..6usize)],
    }
}

fn arb_json(rng: &mut StdRng, depth: u32) -> Json {
    let scalar_only = depth == 0;
    match rng.gen_range(0..if scalar_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Num(arb_number(rng)),
        3 => Json::Str(arb_string(rng)),
        4 => {
            let len = rng.gen_range(0..5);
            Json::Arr((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5);
            Json::Obj(
                (0..len)
                    .map(|i| {
                        // Duplicate keys are legal on the wire; suffix with
                        // the index so `get` lookups stay unambiguous.
                        let key = format!("{}{}", arb_string(rng), i);
                        (key, arb_json(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// Strategy wrapper so the shim's `proptest!` macro drives the recursive
/// generator above.
struct ArbJson {
    depth: u32,
}

impl Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut StdRng) -> Json {
        arb_json(rng, self.depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn parse_of_serialize_is_identity(value in ArbJson { depth: 4 }) {
        let text = value.to_string();
        let reparsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("serializer emitted unparseable JSON {text:?}: {e}"));
        prop_assert_eq!(&reparsed, &value, "round trip changed the value for {}", text);
        // Determinism: the cache stores serialized bytes, so re-serializing
        // the reparsed value must reproduce them exactly.
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn serialized_strings_parse_back(s in ArbJson { depth: 0 }) {
        // Scalar-only variant hammers the string/number edge cases harder.
        let text = s.to_string();
        prop_assert_eq!(Json::parse(&text).unwrap(), s);
    }
}
