//! Topology classification of LIS netlists (Table II of the paper).
//!
//! The paper shows that whether backpressure can degrade throughput — and
//! whether *fixed* queue sizing can repair it — depends on the block-level
//! topology:
//!
//! | Class | Shape | Fixed q = 1 preserves ideal MST? |
//! |---|---|---|
//! | Tree | no undirected cycles | yes (all τ's drain out) |
//! | SCC, no reconvergent paths | directed cycles glued at articulation points | yes |
//! | Network of SCCs, no reconvergent paths | SCCs joined by a tree-shaped DAG | yes |
//! | General | reconvergent paths present | no — queue sizing needed (NP-complete) |
//!
//! For any topology, the conservative uniform size `q = r + 1` (`r` = total
//! relay stations) always suffices.

use marked_graph::structure::{has_reconvergent_paths, is_forest};
use marked_graph::{MarkedGraph, Ratio, SccDecomposition};

use crate::mst::{ideal_mst, practical_mst};
use crate::system::LisSystem;

/// The topology classes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyClass {
    /// No undirected cycles at all (trees and reconvergence-free DAGs).
    Tree,
    /// One strongly connected component with no reconvergent paths: directed
    /// cycles meeting only at articulation points.
    SccNoReconvergence,
    /// Several SCCs, none with reconvergent paths, connected by a
    /// reconvergence-free DAG.
    NetworkNoReconvergence,
    /// Reconvergent paths are present somewhere; fixed queue sizing cannot
    /// be guaranteed to preserve the ideal MST.
    General,
}

impl TopologyClass {
    /// Whether the paper guarantees that uniform queues of size one keep the
    /// practical MST equal to the ideal MST for this class, regardless of
    /// relay-station placement.
    pub fn fixed_q1_suffices(self) -> bool {
        self != TopologyClass::General
    }
}

impl std::fmt::Display for TopologyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TopologyClass::Tree => "tree",
            TopologyClass::SccNoReconvergence => "SCC without reconvergent paths",
            TopologyClass::NetworkNoReconvergence => "network of SCCs without reconvergent paths",
            TopologyClass::General => "general (reconvergent paths)",
        };
        f.write_str(s)
    }
}

/// The block-level digraph of a system: one vertex per block, one edge per
/// channel, ignoring relay stations and queue capacities (neither changes
/// the topology class).
pub fn block_graph(sys: &LisSystem) -> MarkedGraph {
    let mut g = MarkedGraph::new();
    let ts: Vec<_> = sys
        .block_ids()
        .map(|b| g.add_transition(sys.block_name(b)))
        .collect();
    for c in sys.channel_ids() {
        g.add_place(
            ts[sys.channel_from(c).index()],
            ts[sys.channel_to(c).index()],
            1,
        );
    }
    g
}

/// Classifies the topology of a system per Table II.
///
/// # Examples
///
/// ```
/// use lis_core::{classify, LisSystem, TopologyClass};
///
/// let mut sys = LisSystem::new();
/// let a = sys.add_block("A");
/// let b = sys.add_block("B");
/// sys.add_channel(a, b);
/// assert_eq!(classify(&sys), TopologyClass::Tree);
///
/// sys.add_channel(b, a); // close a directed ring
/// assert_eq!(classify(&sys), TopologyClass::SccNoReconvergence);
///
/// sys.add_channel(a, b); // a second parallel path: reconvergence
/// assert_eq!(classify(&sys), TopologyClass::General);
/// ```
pub fn classify(sys: &LisSystem) -> TopologyClass {
    let g = block_graph(sys);
    if is_forest(&g) {
        TopologyClass::Tree
    } else if !has_reconvergent_paths(&g) {
        if SccDecomposition::compute(&g).is_strongly_connected() {
            TopologyClass::SccNoReconvergence
        } else {
            TopologyClass::NetworkNoReconvergence
        }
    } else {
        TopologyClass::General
    }
}

/// The conservative uniform queue capacity `r + 1` that Table II guarantees
/// to preserve the ideal MST for *any* topology (`r` = total relay-station
/// count). Usually far larger than necessary.
pub fn conservative_fixed_q(sys: &LisSystem) -> u64 {
    u64::from(sys.relay_station_count()) + 1
}

/// Checks (by direct computation, not by the classification theorem) whether
/// the system with *all* queues forced to `q` has its practical MST equal to
/// its ideal MST.
pub fn fixed_q_preserves_mst(sys: &LisSystem, q: u64) -> bool {
    let mut s = sys.clone();
    s.set_uniform_queue_capacity(q);
    practical_mst(&s) == ideal_mst(&s)
}

/// The practical-over-ideal MST ratio under uniform queues of size `q`
/// (1 means no degradation). Used by the Fig. 16/17 experiments.
pub fn fixed_q_mst_ratio(sys: &LisSystem, q: u64) -> Ratio {
    let mut s = sys.clone();
    s.set_uniform_queue_capacity(q);
    let ideal = ideal_mst(&s);
    if ideal == Ratio::ZERO {
        return Ratio::ONE;
    }
    practical_mst(&s) / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_classification() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        sys.add_channel(a, b);
        sys.add_channel(a, c);
        assert_eq!(classify(&sys), TopologyClass::Tree);
        assert!(classify(&sys).fixed_q1_suffices());
    }

    #[test]
    fn dag_without_reconvergence_is_tree_class() {
        // a -> b -> c plus a -> d: an out-tree (a DAG with no reconvergence).
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        let d = sys.add_block("D");
        sys.add_channel(a, b);
        sys.add_channel(b, c);
        sys.add_channel(a, d);
        assert_eq!(classify(&sys), TopologyClass::Tree);
    }

    #[test]
    fn diamond_dag_is_general() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_block("C");
        let d = sys.add_block("D");
        sys.add_channel(a, b);
        sys.add_channel(a, c);
        sys.add_channel(b, d);
        sys.add_channel(c, d);
        assert_eq!(classify(&sys), TopologyClass::General);
        assert!(!classify(&sys).fixed_q1_suffices());
    }

    #[test]
    fn ring_is_scc_no_reconvergence() {
        let mut sys = LisSystem::new();
        let ids: Vec<_> = (0..4).map(|i| sys.add_block(format!("b{i}"))).collect();
        for i in 0..4 {
            sys.add_channel(ids[i], ids[(i + 1) % 4]);
        }
        assert_eq!(classify(&sys), TopologyClass::SccNoReconvergence);
    }

    #[test]
    fn two_rings_bridged_is_network() {
        let mut sys = LisSystem::new();
        let ids: Vec<_> = (0..4).map(|i| sys.add_block(format!("b{i}"))).collect();
        sys.add_channel(ids[0], ids[1]);
        sys.add_channel(ids[1], ids[0]);
        sys.add_channel(ids[2], ids[3]);
        sys.add_channel(ids[3], ids[2]);
        sys.add_channel(ids[1], ids[2]);
        assert_eq!(classify(&sys), TopologyClass::NetworkNoReconvergence);
    }

    #[test]
    fn ring_with_chord_is_general() {
        let mut sys = LisSystem::new();
        let ids: Vec<_> = (0..4).map(|i| sys.add_block(format!("b{i}"))).collect();
        for i in 0..4 {
            sys.add_channel(ids[i], ids[(i + 1) % 4]);
        }
        sys.add_channel(ids[0], ids[2]);
        assert_eq!(classify(&sys), TopologyClass::General);
    }

    #[test]
    fn fixed_q1_theorem_holds_on_guaranteed_classes() {
        // Ring of rings glued at an articulation point, with relay stations
        // sprinkled everywhere: q = 1 must preserve the ideal MST.
        let mut sys = LisSystem::new();
        let hub = sys.add_block("hub");
        let a = sys.add_block("a");
        let b = sys.add_block("b");
        let c1 = sys.add_channel(hub, a);
        let c2 = sys.add_channel(a, hub);
        let c3 = sys.add_channel(hub, b);
        let c4 = sys.add_channel(b, hub);
        sys.add_relay_station(c1);
        sys.add_relay_station(c2);
        sys.add_relay_station(c3);
        sys.add_relay_station(c4);
        sys.add_relay_station(c4);
        assert_eq!(classify(&sys), TopologyClass::SccNoReconvergence);
        assert!(fixed_q_preserves_mst(&sys, 1));
    }

    #[test]
    fn fixed_q1_fails_on_fig1_but_conservative_q_succeeds() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let upper = sys.add_channel(a, b);
        sys.add_channel(a, b);
        sys.add_relay_station(upper);
        assert_eq!(classify(&sys), TopologyClass::General);
        assert!(!fixed_q_preserves_mst(&sys, 1));
        let q = conservative_fixed_q(&sys);
        assert_eq!(q, 2);
        assert!(fixed_q_preserves_mst(&sys, q));
    }

    #[test]
    fn fixed_q_ratio_monotone_for_fig1() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let upper = sys.add_channel(a, b);
        sys.add_channel(a, b);
        sys.add_relay_station(upper);
        let r1 = fixed_q_mst_ratio(&sys, 1);
        let r2 = fixed_q_mst_ratio(&sys, 2);
        assert_eq!(r1, Ratio::new(2, 3));
        assert_eq!(r2, Ratio::ONE);
        assert!(r1 < r2);
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(TopologyClass::Tree.to_string(), "tree");
        assert!(TopologyClass::General.to_string().contains("reconvergent"));
    }
}
