//! The server's typed error taxonomy.
//!
//! Every failure a request can hit maps to exactly one variant, one HTTP
//! status, and one machine-readable `kind` string in the JSON error body —
//! so clients can distinguish "your netlist is wrong" (fix the input) from
//! "the analysis timed out" (retry with a bigger budget) from "the server
//! is shedding load" (back off and retry).

use std::fmt;

use lis_core::ParseNetlistError;

use crate::wire::{obj, Json};

/// Everything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The request body was not valid JSON or lacked required fields → 400.
    BadRequest(String),
    /// The netlist failed to parse; carries the offending line → 400.
    Parse(ParseNetlistError),
    /// The netlist parsed but analysis failed (e.g. cycle-enumeration
    /// limits) → 422.
    Analysis(String),
    /// The analysis ran past the per-request deadline → 504.
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// The worker queue was full; the request was shed → 503.
    Overloaded {
        /// Queue capacity at the moment of shedding.
        queue_capacity: usize,
    },
    /// The concurrent-sweep cap was reached; this sweep was shed → 503.
    /// The response carries a `Retry-After` header and the body a
    /// `retry_after_ms` hint.
    SweepsBusy {
        /// The configured concurrent-sweep limit.
        limit: usize,
    },
    /// The daemon is draining for shutdown → 503.
    ShuttingDown,
    /// The worker executing this request panicked; the job was isolated
    /// and the worker respawned, but this result is lost → 500. Safe to
    /// retry: the request never produced a cached result.
    WorkerCrashed,
    /// The connection was rejected because the concurrent-connection cap
    /// was reached → 429.
    TooManyConnections {
        /// The configured connection limit.
        limit: usize,
    },
    /// The client fed bytes too slowly and ran past the per-request read
    /// deadline (slow-loris defense) → 408.
    SlowClient {
        /// The read deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// No such route → 404.
    NotFound(String),
    /// Route exists but not with this method → 405.
    MethodNotAllowed,
}

impl ServerError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServerError::BadRequest(_) | ServerError::Parse(_) => 400,
            ServerError::Analysis(_) => 422,
            ServerError::Timeout { .. } => 504,
            ServerError::Overloaded { .. }
            | ServerError::SweepsBusy { .. }
            | ServerError::ShuttingDown => 503,
            ServerError::WorkerCrashed => 500,
            ServerError::TooManyConnections { .. } => 429,
            ServerError::SlowClient { .. } => 408,
            ServerError::NotFound(_) => 404,
            ServerError::MethodNotAllowed => 405,
        }
    }

    /// The machine-readable kind tag used in the JSON body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::BadRequest(_) => "bad_request",
            ServerError::Parse(_) => "parse_error",
            ServerError::Analysis(_) => "analysis_error",
            ServerError::Timeout { .. } => "timeout",
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::SweepsBusy { .. } => "sweeps_busy",
            ServerError::ShuttingDown => "shutting_down",
            ServerError::WorkerCrashed => "worker_crashed",
            ServerError::TooManyConnections { .. } => "too_many_connections",
            ServerError::SlowClient { .. } => "slow_client",
            ServerError::NotFound(_) => "not_found",
            ServerError::MethodNotAllowed => "method_not_allowed",
        }
    }

    /// The JSON error body:
    /// `{"error": {"kind": ..., "message": ..., <extras>}}`.
    ///
    /// Parse errors carry a `line` field; timeouts their `timeout_ms`;
    /// overload the `queue_capacity` that was exceeded.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_string(), Json::str(self.kind())),
            ("message".to_string(), Json::str(self.to_string())),
        ];
        match self {
            ServerError::Parse(e) => {
                fields.push(("line".to_string(), Json::num(e.line as f64)));
            }
            ServerError::Timeout { timeout_ms } => {
                fields.push(("timeout_ms".to_string(), Json::num(*timeout_ms as f64)));
            }
            ServerError::Overloaded { queue_capacity } => {
                fields.push((
                    "queue_capacity".to_string(),
                    Json::num(*queue_capacity as f64),
                ));
            }
            ServerError::SweepsBusy { limit } => {
                fields.push(("limit".to_string(), Json::num(*limit as f64)));
                // Survives proxies that drop the Retry-After header (the
                // gateway relays status + body only).
                fields.push(("retry_after_ms".to_string(), Json::num(1000.0)));
            }
            ServerError::TooManyConnections { limit } => {
                fields.push(("limit".to_string(), Json::num(*limit as f64)));
            }
            ServerError::SlowClient { deadline_ms } => {
                fields.push(("deadline_ms".to_string(), Json::num(*deadline_ms as f64)));
            }
            _ => {}
        }
        obj([("error", Json::Obj(fields))])
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::Parse(e) => write!(f, "{e}"),
            ServerError::Analysis(m) => write!(f, "analysis failed: {m}"),
            ServerError::Timeout { timeout_ms } => {
                write!(f, "analysis exceeded the {timeout_ms} ms deadline")
            }
            ServerError::Overloaded { queue_capacity } => write!(
                f,
                "worker queue full ({queue_capacity} jobs); request shed, retry later"
            ),
            ServerError::SweepsBusy { limit } => write!(
                f,
                "all {limit} sweep slots are busy; sweep shed, retry later"
            ),
            ServerError::ShuttingDown => write!(f, "server is draining for shutdown"),
            ServerError::WorkerCrashed => write!(
                f,
                "analysis worker crashed mid-job; the worker was respawned, retry the request"
            ),
            ServerError::TooManyConnections { limit } => {
                write!(f, "connection limit reached ({limit}); retry later")
            }
            ServerError::SlowClient { deadline_ms } => write!(
                f,
                "request not received within the {deadline_ms} ms read deadline"
            ),
            ServerError::NotFound(path) => write!(f, "no such route {path:?}"),
            ServerError::MethodNotAllowed => write!(f, "method not allowed on this route"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ParseNetlistError> for ServerError {
    fn from(e: ParseNetlistError) -> ServerError {
        ServerError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_kinds_are_distinct_and_stable() {
        let parse_err = lis_core::parse_netlist("blok A\n").unwrap_err();
        let cases: Vec<(ServerError, u16, &str)> = vec![
            (ServerError::BadRequest("x".into()), 400, "bad_request"),
            (ServerError::Parse(parse_err), 400, "parse_error"),
            (ServerError::Analysis("x".into()), 422, "analysis_error"),
            (ServerError::Timeout { timeout_ms: 10 }, 504, "timeout"),
            (
                ServerError::Overloaded { queue_capacity: 4 },
                503,
                "overloaded",
            ),
            (ServerError::SweepsBusy { limit: 4 }, 503, "sweeps_busy"),
            (ServerError::ShuttingDown, 503, "shutting_down"),
            (ServerError::WorkerCrashed, 500, "worker_crashed"),
            (
                ServerError::TooManyConnections { limit: 8 },
                429,
                "too_many_connections",
            ),
            (
                ServerError::SlowClient { deadline_ms: 100 },
                408,
                "slow_client",
            ),
            (ServerError::NotFound("/x".into()), 404, "not_found"),
            (ServerError::MethodNotAllowed, 405, "method_not_allowed"),
        ];
        for (e, status, kind) in &cases {
            assert_eq!(e.status(), *status, "{e:?}");
            assert_eq!(e.kind(), *kind, "{e:?}");
            let body = e.to_json();
            assert_eq!(
                body.get("error").unwrap().get("kind").unwrap().as_str(),
                Some(*kind)
            );
        }
    }

    #[test]
    fn parse_errors_surface_the_line_number() {
        let e = ServerError::from(lis_core::parse_netlist("block A\nblok B\n").unwrap_err());
        let body = e.to_json();
        let error = body.get("error").unwrap();
        assert_eq!(error.get("line").unwrap().as_u64(), Some(2));
        assert!(error
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("netlist line 2"));
    }

    #[test]
    fn overload_and_timeout_carry_their_parameters() {
        let shed = ServerError::Overloaded { queue_capacity: 64 }.to_json();
        assert_eq!(
            shed.get("error")
                .unwrap()
                .get("queue_capacity")
                .unwrap()
                .as_u64(),
            Some(64)
        );
        let late = ServerError::Timeout { timeout_ms: 250 }.to_json();
        assert_eq!(
            late.get("error")
                .unwrap()
                .get("timeout_ms")
                .unwrap()
                .as_u64(),
            Some(250)
        );
    }

    #[test]
    fn sweeps_busy_carries_a_retry_hint_in_the_body() {
        let body = ServerError::SweepsBusy { limit: 4 }.to_json();
        let error = body.get("error").unwrap();
        assert_eq!(error.get("limit").unwrap().as_u64(), Some(4));
        assert_eq!(error.get("retry_after_ms").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn connection_and_read_limits_carry_their_parameters() {
        let capped = ServerError::TooManyConnections { limit: 128 }.to_json();
        assert_eq!(
            capped.get("error").unwrap().get("limit").unwrap().as_u64(),
            Some(128)
        );
        let slow = ServerError::SlowClient { deadline_ms: 750 }.to_json();
        assert_eq!(
            slow.get("error")
                .unwrap()
                .get("deadline_ms")
                .unwrap()
                .as_u64(),
            Some(750)
        );
    }
}
