//! Exact rational arithmetic for cycle means and throughput values.
//!
//! Cycle means in a marked graph are ratios of token counts to place counts,
//! so all throughput quantities in this workspace are exact rationals. Using
//! floating point here would make equality tests against paper values (5/6,
//! 3/4, 5/7, ...) fragile; [`Ratio`] keeps everything exact and `Ord`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with an always-positive denominator.
///
/// The representation is kept reduced (gcd of numerator and denominator is 1)
/// and the denominator is strictly positive, so `PartialEq`/`Hash` agree with
/// mathematical equality.
///
/// # Examples
///
/// ```
/// use marked_graph::Ratio;
///
/// let five_sixths = Ratio::new(5, 6);
/// assert!(five_sixths < Ratio::ONE);
/// assert_eq!(five_sixths + Ratio::new(1, 6), Ratio::ONE);
/// assert_eq!(Ratio::new(10, 12), five_sixths);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

impl Ratio {
    /// The rational number 0.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational number 1.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a new ratio `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert_eq!(Ratio::new(2, 3), Ratio::new(4, 6));
    /// assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
    /// ```
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "ratio denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i64;
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer ratio `n / 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert_eq!(Ratio::from_integer(3), Ratio::new(6, 2));
    /// ```
    pub fn from_integer(n: i64) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The numerator of the reduced fraction. Carries the sign.
    pub fn numer(&self) -> i64 {
        self.num
    }

    /// The denominator of the reduced fraction. Always positive.
    pub fn denom(&self) -> i64 {
        self.den
    }

    /// Converts to the nearest `f64` (for reporting only; analysis stays exact).
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert!((Ratio::new(2, 3).to_f64() - 0.6666).abs() < 1e-3);
    /// ```
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns the smaller of `self` and `other`.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert_eq!(Ratio::new(2, 3).recip(), Ratio::new(3, 2));
    /// ```
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "cannot invert zero");
        Ratio::new(self.den, self.num)
    }

    /// Smallest integer `n` with `n >= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert_eq!(Ratio::new(7, 2).ceil(), 4);
    /// assert_eq!(Ratio::new(-7, 2).ceil(), -3);
    /// assert_eq!(Ratio::new(4, 2).ceil(), 2);
    /// ```
    pub fn ceil(self) -> i64 {
        self.num.div_euclid(self.den) + i64::from(self.num.rem_euclid(self.den) != 0)
    }

    /// Largest integer `n` with `n <= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use marked_graph::Ratio;
    /// assert_eq!(Ratio::new(7, 2).floor(), 3);
    /// assert_eq!(Ratio::new(-7, 2).floor(), -4);
    /// ```
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Whether the ratio is an integer value.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_integer(n)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        let num = (self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128)
            .try_into()
            .expect("ratio addition overflow");
        let den = (self.den as i128 * rhs.den as i128)
            .try_into()
            .expect("ratio addition overflow");
        Ratio::new(num, den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs()) as i64;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs()) as i64;
        Ratio::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Ratio::new(4, 6), Ratio::new(2, 3));
        assert_eq!(Ratio::new(-4, -6), Ratio::new(2, 3));
        assert_eq!(Ratio::new(4, -6), Ratio::new(-2, 3));
        assert_eq!(Ratio::new(0, -5), Ratio::ZERO);
        assert_eq!(Ratio::new(0, 7).denom(), 1);
    }

    #[test]
    fn ordering_is_mathematical() {
        assert!(Ratio::new(2, 3) < Ratio::new(3, 4));
        assert!(Ratio::new(5, 6) > Ratio::new(3, 4));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(1, 2).cmp(&Ratio::new(2, 4)), Ordering::Equal);
        assert_eq!(Ratio::new(5, 7).min(Ratio::new(4, 6)), Ratio::new(2, 3));
        assert_eq!(Ratio::new(5, 7).max(Ratio::new(4, 6)), Ratio::new(5, 7));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Ratio::new(1, 2) + Ratio::new(1, 3), Ratio::new(5, 6));
        assert_eq!(Ratio::new(1, 2) - Ratio::new(1, 3), Ratio::new(1, 6));
        assert_eq!(Ratio::new(2, 3) * Ratio::new(3, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, 3) / Ratio::new(4, 3), Ratio::new(1, 2));
        assert_eq!(-Ratio::new(2, 3), Ratio::new(-2, 3));
    }

    #[test]
    fn ceil_floor() {
        assert_eq!(Ratio::new(5, 6).ceil(), 1);
        assert_eq!(Ratio::new(5, 6).floor(), 0);
        assert_eq!(Ratio::new(6, 3).ceil(), 2);
        assert_eq!(Ratio::new(6, 3).floor(), 2);
        assert_eq!(Ratio::new(-5, 6).ceil(), 0);
        assert_eq!(Ratio::new(-5, 6).floor(), -1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Ratio::new(5, 6).to_string(), "5/6");
        assert_eq!(Ratio::from_integer(3).to_string(), "3");
        assert_eq!(format!("{:?}", Ratio::ONE), "1/1");
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    fn paper_values_are_representable() {
        // Values that appear throughout the paper.
        for (n, d, f) in [
            (5i64, 6i64, 0.8333),
            (3, 4, 0.75),
            (2, 3, 0.6667),
            (5, 7, 0.7143),
        ] {
            let r = Ratio::new(n, d);
            assert!((r.to_f64() - f).abs() < 1e-3);
            assert!(r < Ratio::ONE);
        }
    }
}
