//! Property tests for rendezvous routing stability — the contract the
//! warm-cache story rests on:
//!
//! * removing one of `n` shards remaps **only** the keys that shard owned;
//! * adding a shard steals about `K/(n+1)` keys and steals them *for
//!   itself* — no key moves between two surviving shards;
//! * the ranking is deterministic and identical however it is computed.

use lis_gateway::rendezvous::{mix, name_hash, rank, winner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// A random cluster: 2..=8 shards with distinct names plus a seed that
/// derives the key set.
#[derive(Debug, Clone)]
struct Cluster {
    hashes: Vec<u64>,
    key_seed: u64,
}

struct ArbCluster;

impl Strategy for ArbCluster {
    type Value = Cluster;
    fn generate(&self, rng: &mut StdRng) -> Cluster {
        let n = rng.gen_range(2..=8usize);
        let salt: u32 = rng.gen_range(0..1_000_000);
        Cluster {
            hashes: (0..n)
                .map(|i| name_hash(&format!("shard-{salt}-{i}")))
                .collect(),
            key_seed: rng.gen_range(0..u64::MAX / 2),
        }
    }
}

const KEYS: u64 = 600;

fn keys(seed: u64) -> impl Iterator<Item = u64> {
    (0..KEYS).map(move |i| mix(seed.wrapping_add(i)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn removing_a_shard_remaps_only_its_own_keys(cluster in ArbCluster) {
        let n = cluster.hashes.len();
        // Remove each shard in turn and check every key's placement.
        for removed in 0..n {
            let survivors: Vec<u64> = cluster
                .hashes
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != removed)
                .map(|(_, h)| h)
                .collect();
            for key in keys(cluster.key_seed) {
                let before = cluster.hashes[winner(&cluster.hashes, key).unwrap()];
                let after = survivors[winner(&survivors, key).unwrap()];
                if before != cluster.hashes[removed] {
                    // Keys the dead shard never owned must not move at all.
                    prop_assert_eq!(before, after, "stable key was remapped");
                } else {
                    // Orphaned keys must land on the old second choice.
                    let order = rank(&cluster.hashes, key);
                    prop_assert_eq!(after, cluster.hashes[order[1]],
                        "orphan did not go to the runner-up");
                }
            }
        }
    }

    #[test]
    fn adding_a_shard_moves_no_key_between_old_shards(cluster in ArbCluster) {
        let mut grown = cluster.hashes.clone();
        grown.push(name_hash("the-new-shard"));
        let newcomer = *grown.last().unwrap();
        let mut moved = 0u64;
        for key in keys(cluster.key_seed) {
            let before = cluster.hashes[winner(&cluster.hashes, key).unwrap()];
            let after = grown[winner(&grown, key).unwrap()];
            if after != before {
                // The only legal move is *to* the newcomer.
                prop_assert_eq!(after, newcomer, "key moved between survivors");
                moved += 1;
            }
        }
        // Expect ~K/(n+1) stolen keys; allow 3x slack for hash noise.
        let expected = KEYS / (cluster.hashes.len() as u64 + 1);
        prop_assert!(moved <= expected * 3,
            "newcomer stole {moved} keys, expected about {expected}");
        prop_assert!(moved > 0, "newcomer stole nothing from {KEYS} keys");
    }

    #[test]
    fn ranking_is_deterministic_and_total(cluster in ArbCluster) {
        for key in keys(cluster.key_seed).take(50) {
            let a = rank(&cluster.hashes, key);
            let b = rank(&cluster.hashes, key);
            prop_assert_eq!(&a, &b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..cluster.hashes.len()).collect::<Vec<_>>());
            prop_assert_eq!(Some(a[0]), winner(&cluster.hashes, key));
        }
    }
}
