//! Property tests of the netlist text format: every system round-trips
//! through serialize → parse, including hostile block names.

use lis::core::{parse_netlist, practical_mst, to_netlist, LisSystem};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        // Bare identifiers.
        "[A-Za-z][A-Za-z0-9_.-]{0,12}",
        // Arbitrary printable strings (forced into quotes by the writer).
        "[ -~]{1,16}",
    ]
}

fn arb_system() -> impl Strategy<Value = LisSystem> {
    (
        proptest::collection::vec((arb_name(), proptest::bool::ANY), 1..6),
        proptest::collection::vec((0usize..6, 0usize..6, 0u32..3, 1u64..5), 0..10),
    )
        .prop_map(|(names, channels)| {
            let mut sys = LisSystem::new();
            let mut used = std::collections::HashSet::new();
            let blocks: Vec<_> = names
                .into_iter()
                .enumerate()
                .map(|(i, (n, initialized))| {
                    // Block names must be unique for the format to round-trip.
                    let name = if used.insert(n.clone()) {
                        n
                    } else {
                        format!("{n}#{i}")
                    };
                    used.insert(name.clone());
                    if initialized {
                        sys.add_block(name)
                    } else {
                        sys.add_uninitialized_block(name)
                    }
                })
                .collect();
            for (from, to, rs, q) in channels {
                let c = sys.add_channel(blocks[from % blocks.len()], blocks[to % blocks.len()]);
                for _ in 0..rs {
                    sys.add_relay_station(c);
                }
                sys.set_queue_capacity(c, q).expect("q >= 1");
            }
            sys
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_preserves_structure(sys in arb_system()) {
        let text = to_netlist(&sys);
        let round = parse_netlist(&text).expect("own output parses");
        prop_assert_eq!(round.block_count(), sys.block_count());
        prop_assert_eq!(round.channel_count(), sys.channel_count());
        for b in sys.block_ids() {
            prop_assert_eq!(round.block_name(b), sys.block_name(b));
            prop_assert_eq!(round.is_initialized(b), sys.is_initialized(b));
        }
        for c in sys.channel_ids() {
            prop_assert_eq!(round.channel_from(c), sys.channel_from(c));
            prop_assert_eq!(round.channel_to(c), sys.channel_to(c));
            prop_assert_eq!(round.relay_stations_on(c), sys.relay_stations_on(c));
            prop_assert_eq!(round.queue_capacity(c), sys.queue_capacity(c));
        }
        // Semantics round-trip too.
        prop_assert_eq!(practical_mst(&round), practical_mst(&sys));
    }

    #[test]
    fn second_round_trip_is_identical_text(sys in arb_system()) {
        let once = to_netlist(&sys);
        let twice = to_netlist(&parse_netlist(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "[ -~\\n]{0,300}") {
        let _ = parse_netlist(&text); // Ok or Err, never panic
    }

    #[test]
    fn parse_errors_carry_line_numbers(
        good_lines in 0usize..5,
        bad in "[a-z]{1,8}",
    ) {
        let mut text = String::new();
        for i in 0..good_lines {
            text.push_str(&format!("block b{i}\n"));
        }
        text.push_str(&format!("{bad}!\n"));
        match parse_netlist(&text) {
            Ok(_) => prop_assert!(bad == "block"),
            Err(e) => prop_assert_eq!(e.line, good_lines + 1),
        }
    }
}
