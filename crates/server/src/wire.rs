//! The JSON wire format, hand-rolled on `std` only.
//!
//! The workspace builds fully offline, so — mirroring the vendored-shim
//! approach of `crates/rand` — this module implements the small JSON
//! surface the server's wire protocol needs: a value type ([`Json`]), a
//! compact serializer ([`Json::to_string`] via [`fmt::Display`]), and a
//! strict recursive-descent parser ([`Json::parse`]).
//!
//! Guarantees the rest of the crate relies on:
//!
//! * **Round-trip**: `Json::parse(&v.to_string()) == Ok(v)` for every value
//!   this module can produce (objects preserve key order; numbers are
//!   finite `f64`s serialized with Rust's shortest round-trip formatting).
//!   The property is enforced by `tests/wire_proptest.rs`.
//! * **Strictness**: trailing garbage, unterminated literals, bad escapes,
//!   lone surrogates, and nesting deeper than [`MAX_DEPTH`] are errors, so
//!   a malformed request cannot panic or recurse unboundedly.
//!
//! # Examples
//!
//! ```
//! use lis_server::wire::Json;
//!
//! let v = Json::parse(r#"{"netlist": "block A\n", "options": {"exact": true}}"#)?;
//! assert_eq!(v.get("netlist").and_then(Json::as_str), Some("block A\n"));
//! assert_eq!(Json::parse(&v.to_string())?, v);
//! # Ok::<(), lis_server::wire::JsonError>(())
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
///
/// Numbers are finite `f64`s: integers up to ±2⁵³ round-trip exactly, which
/// covers every count, id, and `Ratio` numerator/denominator the protocol
/// carries. Objects are order-preserving key/value lists (lookup is linear;
/// wire objects are small).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (order-preserving).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a nonnegative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on any syntax error,
    /// non-finite number, invalid escape, or nesting beyond [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

/// A JSON syntax error with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // Non-finite values are unrepresentable in JSON; the protocol never
        // produces them, but a defensive `null` beats invalid output.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        // Rust's `{}` for f64 prints the shortest decimal that parses back
        // to the same value, which is exactly the round-trip guarantee the
        // wire format needs.
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    // Emit maximal runs of unescaped text between escapes instead of going
    // character by character — every byte needing an escape is ASCII, so
    // slicing at those byte offsets always lands on UTF-8 boundaries.
    f.write_str("\"")?;
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let esc = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            0x08 => "\\b",
            0x0c => "\\f",
            b if b < 0x20 => "",
            _ => continue,
        };
        f.write_str(&s[start..i])?;
        if esc.is_empty() {
            write!(f, "\\u{:04x}", b)?;
        } else {
            f.write_str(esc)?;
        }
        start = i + 1;
    }
    f.write_str(&s[start..])?;
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run stops
                // only at ASCII delimiters, so the slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            other => return Err(self.err(format!("invalid escape \\{}", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xdc00..0xe000).contains(&lo) {
                    return Err(self.err("high surrogate not followed by a low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(n))
    }
}

/// Convenience constructor for object literals.
///
/// ```
/// use lis_server::wire::{obj, Json};
/// let v = obj([("ok", Json::Bool(true)), ("n", Json::num(3))]);
/// assert_eq!(v.to_string(), r#"{"ok":true,"n":3}"#);
/// ```
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kitchen_sink() {
        let v = Json::parse(
            r#" { "a": [1, -2.5, 1e3, 0.125], "b": "x\n\"\u0041\ud83d\ude00", "c": {"d": null, "e": false} } "#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\n\"A😀");
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().get("e"), Some(&Json::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_its_own_output() {
        let v = obj([
            ("text", Json::str("line 1\nline 2\t\"quoted\" \\ \u{7} π😀")),
            ("ints", Json::Arr(vec![Json::num(0), Json::num(-7)])),
            ("frac", Json::num(0.1)),
            ("big", Json::Num(9_007_199_254_740_992.0)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("nested", Json::Obj(vec![("k".into(), Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_serialize_without_a_fraction() {
        assert_eq!(Json::num(5).to_string(), "5");
        assert_eq!(Json::num(-5).to_string(), "-5");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00x\"",
            "\"unterminated",
            "\"raw\u{1}control\"",
            "1 2",
            "truefalse",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err(), "accepted over-deep nesting");
    }

    #[test]
    fn error_carries_the_offset() {
        let e = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors_on_wrong_types_return_none() {
        assert_eq!(Json::Null.as_str(), None);
        assert_eq!(Json::Bool(true).as_f64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::str("x").as_arr(), None);
        assert_eq!(Json::str("x").get("k"), None);
        assert_eq!(Json::Arr(vec![]).as_bool(), None);
    }
}
