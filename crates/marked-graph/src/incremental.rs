//! Incremental minimum-cycle-mean re-evaluation.
//!
//! Queue sizing explores many token assignments of the *same* graph: each
//! candidate solution only bumps the token counts of a few backedge places.
//! Recomputing the MCM from scratch per candidate repeats the SCC
//! decomposition and re-solves every component, even though token changes
//! never alter the graph's structure. [`IncrementalMcm`] factors that work:
//!
//! * the SCC decomposition and per-component [`CsrScc`] snapshots are built
//!   **once**, at construction;
//! * a query ([`IncrementalMcm::mcm_with_tokens`]) re-solves **only the
//!   components containing a changed place** — untouched components reuse
//!   their base mean;
//! * re-solves are memoized per component, keyed by the normalized token
//!   delta vector, so revisiting an assignment (binary search over budgets,
//!   branch-and-bound backtracking) is a hash lookup;
//! * with the default [`McmEngine::Howard`] engine, each component keeps
//!   its converged policy and **warm-starts** the next re-solve from it. A
//!   small token override rarely moves the optimal policy far, so warm
//!   solves typically finish in one or two sweeps instead of a full cold
//!   solve — this is where branch-and-bound spends its life.
//!
//! Token overrides on places that are not internal to any cyclic component
//! are ignored: such a place lies on no cycle (every cycle is contained in
//! one SCC), so its marking cannot affect any cycle mean. This makes a
//! query sound for arbitrary override sets, not just backedges.
//!
//! Results are exactly those of the from-scratch solvers: the same exact
//! rational mean as [`crate::mcm::karp`] on the modified graph, and — via
//! [`IncrementalMcm::result_with_tokens`] — the same critical cycle as
//! [`crate::mcm::minimum_cycle_mean`] under the shared tie-break (lowest
//! component id attaining the minimum mean).

use std::collections::HashMap;

use crate::csr::CsrScc;
use crate::error::GraphError;
use crate::graph::{MarkedGraph, PlaceId};
use crate::howard::HowardScratch;
use crate::mcm::{critical_cycle_csr, solve_csr, McmEngine, McmResult};
use crate::ratio::Ratio;
use crate::scc::SccDecomposition;

/// Per-component memo entries kept before the cache stops growing. Queries
/// past the cap still compute correctly; they just aren't remembered.
const CACHE_CAP: usize = 4096;

/// One cyclic component with its memoized re-evaluations.
#[derive(Clone)]
struct CompState {
    /// Component id in the underlying [`SccDecomposition`].
    comp_id: usize,
    /// Mutable CSR snapshot; edge weights are patched during a re-solve and
    /// always restored before the query returns.
    csr: CsrScc,
    /// Mean under the base marking.
    base_mean: Ratio,
    /// Normalized delta vector (sorted by place id) → mean.
    cache: HashMap<Vec<(PlaceId, u64)>, Ratio>,
    /// Howard's converged policy, persisted to warm-start the next solve
    /// (unused by the other engines).
    policy: Vec<u32>,
}

/// Everything [`IncrementalMcm::analysis_with_tokens`] computes in one
/// query: the pieces of [`McmResult`] plus the bottleneck places.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmAnalysis {
    /// The minimum cycle mean under the queried token assignment.
    pub mean: Ratio,
    /// A cycle attaining it, under the shared lowest-component tie-break.
    pub critical_cycle: Vec<PlaceId>,
    /// Places whose +1 token strictly raises the mean, ascending by id
    /// (empty when two or more components tie for the minimum).
    pub bottlenecks: Vec<PlaceId>,
}

/// Cache-effectiveness counters reported by [`IncrementalMcm::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Component re-evaluations answered from the memo (or the base mean).
    pub hits: u64,
    /// Component re-evaluations that ran the MCM engine.
    pub misses: u64,
    /// Total memo entries currently held across components.
    pub entries: usize,
}

/// Incremental MCM engine for one graph under varying token assignments.
///
/// # Examples
///
/// ```
/// use marked_graph::incremental::IncrementalMcm;
/// use marked_graph::{mcm, MarkedGraph, Ratio};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// let back = g.add_place(b, a, 0);
///
/// let mut inc = IncrementalMcm::new(&g);
/// assert_eq!(inc.base_mean(), Some(Ratio::new(1, 2)));
/// // Granting the backedge one extra token: same as mutating the graph.
/// assert_eq!(inc.mcm_with_tokens(&[(back, 1)]), Some(Ratio::ONE));
/// g.set_tokens(back, 1);
/// assert_eq!(mcm::karp(&g), Some(Ratio::ONE));
/// ```
pub struct IncrementalMcm {
    /// Cyclic components in ascending component-id order.
    comps: Vec<CompState>,
    /// place → (slot in `comps`, CSR edge index), for every place internal
    /// to a cyclic component.
    place_index: HashMap<PlaceId, (usize, usize)>,
    /// Whether the source graph had no transitions at all.
    graph_empty: bool,
    /// Which MCM algorithm runs the per-component re-solves.
    engine: McmEngine,
    /// Shared Howard scratch, reused across components and queries.
    scratch: HowardScratch,
    hits: u64,
    misses: u64,
}

impl IncrementalMcm {
    /// Builds the engine with the default algorithm ([`McmEngine::Howard`]):
    /// one SCC decomposition, one base solve per cyclic component.
    ///
    /// # Panics
    ///
    /// Panics if any transition has a delay other than 1, matching the MCM
    /// solvers' restriction.
    pub fn new(graph: &MarkedGraph) -> IncrementalMcm {
        IncrementalMcm::with_engine(graph, McmEngine::default())
    }

    /// [`IncrementalMcm::new`] with an explicit engine choice. All engines
    /// answer queries identically; Howard additionally warm-starts each
    /// component's re-solves from its previously converged policy.
    ///
    /// # Panics
    ///
    /// Panics if any transition has a delay other than 1.
    pub fn with_engine(graph: &MarkedGraph, engine: McmEngine) -> IncrementalMcm {
        for t in graph.transition_ids() {
            assert_eq!(graph.delay(t), 1, "MCM solvers require unit delays");
        }
        let scc = SccDecomposition::compute(graph);
        let mut comps = Vec::new();
        let mut place_index = HashMap::new();
        let mut scratch = HowardScratch::new();
        for c in scc.component_ids() {
            if !scc.is_cyclic(graph, c) {
                continue;
            }
            let csr = CsrScc::build(graph, &scc, c);
            let slot = comps.len();
            for e in 0..csr.edge_count() {
                place_index.insert(csr.place(e), (slot, e));
            }
            let mut policy = Vec::new();
            let base_mean = solve_csr(&csr, engine, &mut scratch, &mut policy);
            comps.push(CompState {
                comp_id: c,
                csr,
                base_mean,
                cache: HashMap::new(),
                policy,
            });
        }
        IncrementalMcm {
            comps,
            place_index,
            graph_empty: graph.is_empty(),
            engine,
            scratch,
            hits: 0,
            misses: 0,
        }
    }

    /// The algorithm running the per-component re-solves.
    pub fn engine(&self) -> McmEngine {
        self.engine
    }

    /// The minimum cycle mean under the base marking (`None` if acyclic),
    /// equal to [`crate::mcm::karp`] on the source graph.
    pub fn base_mean(&self) -> Option<Ratio> {
        self.comps.iter().map(|c| c.base_mean).reduce(Ratio::min)
    }

    /// The minimum cycle mean with the given places' token counts
    /// **overridden** to the paired values (absolute counts, not
    /// increments). Places absent from `overrides` keep their base tokens;
    /// duplicate entries resolve to the last one; overrides on places that
    /// lie on no cycle are ignored (they cannot affect any mean).
    ///
    /// Returns `None` when the graph is acyclic. The value is exactly
    /// [`crate::mcm::karp`] of the graph with the overrides applied.
    pub fn mcm_with_tokens(&mut self, overrides: &[(PlaceId, u64)]) -> Option<Ratio> {
        let per_comp = self.normalize(overrides);
        let mut best: Option<Ratio> = None;
        for slot in 0..self.comps.len() {
            let mean = self.comp_mean(slot, per_comp.get(&slot).map(Vec::as_slice));
            best = Some(best.map_or(mean, |b: Ratio| b.min(mean)));
        }
        best
    }

    /// Like [`Self::mcm_with_tokens`], but also extracts a critical cycle,
    /// reproducing [`crate::mcm::minimum_cycle_mean`] on the modified graph
    /// bit for bit (same tie-break: lowest component id attaining the
    /// minimum).
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`] for an empty source graph, [`GraphError::Acyclic`]
    /// when there are no cycles.
    pub fn result_with_tokens(
        &mut self,
        overrides: &[(PlaceId, u64)],
    ) -> Result<McmResult, GraphError> {
        if self.graph_empty {
            return Err(GraphError::Empty);
        }
        let per_comp = self.normalize(overrides);
        let mut best: Option<(Ratio, usize)> = None;
        for slot in 0..self.comps.len() {
            let mean = self.comp_mean(slot, per_comp.get(&slot).map(Vec::as_slice));
            // comps are in ascending component-id order, so "only strictly
            // smaller displaces" picks the lowest component id on a tie —
            // the same rule as minimum_cycle_mean.
            if best.is_none_or(|(m, _)| mean < m) {
                best = Some((mean, slot));
            }
        }
        let (mean, slot) = best.ok_or(GraphError::Acyclic)?;
        let deltas = per_comp.get(&slot).map(Vec::as_slice).unwrap_or(&[]);
        let saved = self.apply(slot, deltas);
        let critical_cycle = critical_cycle_csr(&self.comps[slot].csr, mean);
        self.restore(slot, deltas, &saved);
        Ok(McmResult {
            mean,
            critical_cycle,
        })
    }

    /// The places whose single-token increment strictly raises the minimum
    /// cycle mean under `overrides` — the bottlenecks of the overridden
    /// graph, identical to probing every place with
    /// [`Self::mcm_with_tokens`] but computed **structurally**: one memoized
    /// component solve plus a tight-subgraph analysis, no per-place
    /// re-solves. If two or more components attain the minimum mean, no
    /// single place can raise it and the result is empty. Places are
    /// returned in ascending id order.
    pub fn bottlenecks_with_tokens(&mut self, overrides: &[(PlaceId, u64)]) -> Vec<PlaceId> {
        let per_comp = self.normalize(overrides);
        let mut best: Option<(Ratio, usize)> = None;
        let mut ties = 0u32;
        for slot in 0..self.comps.len() {
            let mean = self.comp_mean(slot, per_comp.get(&slot).map(Vec::as_slice));
            match best {
                None => {
                    best = Some((mean, slot));
                    ties = 1;
                }
                Some((m, _)) if mean < m => {
                    best = Some((mean, slot));
                    ties = 1;
                }
                Some((m, _)) if mean == m => ties += 1,
                Some(_) => {}
            }
        }
        let Some((mean, slot)) = best else {
            return Vec::new();
        };
        if ties > 1 {
            return Vec::new();
        }
        let deltas = per_comp.get(&slot).map(Vec::as_slice).unwrap_or(&[]);
        let saved = self.apply(slot, deltas);
        let mut places = crate::mcm::bottleneck_places_csr(&self.comps[slot].csr, mean);
        self.restore(slot, deltas, &saved);
        places.sort_unstable();
        places
    }

    /// [`Self::result_with_tokens`] and [`Self::bottlenecks_with_tokens`]
    /// answered by one query: a single component scan, a single weight
    /// patch, and one set of Bellman–Ford potentials shared between the
    /// critical-cycle extraction and the bottleneck analysis. The answers
    /// are exactly what the two separate calls return.
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`] for an empty source graph, [`GraphError::Acyclic`]
    /// when there are no cycles.
    pub fn analysis_with_tokens(
        &mut self,
        overrides: &[(PlaceId, u64)],
    ) -> Result<McmAnalysis, GraphError> {
        if self.graph_empty {
            return Err(GraphError::Empty);
        }
        let per_comp = self.normalize(overrides);
        let mut best: Option<(Ratio, usize)> = None;
        let mut ties = 0u32;
        for slot in 0..self.comps.len() {
            let mean = self.comp_mean(slot, per_comp.get(&slot).map(Vec::as_slice));
            match best {
                // Strict `<` keeps the lowest slot on a tie — the cycle
                // tie-break shared with minimum_cycle_mean.
                None => {
                    best = Some((mean, slot));
                    ties = 1;
                }
                Some((m, _)) if mean < m => {
                    best = Some((mean, slot));
                    ties = 1;
                }
                Some((m, _)) if mean == m => ties += 1,
                Some(_) => {}
            }
        }
        let (mean, slot) = best.ok_or(GraphError::Acyclic)?;
        let deltas = per_comp.get(&slot).map(Vec::as_slice).unwrap_or(&[]);
        let saved = self.apply(slot, deltas);
        let csr = &self.comps[slot].csr;
        // A cross-component tie means no single place raises the global
        // minimum, so the bottleneck set is empty by construction and the
        // tight-subgraph analysis is skipped.
        let (critical_cycle, mut bottlenecks) = if ties > 1 {
            (critical_cycle_csr(csr, mean), Vec::new())
        } else {
            crate::mcm::cycle_and_bottlenecks_csr(csr, mean)
        };
        self.restore(slot, deltas, &saved);
        bottlenecks.sort_unstable();
        Ok(McmAnalysis {
            mean,
            critical_cycle,
            bottlenecks,
        })
    }

    /// Forks an independent engine that starts **warm**: the clone carries
    /// every per-component memo entry and converged Howard policy
    /// accumulated so far, so its first queries are hash lookups or
    /// one-sweep warm solves instead of cold re-solves.
    ///
    /// Forks share no mutable state with the original — each side may
    /// query (and grow its memo) concurrently. This is the fan-out
    /// primitive for parallel design-space sweeps: warm one engine on a
    /// component, then fork it per worker chunk. Hit/miss counters start
    /// at zero in the fork so per-worker cache effectiveness is visible.
    pub fn fork(&self) -> IncrementalMcm {
        IncrementalMcm {
            comps: self.comps.clone(),
            place_index: self.place_index.clone(),
            graph_empty: self.graph_empty,
            engine: self.engine,
            scratch: HowardScratch::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Hit/miss/occupancy counters for the per-component memo.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.comps.iter().map(|c| c.cache.len()).sum(),
        }
    }

    /// Groups overrides by component slot as sorted, deduplicated,
    /// base-differing delta vectors — the canonical memo keys.
    fn normalize(&self, overrides: &[(PlaceId, u64)]) -> HashMap<usize, Vec<(PlaceId, u64)>> {
        let mut latest: HashMap<PlaceId, u64> = HashMap::new();
        for &(p, tokens) in overrides {
            latest.insert(p, tokens);
        }
        let mut per_comp: HashMap<usize, Vec<(PlaceId, u64)>> = HashMap::new();
        for (p, tokens) in latest {
            let Some(&(slot, e)) = self.place_index.get(&p) else {
                continue; // not on any cycle: cannot affect a mean
            };
            if self.comps[slot].csr.weight(e) == tokens as i64 {
                continue; // equal to the base marking: not a delta
            }
            per_comp.entry(slot).or_default().push((p, tokens));
        }
        for deltas in per_comp.values_mut() {
            deltas.sort_unstable_by_key(|&(p, _)| p);
        }
        per_comp
    }

    /// Mean of one component under `deltas` (`None`/empty = base marking),
    /// via the memo when possible.
    fn comp_mean(&mut self, slot: usize, deltas: Option<&[(PlaceId, u64)]>) -> Ratio {
        let deltas = match deltas {
            None | Some([]) => {
                self.hits += 1;
                return self.comps[slot].base_mean;
            }
            Some(d) => d,
        };
        if let Some(&mean) = self.comps[slot].cache.get(deltas) {
            self.hits += 1;
            return mean;
        }
        self.misses += 1;
        let saved = self.apply(slot, deltas);
        let engine = self.engine;
        let comp = &mut self.comps[slot];
        // Warm start: `comp.policy` holds the policy Howard converged to on
        // the previous solve of this component; for a small token delta it
        // is usually one improvement sweep away from optimal.
        let mean = solve_csr(&comp.csr, engine, &mut self.scratch, &mut comp.policy);
        self.restore(slot, deltas, &saved);
        let cache = &mut self.comps[slot].cache;
        if cache.len() < CACHE_CAP {
            cache.insert(deltas.to_vec(), mean);
        }
        mean
    }

    /// Patches the component's edge weights, returning the saved originals.
    fn apply(&mut self, slot: usize, deltas: &[(PlaceId, u64)]) -> Vec<i64> {
        let mut saved = Vec::with_capacity(deltas.len());
        for &(p, tokens) in deltas {
            let (s, e) = self.place_index[&p];
            debug_assert_eq!(s, slot);
            let weight = &mut self.comps[slot].csr.weights[e];
            saved.push(*weight);
            *weight = tokens as i64;
        }
        saved
    }

    /// Undoes [`Self::apply`].
    fn restore(&mut self, slot: usize, deltas: &[(PlaceId, u64)], saved: &[i64]) {
        for (&(p, _), &w) in deltas.iter().zip(saved) {
            let (s, e) = self.place_index[&p];
            debug_assert_eq!(s, slot);
            self.comps[slot].csr.weights[e] = w;
        }
    }

    /// Number of cyclic components being tracked.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Component ids of the tracked (cyclic) components, ascending.
    pub fn component_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.comps.iter().map(|c| c.comp_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Ring + chords + a detached acyclic tail, with every place returned
    /// for override fuzzing.
    fn random_graph(seed: u64) -> (MarkedGraph, Vec<PlaceId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MarkedGraph::new();
        let n = rng.gen_range(2..10usize);
        let ts: Vec<_> = (0..n).map(|i| g.add_transition(format!("t{i}"))).collect();
        let mut places = Vec::new();
        for i in 0..n {
            places.push(g.add_place(ts[i], ts[(i + 1) % n], rng.gen_range(0..4u64)));
        }
        for _ in 0..rng.gen_range(0..n) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            places.push(g.add_place(ts[u], ts[v], rng.gen_range(0..4u64)));
        }
        // Acyclic tail: place overrides here must be ignored.
        let tail = g.add_transition("tail");
        places.push(g.add_place(ts[0], tail, rng.gen_range(0..4u64)));
        (g, places)
    }

    #[test]
    fn matches_karp_under_random_overrides() {
        for seed in 0..30 {
            let (mut g, places) = random_graph(seed);
            let mut inc = IncrementalMcm::new(&g);
            assert_eq!(inc.base_mean(), mcm::karp(&g), "seed {seed}");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            for query in 0..20 {
                let k = rng.gen_range(0..4usize);
                let overrides: Vec<(PlaceId, u64)> = (0..k)
                    .map(|_| {
                        (
                            places[rng.gen_range(0..places.len())],
                            rng.gen_range(0..5u64),
                        )
                    })
                    .collect();
                // Oracle: mutate a clone and run Karp from scratch.
                let saved: Vec<u64> = overrides.iter().map(|&(p, _)| g.tokens(p)).collect();
                for &(p, t) in &overrides {
                    g.set_tokens(p, t);
                }
                let expect = mcm::karp(&g);
                let expect_full = mcm::minimum_cycle_mean(&g);
                for (&(p, _), &t) in overrides.iter().zip(&saved) {
                    g.set_tokens(p, t);
                }
                assert_eq!(
                    inc.mcm_with_tokens(&overrides),
                    expect,
                    "seed {seed} query {query} overrides {overrides:?}"
                );
                assert_eq!(
                    inc.result_with_tokens(&overrides).ok(),
                    expect_full.ok(),
                    "seed {seed} query {query}"
                );
            }
        }
    }

    #[test]
    fn every_engine_answers_identically() {
        for seed in 0..10 {
            let (g, places) = random_graph(seed);
            let mut engines: Vec<IncrementalMcm> = McmEngine::ALL
                .iter()
                .map(|&e| IncrementalMcm::with_engine(&g, e))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            for query in 0..15 {
                let k = rng.gen_range(0..3usize);
                let overrides: Vec<(PlaceId, u64)> = (0..k)
                    .map(|_| {
                        (
                            places[rng.gen_range(0..places.len())],
                            rng.gen_range(0..5u64),
                        )
                    })
                    .collect();
                let answers: Vec<_> = engines
                    .iter_mut()
                    .map(|inc| {
                        (
                            inc.mcm_with_tokens(&overrides),
                            inc.result_with_tokens(&overrides).ok(),
                        )
                    })
                    .collect();
                for pair in answers.windows(2) {
                    assert_eq!(
                        pair[0], pair[1],
                        "seed {seed} query {query} overrides {overrides:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        let back = g.add_place(b, a, 0);
        let mut inc = IncrementalMcm::new(&g);
        let first = inc.mcm_with_tokens(&[(back, 3)]);
        let stats = inc.cache_stats();
        assert_eq!(stats.misses, 1);
        let second = inc.mcm_with_tokens(&[(back, 3)]);
        assert_eq!(first, second);
        let stats = inc.cache_stats();
        assert_eq!(stats.misses, 1, "second query must be a cache hit");
        assert!(stats.hits >= 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn base_marking_queries_never_resolve() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let fwd = g.add_place(a, b, 1);
        g.add_place(b, a, 0);
        let mut inc = IncrementalMcm::new(&g);
        // Overriding to the base value is not a delta.
        assert_eq!(inc.mcm_with_tokens(&[(fwd, 1)]), inc.base_mean());
        assert_eq!(inc.cache_stats().misses, 0);
    }

    #[test]
    fn duplicate_overrides_last_one_wins() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 0);
        let back = g.add_place(b, a, 0);
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(
            inc.mcm_with_tokens(&[(back, 7), (back, 2)]),
            Some(Ratio::ONE)
        );
    }

    #[test]
    fn acyclic_graph_has_no_mean() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let p = g.add_place(a, b, 1);
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(inc.base_mean(), None);
        assert_eq!(inc.mcm_with_tokens(&[(p, 5)]), None);
        assert_eq!(
            inc.result_with_tokens(&[]).unwrap_err(),
            GraphError::Acyclic
        );
        assert_eq!(inc.component_count(), 0);
        assert_eq!(inc.engine(), McmEngine::Howard);
    }

    #[test]
    fn empty_graph_reports_empty() {
        let g = MarkedGraph::new();
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(inc.result_with_tokens(&[]).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn fork_answers_identically_and_starts_warm() {
        for seed in 0..10 {
            let (g, places) = random_graph(seed);
            let mut inc = IncrementalMcm::new(&g);
            // Warm the original on a query stream.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_52);
            let queries: Vec<Vec<(PlaceId, u64)>> = (0..12)
                .map(|_| {
                    (0..rng.gen_range(0..3usize))
                        .map(|_| {
                            (
                                places[rng.gen_range(0..places.len())],
                                rng.gen_range(0..5u64),
                            )
                        })
                        .collect()
                })
                .collect();
            for q in &queries {
                inc.mcm_with_tokens(q);
            }
            let warmed_misses = inc.cache_stats().misses;
            let mut fork = inc.fork();
            assert_eq!(fork.cache_stats().hits, 0);
            assert_eq!(fork.cache_stats().misses, 0);
            assert_eq!(fork.cache_stats().entries, inc.cache_stats().entries);
            // Replaying the warmed stream on the fork answers identically
            // and never runs the engine: every query is a memo hit.
            for q in &queries {
                assert_eq!(
                    fork.mcm_with_tokens(q),
                    inc.mcm_with_tokens(q),
                    "seed {seed}"
                );
                assert_eq!(
                    fork.result_with_tokens(q).ok(),
                    inc.result_with_tokens(q).ok(),
                    "seed {seed}"
                );
            }
            assert_eq!(fork.cache_stats().misses, 0, "fork must start warm");
            assert_eq!(
                inc.cache_stats().misses,
                warmed_misses,
                "replay on the original must also be all hits"
            );
            // Divergent queries on the fork leave the original untouched.
            let probe: Vec<(PlaceId, u64)> = places.iter().map(|&p| (p, 4)).collect();
            fork.mcm_with_tokens(&probe);
            assert_eq!(inc.cache_stats().misses, warmed_misses);
            assert_eq!(inc.mcm_with_tokens(&[]), inc.base_mean());
        }
    }

    #[test]
    fn combined_analysis_matches_separate_queries() {
        for seed in 0..25 {
            let (g, places) = random_graph(seed);
            let mut inc = IncrementalMcm::new(&g);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A);
            for query in 0..15 {
                let k = rng.gen_range(0..4usize);
                let overrides: Vec<(PlaceId, u64)> = (0..k)
                    .map(|_| {
                        (
                            places[rng.gen_range(0..places.len())],
                            rng.gen_range(0..5u64),
                        )
                    })
                    .collect();
                let combined = inc.analysis_with_tokens(&overrides);
                let result = inc.result_with_tokens(&overrides);
                let bottlenecks = inc.bottlenecks_with_tokens(&overrides);
                match (combined, result) {
                    (Ok(a), Ok(r)) => {
                        assert_eq!(a.mean, r.mean, "seed {seed} query {query}");
                        assert_eq!(
                            a.critical_cycle, r.critical_cycle,
                            "seed {seed} query {query}"
                        );
                        assert_eq!(a.bottlenecks, bottlenecks, "seed {seed} query {query}");
                    }
                    (Err(a), Err(r)) => assert_eq!(a, r, "seed {seed} query {query}"),
                    (a, r) => panic!("seed {seed} query {query}: {a:?} vs {r:?}"),
                }
            }
        }
    }

    #[test]
    fn combined_analysis_error_cases() {
        let g = MarkedGraph::new();
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(
            inc.analysis_with_tokens(&[]).unwrap_err(),
            GraphError::Empty
        );
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(
            inc.analysis_with_tokens(&[]).unwrap_err(),
            GraphError::Acyclic
        );
    }

    #[test]
    fn untouched_components_reuse_base_means() {
        // Two disconnected rings; overriding only the second must not
        // re-solve the first.
        let mut g = MarkedGraph::new();
        let a0 = g.add_transition("a0");
        let a1 = g.add_transition("a1");
        g.add_place(a0, a1, 1);
        g.add_place(a1, a0, 1);
        let b0 = g.add_transition("b0");
        let b1 = g.add_transition("b1");
        g.add_place(b0, b1, 1);
        let back = g.add_place(b1, b0, 0);
        let mut inc = IncrementalMcm::new(&g);
        assert_eq!(inc.component_count(), 2);
        assert_eq!(inc.mcm_with_tokens(&[(back, 9)]), Some(Ratio::ONE));
        // Exactly one engine run: the b-ring.
        assert_eq!(inc.cache_stats().misses, 1);
    }
}
