//! Byte-soup hardening for the two parsers that face the network: the
//! HTTP request reader and the wire-format JSON parser. The property is
//! absence of panics — arbitrary bytes may be rejected with an error or
//! (for self-delimiting prefixes) accepted, but must never bring a
//! worker thread down. A committed corpus of classic hostile requests
//! (truncation, oversized lengths, smuggling probes, TLS-on-HTTP-port,
//! NUL soup) pins regressions; the property tests explore around them.

use std::io::BufReader;

use lis_server::http::read_request;
use lis_server::wire::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Hostile requests seen in the wild, committed so a parser regression
/// on any of them is a deterministic failure, not a fuzzing roll.
const CORPUS: &[(&str, &[u8])] = &[
    (
        "truncated_headers",
        include_bytes!("corpus/truncated_headers.raw"),
    ),
    (
        "truncated_body",
        include_bytes!("corpus/truncated_body.raw"),
    ),
    (
        "oversized_content_length",
        include_bytes!("corpus/oversized_content_length.raw"),
    ),
    (
        "bad_content_length",
        include_bytes!("corpus/bad_content_length.raw"),
    ),
    (
        "negative_content_length",
        include_bytes!("corpus/negative_content_length.raw"),
    ),
    ("te_cl_smuggle", include_bytes!("corpus/te_cl_smuggle.raw")),
    (
        "conflicting_content_lengths",
        include_bytes!("corpus/conflicting_content_lengths.raw"),
    ),
    ("huge_head", include_bytes!("corpus/huge_head.raw")),
    ("tls_hello", include_bytes!("corpus/tls_hello.raw")),
    ("nul_soup", include_bytes!("corpus/nul_soup.raw")),
    ("lf_only", include_bytes!("corpus/lf_only.raw")),
    (
        "garbage_json_body",
        include_bytes!("corpus/garbage_json_body.raw"),
    ),
];

/// Feed raw bytes through the request reader exactly the way a
/// connection handler would. Returns whether the reader accepted it —
/// the test only cares that this returns at all.
fn read_bytes(bytes: &[u8]) -> bool {
    let mut reader = BufReader::new(bytes);
    matches!(read_request(&mut reader), Ok(Some(_)))
}

#[test]
fn corpus_requests_never_panic_the_request_reader() {
    for (name, bytes) in CORPUS {
        let accepted = read_bytes(bytes);
        // Every corpus entry is hostile; none should parse into a
        // complete request the dispatcher would act on — except the
        // body-level ones, where HTTP framing itself is intact.
        let framing_ok = matches!(*name, "garbage_json_body" | "lf_only");
        assert_eq!(
            accepted, framing_ok,
            "corpus entry {name}: accepted={accepted}"
        );
    }
}

#[test]
fn corpus_bodies_never_panic_the_json_parser() {
    for (name, bytes) in CORPUS {
        // Whatever trails the first blank line is "the body"; parse it
        // both as raw bytes (lossy) and as the full payload.
        let text = String::from_utf8_lossy(bytes);
        let _ = Json::parse(&text);
        if let Some(idx) = text.find("\r\n\r\n") {
            let _ = Json::parse(&text[idx + 4..]);
        }
        let _ = name;
    }
}

/// Raw byte soup, weighted toward HTTP-looking prefixes so the fuzzer
/// spends its budget past the request line instead of dying on byte 0.
struct ArbRequestBytes;

impl Strategy for ArbRequestBytes {
    type Value = Vec<u8>;
    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut bytes = Vec::new();
        match rng.gen_range(0..4u32) {
            // Pure noise.
            0 => {}
            // A plausible request line, then noise.
            1 => {
                let method =
                    ["GET", "POST", "PUT", "OPTIONS", "P\0ST", ""][rng.gen_range(0..6usize)];
                let path = ["/analyze", "/qs", "/", "/%00", "*"][rng.gen_range(0..5usize)];
                let version =
                    ["HTTP/1.1", "HTTP/1.0", "HTTP/9.9", "XYZZY", ""][rng.gen_range(0..5usize)];
                bytes.extend_from_slice(format!("{method} {path} {version}\r\n").as_bytes());
            }
            // A full head with randomized header lines.
            _ => {
                bytes.extend_from_slice(b"POST /analyze HTTP/1.1\r\n");
                for _ in 0..rng.gen_range(0..5) {
                    let header = [
                        format!("Content-Length: {}", rng.gen_range(-5i64..1_000_000)),
                        format!("Content-Length: {}", u64::MAX),
                        "Content-Length: moose".to_string(),
                        "Transfer-Encoding: chunked".to_string(),
                        "Connection: keep-alive".to_string(),
                        format!("X-Junk: {}", "j".repeat(rng.gen_range(0..64))),
                    ][rng.gen_range(0..6usize)]
                    .clone();
                    bytes.extend_from_slice(header.as_bytes());
                    bytes.extend_from_slice(b"\r\n");
                }
                if rng.gen_bool(0.8) {
                    bytes.extend_from_slice(b"\r\n");
                }
            }
        }
        // Arbitrary tail bytes — body, trailing garbage, or a truncation
        // point anywhere in the stream.
        let tail: usize = rng.gen_range(0..256);
        bytes.extend((0..tail).map(|_| (rng.next_u64() & 0xff) as u8));
        let cut = rng.gen_range(0..=bytes.len());
        bytes.truncate(cut);
        bytes
    }
}

/// Mostly-JSON text with mutations: valid documents with bytes flipped,
/// truncated, or duplicated, plus deep nesting to stress recursion.
struct ArbJsonText;

impl Strategy for ArbJsonText {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let base = match rng.gen_range(0..6u32) {
            0 => String::new(),
            1 => "{\"netlist\": \"a -> b\"}".to_string(),
            2 => format!("[{}", "[".repeat(rng.gen_range(0..512))),
            3 => format!("{}1{}", "[".repeat(200), "]".repeat(rng.gen_range(0..=200))),
            4 => format!(
                "{{\"k\": {}e{}}}",
                rng.gen_range(-9999..9999),
                rng.gen_range(-9999..9999)
            ),
            _ => {
                let mut s = String::from("{\"a\": [1, 2.5, \"x\\u00e9\", null, true]}");
                // Flip a few chars to related punctuation.
                for _ in 0..rng.gen_range(0..4) {
                    let pos = rng.gen_range(0..s.len());
                    if s.is_char_boundary(pos) && s.is_char_boundary(pos + 1) {
                        let repl =
                            ['{', '}', '[', ']', '"', '\\', ',', ':'][rng.gen_range(0..8usize)];
                        s.replace_range(pos..pos + 1, &repl.to_string());
                    }
                }
                s
            }
        };
        let mut out = base;
        if rng.gen_bool(0.3) && !out.is_empty() {
            let mut cut = rng.gen_range(0..=out.len());
            while cut > 0 && !out.is_char_boundary(cut) {
                cut -= 1;
            }
            out.truncate(cut);
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]
    #[test]
    fn request_reader_never_panics_on_byte_soup(bytes in ArbRequestBytes) {
        // Accept or reject, but always return.
        let _ = read_bytes(&bytes);
    }

    #[test]
    fn json_parser_never_panics_on_mutated_text(text in ArbJsonText) {
        let _ = Json::parse(&text);
    }
}
