//! Fig. 17 — MST recovery with uniform fixed queues (scc insertion).
//!
//! For q = 1..8 and several relay-station counts, reports the average ratio
//! of the practical MST to the ideal MST. Expected shape (paper): with
//! q = 1 the ratio can be as low as ~75%; from q ≥ 5 it exceeds 90%.

use lis_bench::{mean, ExpOptions, Table};
use lis_core::fixed_q_mst_ratio;
use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::from_args();
    let rs_counts = [2usize, 4, 6, 8, 10];
    let mut header: Vec<String> = vec!["q".to_string()];
    header.extend(rs_counts.iter().map(|rs| format!("rs={rs}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!(
            "Fig. 17: practical/ideal MST with fixed queues, v=50 s=5 c=5 rp=1 scc insertion, {} trials",
            opts.trials
        ),
        &header_refs,
    );

    // Generate each trial's system once (trials in parallel, per-trial
    // seeds, order preserved by par_map); sweep q on clones.
    let trials: Vec<usize> = (0..opts.trials).collect();
    let systems: Vec<Vec<lis_core::LisSystem>> = rs_counts
        .iter()
        .enumerate()
        .map(|(i, &rs)| {
            let cfg = GeneratorConfig::fig16(rs, InsertionPolicy::Scc);
            lis_par::par_map(&trials, |&trial| {
                let mut rng = StdRng::seed_from_u64(opts.seed ^ ((i as u64) << 40) ^ trial as u64);
                generate(&cfg, &mut rng).system
            })
        })
        .collect();

    for q in 1..=8u64 {
        let mut cells = vec![q.to_string()];
        for per_rs in &systems {
            let ratios: Vec<f64> =
                lis_par::par_map(per_rs, |sys| fixed_q_mst_ratio(sys, q).to_f64());
            cells.push(format!("{:.3}", mean(&ratios)));
        }
        t.row(&cells);
    }
    t.print();
}
