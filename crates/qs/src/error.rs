//! Error types for queue-sizing analysis.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the queue-sizing pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QsError {
    /// Cycle enumeration blew past the configured limit; the instance is too
    /// large for the cycle-listing approach (the paper notes this failure
    /// mode explicitly in Section VIII-C).
    TooManyCycles {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The underlying marked-graph analysis failed.
    Graph(marked_graph::GraphError),
}

impl fmt::Display for QsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsError::TooManyCycles { limit } => {
                write!(f, "cycle enumeration exceeded the limit of {limit} cycles")
            }
            QsError::Graph(e) => write!(f, "marked-graph analysis failed: {e}"),
        }
    }
}

impl StdError for QsError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            QsError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<marked_graph::GraphError> for QsError {
    fn from(e: marked_graph::GraphError) -> QsError {
        match e {
            marked_graph::GraphError::TooManyCycles { limit } => QsError::TooManyCycles { limit },
            other => QsError::Graph(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QsError = marked_graph::GraphError::TooManyCycles { limit: 5 }.into();
        assert_eq!(e, QsError::TooManyCycles { limit: 5 });
        assert!(e.to_string().contains("limit of 5"));
        let g: QsError = marked_graph::GraphError::Acyclic.into();
        assert!(matches!(g, QsError::Graph(_)));
        assert!(StdError::source(&g).is_some());
    }
}
