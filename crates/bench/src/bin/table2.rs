//! Table II — classification of LIS topologies and the fixed-queue-sizing
//! guarantee.
//!
//! For each topology class the paper describes, this binary generates
//! random instances, sprinkles relay stations, and *measures* whether fixed
//! queues of size one preserve the ideal MST — confirming the guarantee for
//! trees and reconvergence-free (networks of) SCCs, and exhibiting
//! violations for general topologies. The sweep itself lives in
//! [`lis_bench::experiments::table2`], where the trials run in parallel
//! with deterministic per-trial seeds.

use lis_bench::{experiments, ExpOptions};

fn main() {
    print!("{}", experiments::table2(&ExpOptions::from_args()));
}
