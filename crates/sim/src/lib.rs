//! Cycle-accurate, value-level simulation of latency-insensitive systems.
//!
//! This crate is the executable substrate behind the paper's protocol-level
//! claims: shells with AND-firing and finite input queues, relay stations
//! with twofold buffering, and backpressure stop signals — realized by
//! executing the system's doubled marked graph with value-carrying tokens.
//! Because the simulator *is* the analysis model, measured firing rates
//! converge to the MST computed statically (tests assert this), and output
//! traces reproduce the paper's Table I exactly.
//!
//! * [`LisSimulator`] — drives a [`lis_core::LisSystem`] plus one
//!   [`CoreModel`] per block under finite (backpressure) or infinite
//!   (ideal) queues;
//! * [`core_model`] — a library of behavioral cores (the Table I even/odd
//!   generator and adder, pass-throughs, scripted sources, sinks, closures);
//! * [`assert_latency_equivalence`] — checks the defining LID property:
//!   same valid-data sequences as the synchronous reference, modulo τ;
//! * [`attach_throttle`] — models an environment producing/consuming data
//!   at a bounded rate via an auxiliary feedback ring;
//! * the **compiled kernel** — [`CompiledProgram`] flattens the network into
//!   a structure-of-arrays schedule, [`CompiledSim`] executes it with zero
//!   per-step allocation, and [`McKernel`] packs 64 seeded Monte-Carlo
//!   trials bit-parallel per machine word ([`assert_compiled_equivalence`]
//!   holds it cycle-exact against the interpreter).
//!
//! # Examples
//!
//! ```
//! use lis_core::figures;
//! use lis_sim::{Adder, EvenOddGenerator, LisSimulator, QueueMode};
//!
//! // Measured throughput under backpressure matches the analytic 2/3.
//! let (sys, _, _) = figures::fig1();
//! let mut sim = LisSimulator::new(
//!     &sys,
//!     vec![Box::new(EvenOddGenerator::new()), Box::new(Adder::new(1))],
//!     QueueMode::Finite,
//! );
//! sim.run(3000);
//! let a = sys.block_by_name("A").expect("block A exists");
//! assert!((sim.throughput(a).to_f64() - 2.0 / 3.0).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
pub mod core_model;
mod diff;
mod equiv;
mod kernel;
mod mc;
mod rtl;
mod simulator;
mod stats;
mod vcd;

pub use compile::CompiledProgram;
pub use core_model::{
    Adder, CoreModel, EvenOddGenerator, MapCore, Passthrough, SequenceSource, Sink, Value,
};
pub use diff::{
    assert_compiled_equivalence, assert_compiled_equivalence_both_modes, passthrough_cores,
};
pub use equiv::{assert_latency_equivalence, latency_equivalent, valid_values};
pub use kernel::CompiledSim;
pub use mc::{
    burst_sweep, single_trial, single_trial_burst, single_trial_burst_on, single_trial_on,
    stall_sweep, BurstSpec, McKernel, McReport, StallSpec, LANES,
};
pub use rtl::RtlSimulator;
pub use simulator::{attach_throttle, LisSimulator, QueueMode};
pub use stats::{collect_stats, SimStats};
pub use vcd::to_vcd;
