//! Cross-validation of the three throughput oracles on random systems:
//! Karp's algorithm, Lawler's parametric search, minimum over enumerated
//! cycles, step-semantics firing, and the value-level LIS simulator must all
//! agree.

use lis::core::{practical_mst, practical_mst_with, LisModel, McmEngine};
use lis::gen::{generate, GeneratorConfig, InsertionPolicy};
use lis::marked_graph::cycles::elementary_cycles;
use lis::marked_graph::mcm::{karp, lawler};
use lis::marked_graph::{FiringEngine, Ratio};
use lis::sim::{CoreModel, LisSimulator, Passthrough, QueueMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> lis::core::LisSystem {
    let cfg = GeneratorConfig {
        vertices: 12,
        sccs: 3,
        min_cycles_per_scc: 2,
        relay_stations: 4,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: Some(2),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).system
}

#[test]
fn karp_lawler_and_cycle_enumeration_agree() {
    for seed in 0..15 {
        let sys = small_config(seed);
        let g = LisModel::doubled(&sys).into_graph();
        let k = karp(&g).expect("doubled graph has cycles");
        assert_eq!(Some(k), lawler(&g), "seed {seed}");
        let min_enumerated = elementary_cycles(&g, 1_000_000)
            .expect("bounded")
            .iter()
            .map(|c| g.cycle_mean(c))
            .min()
            .expect("has cycles");
        assert_eq!(k, min_enumerated, "seed {seed}");
    }
}

#[test]
fn firing_engine_converges_to_analytic_mst() {
    for seed in 0..8 {
        let sys = small_config(seed);
        let analytic = practical_mst(&sys).to_f64();
        let g = LisModel::doubled(&sys).into_graph();
        let mut engine = FiringEngine::new(&g);
        engine.run(5000);
        // In the doubled graph of a connected LIS every transition settles
        // at the system MST.
        for t in g.transition_ids() {
            let measured = engine.throughput(t).to_f64();
            assert!(
                (measured - analytic).abs() < 0.02,
                "seed {seed}, {t:?}: measured {measured} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn value_simulator_matches_firing_engine() {
    for seed in 0..5 {
        let sys = small_config(seed);
        let cores: Vec<Box<dyn CoreModel>> = sys
            .block_ids()
            .map(|b| {
                let outs = sys
                    .channel_ids()
                    .filter(|&c| sys.channel_from(c) == b)
                    .count();
                Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
            })
            .collect();
        let mut sim = LisSimulator::new(&sys, cores, QueueMode::Finite);
        sim.run(5000);
        let analytic = practical_mst(&sys).to_f64();
        for b in sys.block_ids() {
            let measured = sim.throughput(b).to_f64();
            assert!(
                (measured - analytic).abs() < 0.02,
                "seed {seed}, {b:?}: measured {measured} vs analytic {analytic}"
            );
        }
    }
}

/// Differential sweep across the full analysis stack: for seeded random
/// systems, every `McmEngine` (Howard policy iteration, Karp, Lawler)
/// must report the exact same sustainable rate, and the value-level
/// simulator under *finite* queues must converge to it.
#[test]
fn all_three_mcm_engines_match_the_finite_queue_simulator() {
    const ENGINES: [McmEngine; 3] = [McmEngine::Howard, McmEngine::Karp, McmEngine::Lawler];
    for seed in 100..112 {
        let sys = small_config(seed);
        let rates: Vec<_> = ENGINES
            .iter()
            .map(|&e| practical_mst_with(&sys, e))
            .collect();
        assert!(
            rates.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: engines disagree: {rates:?}"
        );
        let analytic = rates[0].to_f64();

        let cores: Vec<Box<dyn CoreModel>> = sys
            .block_ids()
            .map(|b| {
                let outs = sys
                    .channel_ids()
                    .filter(|&c| sys.channel_from(c) == b)
                    .count();
                Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
            })
            .collect();
        let mut sim = LisSimulator::new(&sys, cores, QueueMode::Finite);
        sim.run(5000);
        for b in sys.block_ids() {
            let measured = sim.throughput(b).to_f64();
            assert!(
                (measured - analytic).abs() < 0.02,
                "seed {seed}, {b:?}: simulated {measured} vs analytic {analytic}"
            );
        }
    }
}

/// The compiled kernel joins the oracle panel: for seeded random systems
/// its measured finite-queue throughput must converge to the same analytic
/// MST the MCM engines report, and its firing schedule must be cycle-exact
/// with the value-level interpreter (the harness asserts both regimes).
#[test]
fn compiled_kernel_matches_analysis_and_interpreter() {
    use lis::sim::{assert_compiled_equivalence_both_modes, CompiledSim, QueueMode};
    for seed in 0..8 {
        let sys = small_config(seed);
        assert_compiled_equivalence_both_modes(&sys, 300);
        let analytic = practical_mst(&sys).to_f64();
        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.run(5000);
        for b in sys.block_ids() {
            let measured = sim.throughput(b).to_f64();
            assert!(
                (measured - analytic).abs() < 0.02,
                "seed {seed}, {b:?}: compiled {measured} vs analytic {analytic}"
            );
        }
    }
}

/// Stochastic-latency sweep: under random per-transition stalls the
/// protocol slows down but **never** beats the analytical MCM bound — θ of
/// the doubled graph is an upper bound on every trial's sustained rate, at
/// any stall probability (Carloni's θ is the zero-stall limit).
#[test]
fn stochastic_latency_never_exceeds_mcm_bound() {
    use lis::sim::{CompiledProgram, McKernel, QueueMode, StallSpec};
    for seed in 0..4 {
        let sys = small_config(seed);
        let theta = practical_mst(&sys).to_f64();
        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        for (i, p) in [0.0, 0.02, 0.1, 0.3].into_iter().enumerate() {
            let spec = StallSpec::uniform(&prog, p);
            let report = McKernel::new(prog.clone(), spec, 1000 + i as u64).run(64, 3000);
            assert!(
                report.max_system_rate() <= theta + 1e-9,
                "seed {seed}, p={p}: {} beats the bound {theta}",
                report.max_system_rate()
            );
            assert!(
                report.min_system_rate() > 0.0,
                "seed {seed}, p={p}: a trial deadlocked"
            );
            if p == 0.0 {
                // The zero-stall limit attains θ (up to the transient).
                assert!(
                    (report.mean_system_rate() - theta).abs() < 0.02,
                    "seed {seed}: stall-free rate {} vs θ {theta}",
                    report.mean_system_rate()
                );
            }
        }
    }
}

/// Queue-occupancy bounds from the periodic schedule, differential-tested
/// against both kernels on random systems: the zero-stall compiled run
/// attains exactly the schedule's per-channel peak, and no stalled
/// Monte-Carlo trial ever pushes a queue past the pair-invariant cap.
#[test]
fn schedule_occupancy_bounds_hold_in_both_kernels() {
    use lis::schedule::Schedule;
    use lis::sim::{CompiledProgram, CompiledSim, McKernel, StallSpec};
    for seed in 0..6 {
        let sys = small_config(seed);
        let s = Schedule::compute(&sys, McmEngine::Howard).expect("schedules");
        assert_eq!(s.throughput, practical_mst(&sys), "seed {seed}");

        let mut sim = CompiledSim::new(&sys, QueueMode::Finite);
        sim.track_occupancy();
        sim.run(s.transient + 2 * s.period);
        for b in &s.bounds {
            assert_eq!(
                sim.max_queue_occupancy(b.channel),
                b.peak,
                "seed {seed}, channel {:?}",
                b.channel
            );
        }

        let prog = CompiledProgram::compile(&sys, QueueMode::Finite);
        let spec = StallSpec::uniform(&prog, 0.15);
        let (_, occupancy) = McKernel::new(prog, spec, seed).run_occupancy(32, 1500);
        for (b, &max) in s.bounds.iter().zip(&occupancy) {
            assert!(
                max <= b.cap,
                "seed {seed}, channel {:?}: occupancy {max} > cap {}",
                b.channel,
                b.cap
            );
        }
    }
}

#[test]
fn exact_periodic_rate_equals_mst_on_fig1() {
    let (sys, _, _) = lis::core::figures::fig1();
    let g = LisModel::doubled(&sys).into_graph();
    let mut engine = FiringEngine::new(&g);
    let a = g.transition_ids().next().expect("nonempty");
    assert_eq!(
        engine.periodic_throughput(a, 10_000),
        Some(Ratio::new(2, 3))
    );
}
