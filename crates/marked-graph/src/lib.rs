//! Marked graphs (decision-free Petri nets) and their performance analysis.
//!
//! This crate is the analysis substrate for the latency-insensitive-system
//! (LIS) workspace. It implements the marked-graph machinery of
//! *Collins & Carloni, "Topology-Based Performance Analysis and Optimization
//! of Latency-Insensitive Systems"* (IEEE TCAD 2008), which extends
//! *Carloni & Sangiovanni-Vincentelli* (DAC 2000):
//!
//! * [`MarkedGraph`] — places (token-weighted edges) and transitions, with
//!   the paper's restriction that every place has exactly one producer and
//!   one consumer.
//! * [`FiringEngine`] — step-semantics execution (all enabled transitions
//!   fire concurrently once per clock period).
//! * [`mcm`] — minimum cycle mean with three interchangeable engines
//!   ([`mcm::McmEngine`]): Howard's policy iteration (the default, running
//!   on the flat CSR kernel in [`csr`]/[`howard`]), Karp's dynamic program
//!   (the cross-validation oracle), and Lawler's parametric search. All
//!   three return bit-identical exact rationals; the reciprocal of the
//!   minimum cycle mean is the cycle time, capped at 1 it becomes the
//!   maximal sustainable throughput of a LIS. Per-SCC solves fan out in
//!   parallel; serial reference implementations are kept as oracles.
//! * [`csr`] — [`csr::CsrScc`], a flat compressed-sparse-row snapshot of
//!   one SCC, built once and reused by every engine and query.
//! * [`howard`] — Howard's policy iteration over the CSR snapshot, with
//!   reusable scratch buffers and warm-startable policies.
//! * [`incremental`] — [`incremental::IncrementalMcm`] re-evaluates the MCM
//!   under token overrides, re-solving only the touched components with a
//!   memo cache keyed by the delta vector and warm-started policies.
//! * [`cycles`] — Johnson's elementary-cycle enumeration, the input to the
//!   Token Deficit abstraction used by queue sizing.
//! * [`SccDecomposition`] — Tarjan SCCs and the condensation DAG.
//! * [`word`] — balanced binary words ([`word::BalancedWord`]), the
//!   two-integer encoding of periodic firing schedules.
//! * [`structure`] — articulation points, biconnected components, and the
//!   reconvergent-path test behind the paper's topology classification.
//!
//! # Examples
//!
//! Computing the throughput-limiting cycle of a small system:
//!
//! ```
//! use marked_graph::{mcm::minimum_cycle_mean, MarkedGraph, Ratio};
//!
//! // A three-stage ring with one token: each stage fires once every three
//! // clock periods.
//! let mut g = MarkedGraph::new();
//! let a = g.add_transition("A");
//! let b = g.add_transition("B");
//! let c = g.add_transition("C");
//! g.add_place(a, b, 1);
//! g.add_place(b, c, 0);
//! g.add_place(c, a, 0);
//! let result = minimum_cycle_mean(&g)?;
//! assert_eq!(result.mean, Ratio::new(1, 3));
//! # Ok::<(), marked_graph::GraphError>(())
//! ```
//!
//! Simulated throughput converges to the analytic value:
//!
//! ```
//! use marked_graph::{FiringEngine, MarkedGraph, Ratio};
//!
//! let mut g = MarkedGraph::new();
//! let a = g.add_transition("A");
//! let b = g.add_transition("B");
//! g.add_place(a, b, 1);
//! g.add_place(b, a, 0);
//! let mut engine = FiringEngine::new(&g);
//! let rate = engine.periodic_throughput(a, 1_000).expect("periodic");
//! assert_eq!(rate, Ratio::new(1, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod cycles;
pub mod dot;
mod error;
mod firing;
mod graph;
pub mod howard;
pub mod incremental;
pub mod mcm;
mod ratio;
mod scc;
pub mod sensitivity;
pub mod structure;
pub mod word;

pub use error::GraphError;
pub use firing::{FiringEngine, Marking, PeriodicBehavior};
pub use graph::{MarkedGraph, PlaceId, TransitionId};
pub use mcm::McmEngine;
pub use ratio::Ratio;
pub use scc::SccDecomposition;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<MarkedGraph>();
        assert_traits::<Marking>();
        assert_traits::<Ratio>();
        assert_traits::<GraphError>();
        assert_traits::<SccDecomposition>();
    }
}
