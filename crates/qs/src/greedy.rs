//! A greedy max-coverage solver for the Token Deficit problem.
//!
//! The related work the paper cites (Hu, Ogras & Marculescu) allocates NoC
//! router buffers with an efficient greedy algorithm; this is the analogous
//! baseline for queue sizing: repeatedly place one token on the edge that
//! currently helps the most still-deficient cycles. Greedy set multicover
//! carries the classic `H_n` approximation guarantee, sits *below* the
//! paper's trim-down heuristic in cost on instances with much overlap, and
//! above it on instances where trimming finds the global structure — the
//! ablation binary reports both.

use lis_core::ChannelId;
use marked_graph::Ratio;

use crate::oracle::{trim_weights, ThroughputOracle};
use crate::td::{TdInstance, TdSolution};

/// Runs the greedy max-coverage baseline.
///
/// Each round adds one token to the set covering the largest number of
/// cycles whose deficit is not yet met (ties broken toward the lower set
/// index). Always feasible on instances where every deficient cycle has at
/// least one covering set — true for every instance extracted from a LIS.
///
/// # Panics
///
/// Panics if some cycle with positive deficit has no covering set (such an
/// instance has no solution at all).
///
/// # Examples
///
/// ```
/// use lis_qs::{greedy_cover_solve, TdInstance};
///
/// let td = TdInstance::new(vec![1, 1], vec![vec![0], vec![1], vec![0, 1]]);
/// let sol = greedy_cover_solve(&td);
/// assert!(td.is_feasible(&sol.weights));
/// assert_eq!(sol.weights, vec![0, 0, 1]); // the shared set wins round one
/// ```
pub fn greedy_cover_solve(td: &TdInstance) -> TdSolution {
    let mut weights = vec![0u64; td.set_count()];
    let mut residual: Vec<u64> = (0..td.cycle_count()).map(|c| td.deficit(c)).collect();
    loop {
        // Count, per set, the cycles it would still help.
        let mut best: Option<(usize, usize)> = None; // (set, helped)
        for s in 0..td.set_count() {
            let helped = td.set(s).iter().filter(|&&c| residual[c] > 0).count();
            if helped > 0 && best.is_none_or(|(_, h)| helped > h) {
                best = Some((s, helped));
            }
        }
        match best {
            None => {
                assert!(
                    residual.iter().all(|&r| r == 0),
                    "uncoverable deficient cycle: the instance has no solution"
                );
                break;
            }
            Some((s, _)) => {
                weights[s] += 1;
                for &c in td.set(s) {
                    residual[c] = residual[c].saturating_sub(1);
                }
            }
        }
    }
    debug_assert!(td.is_feasible(&weights));
    TdSolution { weights }
}

/// [`greedy_cover_solve`] followed by an incremental oracle trim: greedy's
/// H_n-approximate assignment is tightened against the *real* throughput
/// (not the Token Deficit abstraction), removing tokens the coverage
/// counting over-spent. `labels[i]` is the channel behind set `i`; `target`
/// is the ideal MST to preserve. The result stays feasible by construction
/// — every removal is verified by the oracle.
pub fn greedy_cover_solve_trimmed(
    td: &TdInstance,
    labels: &[ChannelId],
    oracle: &mut ThroughputOracle,
    target: Ratio,
) -> TdSolution {
    let mut sol = greedy_cover_solve(td);
    trim_weights(&mut sol.weights, labels, oracle, target);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_solve;
    use crate::heuristic::heuristic_solve;

    #[test]
    fn empty_and_trivial() {
        let empty = TdInstance::new(vec![], vec![]);
        assert_eq!(greedy_cover_solve(&empty).total(), 0);
        let single = TdInstance::new(vec![3], vec![vec![0]]);
        assert_eq!(greedy_cover_solve(&single).weights, vec![3]);
    }

    #[test]
    fn prefers_high_coverage_sets() {
        // One set covers three cycles, three singletons cover one each.
        let td = TdInstance::new(
            vec![1, 1, 1],
            vec![vec![0], vec![1], vec![2], vec![0, 1, 2]],
        );
        let sol = greedy_cover_solve(&td);
        assert_eq!(sol.weights, vec![0, 0, 0, 1]);
    }

    #[test]
    fn multi_token_deficits() {
        let td = TdInstance::new(vec![2, 2], vec![vec![0, 1]]);
        let sol = greedy_cover_solve(&td);
        assert_eq!(sol.weights, vec![2]);
    }

    #[test]
    #[should_panic(expected = "no solution")]
    fn uncoverable_instance_panics() {
        let td = TdInstance::new(vec![1], vec![vec![]]);
        let _ = greedy_cover_solve(&td);
    }

    #[test]
    fn greedy_is_feasible_and_bounded_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..30 {
            let n_cycles = rng.gen_range(1..8);
            let n_sets = rng.gen_range(1..6);
            let deficits: Vec<u64> = (0..n_cycles).map(|_| rng.gen_range(0..3)).collect();
            let mut sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| (0..n_cycles).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            for (c, &d) in deficits.iter().enumerate() {
                if d > 0 && !sets.iter().any(|s| s.contains(&c)) {
                    sets[0].push(c);
                }
            }
            let td = TdInstance::new(deficits, sets);
            let greedy = greedy_cover_solve(&td);
            assert!(td.is_feasible(&greedy.weights), "trial {trial}");
            let exact = exact_solve(&td, None);
            assert!(exact.optimal);
            assert!(greedy.total() >= exact.solution.total(), "trial {trial}");
            // Both baselines are feasible; neither dominates the other in
            // general — just record that both stay within the trivial upper
            // bound (the per-set max-deficit initial assignment).
            let heur = heuristic_solve(&td);
            let trivial: u64 = (0..td.set_count())
                .map(|i| td.set(i).iter().map(|&c| td.deficit(c)).max().unwrap_or(0))
                .sum();
            assert!(greedy.total() <= trivial.max(1) * 4, "trial {trial}");
            assert!(heur.total() <= trivial, "trial {trial}");
        }
    }

    #[test]
    fn greedy_vs_heuristic_can_go_either_way() {
        // Greedy wins: a big shared set that trimming destroys when it
        // sweeps the shared set first.
        let shared_first = TdInstance::new(vec![1, 1], vec![vec![0, 1], vec![0], vec![1]]);
        let g = greedy_cover_solve(&shared_first);
        let h = heuristic_solve(&shared_first);
        assert_eq!(g.total(), 1);
        assert_eq!(h.total(), 2);
        // Heuristic wins: deficits where counting covered cycles misleads.
        let big_deficit = TdInstance::new(
            vec![3, 1, 1],
            vec![vec![0], vec![0, 1, 2], vec![1], vec![2]],
        );
        let g2 = greedy_cover_solve(&big_deficit);
        let h2 = heuristic_solve(&big_deficit);
        assert!(td_total_ok(&big_deficit, &g2) && td_total_ok(&big_deficit, &h2));
        // Greedy spends on the wide set first, then still owes cycle 0.
        assert!(g2.total() >= h2.total());
    }

    fn td_total_ok(td: &TdInstance, sol: &TdSolution) -> bool {
        td.is_feasible(&sol.weights)
    }

    #[test]
    fn trimmed_greedy_still_restores_the_target_on_fig15() {
        use crate::deficit::{extract_instance, DEFAULT_CYCLE_LIMIT};
        use lis_core::figures;
        let (sys, _) = figures::fig15();
        let inst = extract_instance(&sys, DEFAULT_CYCLE_LIMIT).unwrap();
        let (td, labels) = TdInstance::from_qs(&inst);
        let mut oracle = ThroughputOracle::new(&sys);
        let plain = greedy_cover_solve(&td);
        let trimmed = greedy_cover_solve_trimmed(&td, &labels, &mut oracle, inst.target);
        assert!(trimmed.total() <= plain.total());
        let extra: Vec<_> = trimmed
            .weights
            .iter()
            .zip(&labels)
            .filter(|&(&w, _)| w > 0)
            .map(|(&w, &c)| (c, w))
            .collect();
        assert_eq!(oracle.practical_mst_with_extra(&extra), inst.target);
    }
}
