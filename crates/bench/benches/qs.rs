//! Queue-sizing solver benchmarks: heuristic vs exact, with and without the
//! simplification rules — the CPU-time story of Tables IV and V — plus the
//! exact solver's search-tree variants (memoization on/off, parallel root
//! branching on/off).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lis_cofdm::table6_scenario;
use lis_gen::{generate, GeneratorConfig};
use lis_qs::{
    exact_solve, exact_solve_with, extract_instance, heuristic_solve, simplify, ExactOptions,
    TdInstance,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn table4_td(vertices: usize, sccs: usize, seed: u64) -> TdInstance {
    let cfg = GeneratorConfig::table4(vertices, sccs);
    let mut rng = StdRng::seed_from_u64(seed);
    let lis = generate(&cfg, &mut rng);
    let collapsed = lis_qs::collapse_sccs(&lis.system).expect("scc policy collapses");
    let inst = extract_instance(&collapsed.system, 1_000_000).expect("bounded cycle count");
    TdInstance::from_qs(&inst).0
}

/// Dense random TD instance — the regime where the disjoint-cycle bound
/// stays loose and the branch-and-bound variants actually differ.
fn dense_td(seed: u64) -> TdInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_cycles = rng.gen_range(6..12);
    let n_sets = rng.gen_range(5..10);
    let deficits: Vec<u64> = (0..n_cycles).map(|_| rng.gen_range(1..4)).collect();
    let mut sets: Vec<Vec<usize>> = (0..n_sets)
        .map(|_| (0..n_cycles).filter(|_| rng.gen_bool(0.4)).collect())
        .collect();
    for (c, &d) in deficits.iter().enumerate() {
        if d > 0 && !sets.iter().any(|s| s.contains(&c)) {
            sets[0].push(c);
        }
    }
    TdInstance::new(deficits, sets)
}

/// Exact-solver search variants on one dense instance: full pruning with
/// the transposition memo (default), memo disabled, and parallel root
/// branching. All three return the same optimum.
fn bench_exact_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("qs_exact_variants");
    group.sample_size(10);
    let td = dense_td(5);
    let budget = Some(Duration::from_secs(5));
    let cases: [(&str, ExactOptions); 3] = [
        (
            "memo",
            ExactOptions {
                budget,
                ..ExactOptions::default()
            },
        ),
        (
            "no_memo",
            ExactOptions {
                budget,
                memo: false,
                ..ExactOptions::default()
            },
        ),
        (
            "parallel_root",
            ExactOptions {
                budget,
                parallel_root: true,
                ..ExactOptions::default()
            },
        ),
    ];
    for (name, opts) in cases {
        group.bench_with_input(BenchmarkId::new(name, "dense"), &td, |b, td| {
            b.iter(|| exact_solve_with(std::hint::black_box(td), &opts))
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("qs");
    group.sample_size(20);

    for (v, s) in [(50usize, 10usize), (100, 10), (100, 20)] {
        let td = table4_td(v, s, 3);
        group.bench_with_input(
            BenchmarkId::new("heuristic", format!("v{v}s{s}")),
            &td,
            |b, td| b.iter(|| heuristic_solve(std::hint::black_box(td))),
        );
        group.bench_with_input(
            BenchmarkId::new("simplify+heuristic", format!("v{v}s{s}")),
            &td,
            |b, td| {
                b.iter(|| {
                    let s = simplify(std::hint::black_box(td));
                    s.expand(&heuristic_solve(&s.instance))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("v{v}s{s}")),
            &td,
            |b, td| b.iter(|| exact_solve(std::hint::black_box(td), Some(Duration::from_secs(5)))),
        );
    }

    // The COFDM Table VI instance end to end (extraction + solve).
    let soc = table6_scenario();
    group.bench_function("cofdm_heuristic_end_to_end", |b| {
        b.iter(|| {
            lis_qs::solve(
                std::hint::black_box(&soc.system),
                lis_qs::Algorithm::Heuristic,
                &lis_qs::QsConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_exact_variants);
criterion_main!(benches);
