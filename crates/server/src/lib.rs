//! Analysis-as-a-service for latency-insensitive systems.
//!
//! Every entry point of the workspace used to be a one-shot CLI that
//! re-parses and re-analyzes from scratch. This crate turns the analysis
//! engine into a long-running daemon:
//!
//! * [`Server`] — an HTTP/1.1 + JSON daemon (hand-rolled on `std::net`;
//!   the workspace builds with zero registry access) that dispatches
//!   `analyze` / `qs` / `insert` / `dot` jobs onto a bounded worker pool
//!   and answers repeat queries from a **content-addressed result cache**
//!   keyed by [`lis_core::canonical_hash`] of the parsed netlist plus the
//!   request kind;
//! * typed robustness: per-request timeouts, overload shedding with a 503
//!   (never an unbounded queue), a parse/analysis/timeout/overload error
//!   taxonomy ([`ServerError`]), and graceful drain on `POST /shutdown`;
//! * observability: `GET /metrics` in Prometheus text format — request
//!   counters by route and status, cache hit/miss, queue depth, and a
//!   request-latency histogram ([`metrics`]);
//! * [`Client`] — the blocking keep-alive client behind `lis client` and
//!   the `loadgen` workload driver — and [`RetryingClient`], the same API
//!   under a seeded [`RetryPolicy`] (jittered exponential backoff on
//!   transport failures and transient statuses, never on 400/422);
//! * chaos hardening ([`fault`]): a deterministic, seeded [`FaultPlan`]
//!   (`LIS_FAULTS` / `lis serve --faults`) injects worker panics, slow
//!   reads, truncated and garbled responses; workers isolate jobs with
//!   `catch_unwind` and respawn on panic, slow-loris peers get a typed
//!   408, and a connection cap answers 429.
//!
//! # Wire protocol
//!
//! Analysis routes take `POST` with a JSON envelope and return JSON:
//!
//! ```text
//! POST /analyze {"netlist": "block A\n..."}
//! POST /qs      {"netlist": "...", "options": {"exact": true}}
//! POST /insert  {"netlist": "...", "options": {"budget": 2}}
//! POST /dot     {"netlist": "...", "options": {"doubled": true}}
//! POST /sweep   {"netlist": "...", "options": {"capacities": [...], "budget": 2}}
//!                             design-space exploration; streams NDJSON rows
//!                             (chunked) ending in a Pareto-front trailer
//! GET  /metrics               Prometheus text exposition
//! GET  /healthz               JSON readiness: role, workers, queue depth,
//!                             cache entries, uptime — the lis-gateway probe
//! GET  /store/index           NDJSON list of cached content addresses
//! POST /store/get             read one cached entry by content address
//! POST /store/put             replicate one finished answer into the cache
//! POST /shutdown              drain in-flight work (flushing pending store
//!                             spills), then exit
//! ```
//!
//! Requests may carry an `X-LIS-Request-Id` header; the server echoes it in
//! the response so one request can be correlated across tiers (client →
//! gateway → shard) in logs and metrics.
//!
//! # Examples
//!
//! An in-process round trip over a real TCP socket:
//!
//! ```
//! use lis_server::{Client, Server, ServerConfig};
//! use lis_server::wire::Json;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr()?;
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let (status, out) = client.analysis("analyze", "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n", Json::Null)?;
//! assert_eq!(status, 200);
//! assert_eq!(out.get("practical_mst").unwrap().get("den").unwrap().as_u64(), Some(3));
//!
//! client.shutdown()?;
//! daemon.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

// `net::sys` is the one module allowed to opt back in (raw epoll/socket
// syscalls); everything else still refuses unsafe at deny level.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod client;
mod error;
pub mod fault;
pub mod http;
mod jobs;
pub mod metrics;
pub mod net;
pub mod pool;
mod server;
pub mod store;
pub mod wire;

pub use cache::{CacheKey, CachedResponse, ResultCache};
pub use client::{Client, RetryPolicy, RetryingClient};
pub use error::ServerError;
pub use fault::{FaultPlan, WriteFault};
pub use jobs::RequestKind;
pub use metrics::{parse_metric, Metrics, NetStats, Route};
pub use pool::{DrainReport, SubmitError, WorkerPool};
pub use server::{FrontTier, Server, ServerConfig};
pub use store::{EntryMeta, ResultStore, Spiller};
pub use wire::{Json, JsonError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<Json>();
        assert_traits::<ServerError>();
        assert_traits::<RequestKind>();
        assert_traits::<Metrics>();
        assert_traits::<ResultCache>();
        assert_traits::<WorkerPool>();
        assert_traits::<ServerConfig>();
        assert_traits::<FaultPlan>();
        assert_traits::<ResultStore>();
        assert_traits::<Spiller>();
        assert_traits::<RetryPolicy>();
        assert_traits::<RetryingClient>();
    }
}
