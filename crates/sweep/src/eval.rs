//! The warm sweep evaluator.
//!
//! One sweep touches many systems that differ only in queue capacities and
//! relay stations. Rebuilding the doubled marked graph and re-running a
//! cold MCM solve per point throws that structure away. Instead the
//! evaluator builds **one** doubled model per station group, warms an
//! [`IncrementalMcm`] on it, and evaluates every capacity point of the
//! group as a token-override query: capacities map one-to-one onto
//! backedge token counts (`tokens(queue_backedge(c)) == capacity(c)`), so
//! a point solve reuses the group's SCC decomposition, Howard policy
//! vectors, and memo cache. Results are **byte-identical** to the cold
//! path ([`lis_core::explain_with`] on a per-point modified system) — the
//! solvers are exact, so warmth changes only wall-clock time.
//!
//! Parallel evaluation splits each group's points into fixed chunks; each
//! chunk runs on a [`IncrementalMcm::fork`] of the group's warm solver via
//! [`lis_par::par_map`], which preserves order. Chunk boundaries are fixed
//! by the plan, not by the thread count, so rows are identical at any
//! `--threads` setting.

use lis_core::{
    canonical_hash, classify, describe_cycle, ideal_mst_with, AnalysisReport, ChannelId, LisModel,
    LisSystem, TopologyClass,
};
use lis_qs::{solve, verify_solution, Algorithm, QsConfig, QsReport};
use lis_sim::{burst_sweep, stall_sweep, CompiledProgram, QueueMode};
use marked_graph::incremental::IncrementalMcm;
use marked_graph::{PlaceId, Ratio};

use crate::plan::{plan, GroupPlan, SweepError, SweepPlan};
use crate::spec::{SweepMode, SweepSpec};

/// Points per evaluation chunk. Each chunk gets one fork of the group's
/// warm solver; the constant is part of the deterministic plan (chunk
/// boundaries never depend on the thread count).
pub const CHUNK: usize = 16;

/// What one grid point computed, by [`SweepMode`].
#[derive(Debug, Clone)]
pub enum PointReport {
    /// Full throughput analysis (the `/analyze` body).
    Analyze(AnalysisReport),
    /// Queue sizing (the `/qs` body).
    Qs(QsReport),
}

/// One Monte-Carlo measurement from the optional stall axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoint {
    /// Stall probability in per-mille.
    pub per_mille: u32,
    /// Mean sustained system rate across trials.
    pub mean_rate: f64,
    /// Worst trial.
    pub min_rate: f64,
    /// Best trial.
    pub max_rate: f64,
}

/// One Monte-Carlo measurement from the optional burst axis.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstPoint {
    /// ON→OFF probability in per-mille.
    pub off_per_mille: u32,
    /// Mean sustained system rate across trials.
    pub mean_rate: f64,
    /// Worst trial.
    pub min_rate: f64,
    /// Best trial.
    pub max_rate: f64,
    /// Highest queue occupancy observed on any channel in any trial — the
    /// empirical number to hold against the schedule-derived caps.
    pub peak_occupancy: u64,
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Global point index (dense, `0..plan.points`).
    pub point: usize,
    /// Station-group index.
    pub group: usize,
    /// Stations added relative to the base system.
    pub inserted: u32,
    /// Per-channel station additions of this point's group.
    pub placements: Vec<(ChannelId, u32)>,
    /// This point's capacity assignment, in axis order.
    pub capacities: Vec<(ChannelId, u64)>,
    /// The fully modified system (stations + capacities applied) — what a
    /// client would have posted to get this row from a single-shot route.
    pub sys: LisSystem,
    /// Total queue capacity of `sys` (a Pareto objective).
    pub total_capacity: u64,
    /// The computed report, or the error string the equivalent single-shot
    /// request would have produced.
    pub outcome: Result<PointReport, String>,
    /// Monte-Carlo measurements (empty without a stall axis).
    pub sim: Vec<SimPoint>,
    /// Bursty-source measurements (empty without a burst axis).
    pub burst: Vec<BurstPoint>,
}

impl SweepRow {
    /// The throughput objective: the practical MST for analyze rows, the
    /// restored target for queue-sizing rows. `None` for error rows.
    pub fn throughput(&self) -> Option<Ratio> {
        match &self.outcome {
            Ok(PointReport::Analyze(r)) => Some(r.practical),
            Ok(PointReport::Qs(r)) => Some(r.target),
            Err(_) => None,
        }
    }

    /// The capacity objective: total queue slots, including any extra
    /// slots a queue-sizing solution spends.
    pub fn capacity_cost(&self) -> u64 {
        match &self.outcome {
            Ok(PointReport::Qs(r)) => self.total_capacity + r.total_extra,
            _ => self.total_capacity,
        }
    }
}

/// Aggregate statistics of one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Rows produced (== plan points).
    pub points: usize,
    /// Station groups evaluated.
    pub groups: usize,
    /// Incremental-solver memo hits across all forks.
    pub warm_hits: u64,
    /// Incremental-solver memo misses across all forks.
    pub warm_misses: u64,
}

/// A planned sweep, ready to evaluate.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: LisSystem,
    spec: SweepSpec,
    plan: SweepPlan,
}

/// Per-group evaluation context: everything capacity-independent is
/// computed once here and shared by every point of the group.
struct GroupCtx<'a> {
    group: &'a GroupPlan,
    sys: LisSystem,
    class: TopologyClass,
    ideal: Ratio,
    /// Doubled model + warm solver; only built in analyze mode.
    warm: Option<(LisModel, IncrementalMcm)>,
}

impl Sweep {
    /// Validates and plans a sweep of `base` according to `spec`.
    ///
    /// # Errors
    ///
    /// See [`SweepError`].
    pub fn new(base: LisSystem, spec: SweepSpec) -> Result<Sweep, SweepError> {
        let plan = plan(&base, &spec)?;
        Ok(Sweep { base, spec, plan })
    }

    /// The expanded job plan.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// The spec this sweep was planned from.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The base system.
    pub fn base(&self) -> &LisSystem {
        &self.base
    }

    /// Total grid points.
    pub fn point_count(&self) -> usize {
        self.plan.points
    }

    /// The sweep's cache identity: the canonical hash of the base netlist
    /// folded with the spec token, so renames and formatting differences
    /// do not split the cache.
    pub fn identity(&self) -> u64 {
        let mut h = canonical_hash(&self.base);
        for b in self.spec.token().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Evaluates the whole grid, delivering rows **in point order** to
    /// `sink` as waves complete. Memory stays bounded by the wave size
    /// (`max_threads × CHUNK` points), so arbitrarily large grids can
    /// stream without buffering the full table.
    pub fn run(&self, sink: &mut dyn FnMut(SweepRow)) -> SweepSummary {
        let mut summary = SweepSummary {
            points: 0,
            groups: self.plan.groups.len(),
            warm_hits: 0,
            warm_misses: 0,
        };
        let per_group = self.plan.points_per_group.max(1);
        for group in &self.plan.groups {
            let ctx = self.group_ctx(group);
            // Fixed chunking; waves of `max_threads` chunks bound memory
            // while keeping every worker busy.
            let chunks: Vec<(usize, usize)> = (0..per_group)
                .step_by(CHUNK)
                .map(|s| (s, (s + CHUNK).min(per_group)))
                .collect();
            let wave = lis_par::max_threads().max(1);
            for wave_chunks in chunks.chunks(wave) {
                let results = lis_par::par_map(wave_chunks, |&(start, end)| {
                    self.eval_chunk(&ctx, start, end)
                });
                for (rows, hits, misses) in results {
                    summary.warm_hits += hits;
                    summary.warm_misses += misses;
                    for row in rows {
                        summary.points += 1;
                        sink(row);
                    }
                }
            }
        }
        summary
    }

    /// [`Sweep::run`] collecting every row into a table.
    pub fn evaluate(&self) -> (Vec<SweepRow>, SweepSummary) {
        let mut rows = Vec::with_capacity(self.plan.points);
        let summary = self.run(&mut |row| rows.push(row));
        (rows, summary)
    }

    fn group_ctx<'a>(&self, group: &'a GroupPlan) -> GroupCtx<'a> {
        let mut sys = self.base.clone();
        for &(c, n) in &group.placements {
            for _ in 0..n {
                sys.add_relay_station(c);
            }
        }
        // Topology class and ideal MST ignore queue capacities, so they
        // are constants of the group, not of the point.
        let class = classify(&sys);
        let ideal = ideal_mst_with(&sys, self.spec.engine);
        let warm = match self.spec.mode {
            SweepMode::Analyze => {
                let model = LisModel::doubled(&sys);
                let inc = IncrementalMcm::with_engine(model.graph(), self.spec.engine);
                Some((model, inc))
            }
            SweepMode::Qs { .. } => None,
        };
        GroupCtx {
            group,
            sys,
            class,
            ideal,
            warm,
        }
    }

    fn eval_chunk(
        &self,
        ctx: &GroupCtx<'_>,
        start: usize,
        end: usize,
    ) -> (Vec<SweepRow>, u64, u64) {
        let mut fork = ctx.warm.as_ref().map(|(model, inc)| (model, inc.fork()));
        let mut rows = Vec::with_capacity(end - start);
        for local in start..end {
            let caps = self.plan.capacities_at(local);
            let mut sys = ctx.sys.clone();
            for &(c, q) in &caps {
                sys.set_queue_capacity(c, q)
                    .expect("capacities are validated at plan time");
            }
            let outcome = match self.spec.mode {
                SweepMode::Analyze => {
                    let (model, inc) = fork.as_mut().expect("analyze mode builds a warm solver");
                    Ok(PointReport::Analyze(warm_analyze(
                        ctx, model, inc, &caps, &self.spec,
                    )))
                }
                SweepMode::Qs { exact } => qs_point(&sys, exact, &self.spec).map(PointReport::Qs),
            };
            let point = ctx.group.first_point + local;
            let sim = self.sim_axis(&sys, point);
            let burst = self.burst_axis(&sys, point);
            rows.push(SweepRow {
                point,
                group: ctx.group.group,
                inserted: ctx.group.inserted,
                placements: ctx.group.placements.clone(),
                capacities: caps,
                total_capacity: sys.total_queue_capacity(),
                sys,
                outcome,
                sim,
                burst,
            });
        }
        let (hits, misses) = fork.as_ref().map_or((0, 0), |(_, inc)| {
            let stats = inc.cache_stats();
            (stats.hits, stats.misses)
        });
        (rows, hits, misses)
    }

    fn sim_axis(&self, sys: &LisSystem, point: usize) -> Vec<SimPoint> {
        let Some(stalls) = &self.spec.stalls else {
            return Vec::new();
        };
        let prog = CompiledProgram::compile(sys, QueueMode::Finite);
        let probs: Vec<f64> = stalls
            .per_mille
            .iter()
            .map(|&m| f64::from(m) / 1000.0)
            .collect();
        // Each point gets its own seed stream so rows are independent and
        // reproducible regardless of evaluation order.
        let seed = stalls
            .seed
            .wrapping_add((point as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let reports = stall_sweep(&prog, &probs, stalls.trials as usize, stalls.cycles, seed);
        stalls
            .per_mille
            .iter()
            .zip(&reports)
            .map(|(&per_mille, r)| SimPoint {
                per_mille,
                mean_rate: r.mean_system_rate(),
                min_rate: r.min_system_rate(),
                max_rate: r.max_system_rate(),
            })
            .collect()
    }

    fn burst_axis(&self, sys: &LisSystem, point: usize) -> Vec<BurstPoint> {
        let Some(bursts) = &self.spec.bursts else {
            return Vec::new();
        };
        let prog = CompiledProgram::compile(sys, QueueMode::Finite);
        let offs: Vec<f64> = bursts
            .off_per_mille
            .iter()
            .map(|&m| f64::from(m) / 1000.0)
            .collect();
        let p_on = f64::from(bursts.on_per_mille) / 1000.0;
        // Same per-point stream derivation as the stall axis, with a
        // different multiplier so a shared base seed still yields
        // independent stall and burst streams.
        let seed = bursts
            .seed
            .wrapping_add((point as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let reports = burst_sweep(
            &prog,
            &offs,
            p_on,
            bursts.trials as usize,
            bursts.cycles,
            seed,
        );
        bursts
            .off_per_mille
            .iter()
            .zip(&reports)
            .map(|(&off_per_mille, (r, occupancy))| BurstPoint {
                off_per_mille,
                mean_rate: r.mean_system_rate(),
                min_rate: r.min_system_rate(),
                max_rate: r.max_system_rate(),
                peak_occupancy: occupancy.iter().copied().max().unwrap_or(0),
            })
            .collect()
    }
}

/// Replicates [`lis_core::explain_with`] on the point system *without*
/// building it: the point differs from the group base only in queue
/// capacities, and each capacity is exactly the token count of that
/// channel's queue backedge in the doubled graph. Every branch below
/// mirrors a branch of `explain_with`, so the report is byte-identical.
fn warm_analyze(
    ctx: &GroupCtx<'_>,
    model: &LisModel,
    inc: &mut IncrementalMcm,
    caps: &[(ChannelId, u64)],
    spec: &SweepSpec,
) -> AnalysisReport {
    let overrides: Vec<(PlaceId, u64)> = caps
        .iter()
        .map(|&(c, q)| {
            let p = model
                .queue_backedge(c)
                .expect("every channel has a queue backedge in the doubled model");
            (p, q)
        })
        .collect();

    // `mst_with_critical_cycle_with(graph).unwrap_or((ONE, None))`:
    // Empty and Acyclic both collapse to (1, no cycle); otherwise the
    // incremental solver's lowest-component tie-break matches the serial
    // solver bit for bit. The combined query also yields the bottleneck
    // places off the same Bellman–Ford pass, so a degraded point pays for
    // one potentials computation instead of two.
    let (practical_raw, cycle, bottlenecks) = match inc.analysis_with_tokens(&overrides) {
        Ok(a) => (
            a.mean.min(Ratio::ONE),
            Some(a.critical_cycle),
            a.bottlenecks,
        ),
        Err(_) => (Ratio::ONE, None, Vec::new()),
    };
    let practical = practical_raw.min(ctx.ideal);
    let degraded = practical < ctx.ideal;

    let bottleneck_queues = if degraded {
        bottleneck_channels(model, bottlenecks)
    } else {
        Vec::new()
    };

    let critical_cycle = if degraded {
        cycle.map(|c| describe_cycle(model, &c))
    } else {
        None
    };

    AnalysisReport {
        class: ctx.class,
        ideal: ctx.ideal,
        practical,
        critical_cycle,
        bottleneck_queues,
        engine: spec.engine,
    }
}

/// Replicates `bottleneck_places(graph) → channel_of_queue_backedge →
/// sort → dedup` from `explain_with`, given the bottleneck places the
/// combined warm query already computed. The places come from the same
/// structural computation the cold path runs, on the same weighted
/// snapshot, so the channel list is identical to the cold report.
fn bottleneck_channels(model: &LisModel, places: Vec<PlaceId>) -> Vec<ChannelId> {
    let mut chs: Vec<ChannelId> = places
        .into_iter()
        .filter_map(|p| model.channel_of_queue_backedge(p))
        .collect();
    chs.sort();
    chs.dedup();
    chs
}

/// Replicates the server's `/qs` job on one point system, including its
/// exact error strings, so error rows match single-shot responses.
fn qs_point(sys: &LisSystem, exact: bool, spec: &SweepSpec) -> Result<QsReport, String> {
    let algo = if exact {
        Algorithm::Exact
    } else {
        Algorithm::Heuristic
    };
    let cfg = QsConfig {
        engine: spec.engine,
        ..QsConfig::default()
    };
    let report = solve(sys, algo, &cfg).map_err(|e| e.to_string())?;
    if !verify_solution(sys, &report) {
        return Err("queue-sizing solution failed verification".into());
    }
    Ok(report)
}
