//! `lis` — analyze and optimize latency-insensitive systems from the
//! command line.
//!
//! ```text
//! lis analyze  <netlist>              throughput analysis + topology class
//! lis qs       <netlist> [--exact] [--apply OUT]
//!                                     queue sizing (heuristic by default)
//! lis insert   <netlist> [--budget N] [--apply OUT]
//!                                     relay-station insertion search
//! lis simulate <netlist> [--steps N]  cycle-accurate simulation
//! lis dot      <netlist> [--doubled]  Graphviz export
//! lis serve    <addr>                 analysis-as-a-service daemon
//! lis client   <addr> <cmd> <netlist> one request against a daemon
//! ```
//!
//! A global `--threads N` flag caps the analysis thread pool; `lis serve`
//! uses it as the worker-pool size.
//!
//! Netlists use the `lis-core` text format (see `lis_core::parse_netlist`):
//!
//! ```text
//! block A
//! block B
//! channel A -> B rs=1
//! channel A -> B
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
