//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Offline builds cannot fetch the real proptest crate, so this shim
//! reimplements the surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * strategies for integer ranges, tuples, [`Just`], boolean
//!   ([`bool::ANY`]), vectors ([`collection::vec`]) and a practical subset
//!   of regex string patterns (character classes with ranges and escapes,
//!   plus `{m,n}` repetition);
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros and [`ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed sequence (fully deterministic in CI; set `PROPTEST_CASES` to change
//! the case count), and failing inputs are reported but not *shrunk*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy into a trait object (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Rng, StdRng, Strategy};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Element-count specification for [`vec`]: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly between `.0` (inclusive) and `.1` (exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange::Exact(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length follows `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    rng.gen_range(lo..hi)
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod pattern;

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        pattern::Pattern::parse(self).generate(rng)
    }
}

/// Runs `property` for every case of `config`; panics on the first failure
/// with the case index and seed (no shrinking).
///
/// The `PROPTEST_CASES` environment variable overrides the configured case
/// count.
///
/// This is an implementation detail of the [`proptest!`] macro.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    // Per-test base seed: fixed, but decorrelated across test names.
    let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for case in 0..cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!("property `{name}` failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case is reported (with an optional formatted message) and the test
/// panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::StdRng::seed_from_u64(1);
        use super::SeedableRng;
        let strat = (0usize..5, 10u64..20, -3i64..3);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!(a < 5 && (10..20).contains(&b) && (-3..3).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        use super::SeedableRng;
        let mut rng = super::StdRng::seed_from_u64(2);
        let exact = super::collection::vec(0u32..3, 7usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 7);
        let ranged = super::collection::vec(0u32..3, 1..4);
        for _ in 0..50 {
            let v = Strategy::generate(&ranged, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        use super::SeedableRng;
        let mut rng = super::StdRng::seed_from_u64(3);
        let strat = (2usize..6).prop_flat_map(|n| (Just(n), super::collection::vec(0usize..n, n)));
        for _ in 0..50 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline end-to-end: args, asserts, oneof, strings.
        #[test]
        fn macro_generates_working_tests(x in 0u32..10, name in "[a-z]{1,4}") {
            prop_assert!(x < 10);
            prop_assert!(!name.is_empty() && name.len() <= 4);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()), "got {name:?}");
        }

        #[test]
        fn oneof_picks_among_alternatives(s in prop_oneof!["[0-9]{3}", "[A-Z]{5}"]) {
            prop_assert!(s.len() == 3 || s.len() == 5);
            prop_assert_eq!(s.len() == 3, s.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
