//! Server observability: counters, gauges, and latency histograms rendered
//! in the Prometheus text exposition format.
//!
//! The `/metrics` endpoint exists so the daemon can be measured with the
//! classic bottleneck/Little's-law toolkit: request rate and latency
//! histogram give the arrival and service processes, queue depth the
//! population, and the cache hit ratio the effective service demand. All
//! cells are lock-free atomics, so the hot path pays a handful of relaxed
//! increments per request.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// The request routes tracked per-counter. `Other` aggregates 404s and
/// anything unrecognized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /analyze`.
    Analyze,
    /// `POST /qs`.
    Qs,
    /// `POST /insert`.
    Insert,
    /// `POST /dot`.
    Dot,
    /// `POST /sweep`.
    Sweep,
    /// `POST /batch`.
    Batch,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `POST /shutdown`.
    Shutdown,
    /// The `/store/*` peer routes (index, get, put).
    Store,
    /// Anything else.
    Other,
}

impl Route {
    const ALL: [Route; 11] = [
        Route::Analyze,
        Route::Qs,
        Route::Insert,
        Route::Dot,
        Route::Sweep,
        Route::Batch,
        Route::Metrics,
        Route::Healthz,
        Route::Shutdown,
        Route::Store,
        Route::Other,
    ];

    fn label(self) -> &'static str {
        match self {
            Route::Analyze => "analyze",
            Route::Qs => "qs",
            Route::Insert => "insert",
            Route::Dot => "dot",
            Route::Sweep => "sweep",
            Route::Batch => "batch",
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::Shutdown => "shutdown",
            Route::Store => "store",
            Route::Other => "other",
        }
    }
}

/// The status classes tracked per-counter.
const STATUSES: [u16; 12] = [200, 400, 404, 405, 408, 413, 422, 429, 500, 502, 503, 504];

fn status_slot(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or_else(|| {
            // Unknown codes count as 500.
            STATUSES
                .iter()
                .position(|&s| s == 500)
                .expect("500 tracked")
        })
}

/// Upper bounds (seconds) of the latency histogram buckets; an implicit
/// `+Inf` bucket follows.
pub const LATENCY_BUCKETS: [f64; 14] = [
    0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0,
];

/// A cumulative latency histogram with fixed buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let slot = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders the full `# TYPE` + bucket/sum/count block for `name`. Public
    /// so other exporters (the gateway) can reuse the histogram wholesale.
    pub fn render(&self, out: &mut String, name: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_series(out, name, "");
    }

    /// Renders the bucket/sum/count series with `labels` (e.g.
    /// `engine="howard",`) prepended to each label set. No `# TYPE` line, so
    /// several labeled series can share one metric name.
    pub fn render_series(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {cumulative}");
        if labels.is_empty() {
            let _ = writeln!(
                out,
                "{name}_sum {}",
                self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
            );
            let _ = writeln!(out, "{name}_count {}", self.count.load(Ordering::Relaxed));
        } else {
            let labels = labels.trim_end_matches(',');
            let _ = writeln!(
                out,
                "{name}_sum{{{labels}}} {}",
                self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "{name}_count{{{labels}}} {}",
                self.count.load(Ordering::Relaxed)
            );
        }
    }
}

/// Upper bounds of the pipeline-depth histogram buckets (requests in
/// flight on one connection when a new one is parsed); `+Inf` follows.
pub const DEPTH_BUCKETS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Counters the readiness event loop maintains. Shared as an `Arc`
/// between the loop, the metrics registry, and migrated connections.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections currently open on the front tier (accept to close,
    /// migrated `/sweep` connections included).
    pub connections_open: AtomicI64,
    /// Poller wakeups (one per `epoll_wait`/`poll` return).
    pub wakeups: AtomicU64,
    depth_buckets: [AtomicU64; DEPTH_BUCKETS.len() + 1],
    depth_sum: AtomicU64,
    depth_count: AtomicU64,
}

impl NetStats {
    /// Creates a zeroed stats block.
    pub fn new() -> NetStats {
        NetStats::default()
    }

    /// Records the pipeline depth one dispatched request observed
    /// (unanswered requests on its connection, itself included — 1 means
    /// plain request/response alternation).
    pub fn observe_depth(&self, depth: usize) {
        let slot = DEPTH_BUCKETS
            .iter()
            .position(|&le| depth <= le)
            .unwrap_or(DEPTH_BUCKETS.len());
        self.depth_buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
        self.depth_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests whose pipeline depth was recorded.
    pub fn depth_count(&self) -> u64 {
        self.depth_count.load(Ordering::Relaxed)
    }

    /// Appends the `lis_net_*` exposition block.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE lis_net_connections_open gauge");
        let _ = writeln!(
            out,
            "lis_net_connections_open {}",
            self.connections_open.load(Ordering::Relaxed).max(0)
        );
        let _ = writeln!(out, "# TYPE lis_net_readiness_wakeups_total counter");
        let _ = writeln!(
            out,
            "lis_net_readiness_wakeups_total {}",
            self.wakeups.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_net_pipeline_depth histogram");
        let mut cumulative = 0u64;
        for (i, le) in DEPTH_BUCKETS.iter().enumerate() {
            cumulative += self.depth_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "lis_net_pipeline_depth_bucket{{le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += self.depth_buckets[DEPTH_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "lis_net_pipeline_depth_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "lis_net_pipeline_depth_sum {}",
            self.depth_sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "lis_net_pipeline_depth_count {}",
            self.depth_count.load(Ordering::Relaxed)
        );
    }
}

/// The MCM engine labels tracked by the per-engine latency histograms,
/// matching [`marked_graph::McmEngine::as_str`].
pub const ENGINE_LABELS: [&str; 3] = ["howard", "karp", "lawler"];

/// All metrics the daemon exports. One instance is shared by every
/// connection handler and worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `requests[route][status]`.
    requests: [[AtomicU64; STATUSES.len()]; Route::ALL.len()],
    /// Cache lookups that were answered without running analysis.
    pub cache_hits: AtomicU64,
    /// Cache lookups that had to run analysis.
    pub cache_misses: AtomicU64,
    /// Jobs currently waiting in the worker-pool queue.
    pub queue_depth: AtomicI64,
    /// Jobs rejected because the queue was full (overload shedding).
    pub shed_total: AtomicU64,
    /// Requests that hit the per-request timeout.
    pub timeouts_total: AtomicU64,
    /// Worker jobs that panicked (mirrored from the pool on scrape).
    pub worker_panics: AtomicU64,
    /// Replacement workers spawned after panics (mirrored from the pool).
    pub worker_respawns: AtomicU64,
    /// Faults injected by the active [`crate::fault::FaultPlan`], if any.
    pub faults_injected: AtomicU64,
    /// Connections rejected at the concurrent-connection cap.
    pub connections_rejected: AtomicU64,
    /// Responses spilled to the durable store (mirrored on scrape).
    pub store_spills: AtomicU64,
    /// Lookups served from the durable store after a RAM miss (mirrored).
    pub store_disk_hits: AtomicU64,
    /// Entries warm-loaded into the RAM cache at startup (mirrored).
    pub store_warm_loaded: AtomicU64,
    /// Store entries quarantined after failing validation (mirrored).
    pub store_quarantined: AtomicU64,
    /// Store entries evicted by the bounded-size GC (mirrored).
    pub store_gc_evictions: AtomicU64,
    /// Live entries in the durable store (gauge, mirrored).
    pub store_entries: AtomicU64,
    /// Total body bytes in the durable store (gauge, mirrored).
    pub store_bytes: AtomicU64,
    /// `/analyze` executions that computed a periodic firing schedule
    /// (cache misses only — replays don't recompute).
    pub schedule_requests: AtomicU64,
    /// `/analyze` executions that ran the bursty-source experiment
    /// (cache misses only).
    pub schedule_burst_requests: AtomicU64,
    /// Sweep jobs started (cache hits included — each `/sweep` answered).
    pub sweep_jobs: AtomicU64,
    /// Sweep result rows streamed to clients (cache replays included).
    pub sweep_rows: AtomicU64,
    /// End-to-end latency of whole sweep jobs (first byte to trailer).
    pub sweep_latency: Histogram,
    /// End-to-end request latency (receipt to response write).
    pub latency: Histogram,
    /// Analysis-execution latency per MCM engine (cache misses on the
    /// throughput routes only), indexed like [`ENGINE_LABELS`].
    pub engine_latency: [Histogram; ENGINE_LABELS.len()],
    /// Front-tier connection/readiness counters, shared with the event
    /// loop via `Arc` so the loop thread needs no registry reference.
    pub net: std::sync::Arc<NetStats>,
}

impl Metrics {
    /// Creates a zeroed metrics registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counts one finished request.
    pub fn record_request(&self, route: Route, status: u16, elapsed: Duration) {
        let r = Route::ALL.iter().position(|&x| x == route).expect("route");
        self.requests[r][status_slot(status)].fetch_add(1, Ordering::Relaxed);
        self.latency.observe(elapsed);
    }

    /// Records the analysis-execution time of one request answered by the
    /// MCM engine `label`. Unknown labels are ignored.
    pub fn record_engine(&self, label: &str, elapsed: Duration) {
        if let Some(slot) = ENGINE_LABELS.iter().position(|&l| l == label) {
            self.engine_latency[slot].observe(elapsed);
        }
    }

    /// Counts one executed `/analyze` job's schedule/burst options, so the
    /// new subsystem's load is visible separately from plain analyses.
    pub fn record_schedule(&self, schedule: bool, burst: bool) {
        if schedule {
            self.schedule_requests.fetch_add(1, Ordering::Relaxed);
        }
        if burst {
            self.schedule_burst_requests.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded for one engine label (test observability).
    pub fn engine_count(&self, label: &str) -> u64 {
        ENGINE_LABELS
            .iter()
            .position(|&l| l == label)
            .map_or(0, |slot| self.engine_latency[slot].count())
    }

    /// Total requests across all routes and statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Requests counted for one route/status cell (test observability).
    pub fn requests_for(&self, route: Route, status: u16) -> u64 {
        let r = Route::ALL.iter().position(|&x| x == route).expect("route");
        self.requests[r][status_slot(status)].load(Ordering::Relaxed)
    }

    /// Renders everything in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE lis_requests_total counter");
        for (r, route) in Route::ALL.iter().enumerate() {
            for (s, status) in STATUSES.iter().enumerate() {
                let n = self.requests[r][s].load(Ordering::Relaxed);
                if n > 0 {
                    let _ = writeln!(
                        out,
                        "lis_requests_total{{route=\"{}\",status=\"{status}\"}} {n}",
                        route.label()
                    );
                }
            }
        }
        let _ = writeln!(out, "# TYPE lis_cache_hits_total counter");
        let _ = writeln!(
            out,
            "lis_cache_hits_total {}",
            self.cache_hits.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_cache_misses_total counter");
        let _ = writeln!(
            out,
            "lis_cache_misses_total {}",
            self.cache_misses.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_queue_depth gauge");
        let _ = writeln!(
            out,
            "lis_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        );
        let _ = writeln!(out, "# TYPE lis_shed_total counter");
        let _ = writeln!(
            out,
            "lis_shed_total {}",
            self.shed_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_timeouts_total counter");
        let _ = writeln!(
            out,
            "lis_timeouts_total {}",
            self.timeouts_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_worker_panics_total counter");
        let _ = writeln!(
            out,
            "lis_worker_panics_total {}",
            self.worker_panics.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_worker_respawns_total counter");
        let _ = writeln!(
            out,
            "lis_worker_respawns_total {}",
            self.worker_respawns.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_faults_injected_total counter");
        let _ = writeln!(
            out,
            "lis_faults_injected_total {}",
            self.faults_injected.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_connections_rejected_total counter");
        let _ = writeln!(
            out,
            "lis_connections_rejected_total {}",
            self.connections_rejected.load(Ordering::Relaxed)
        );
        for (name, kind, cell) in [
            ("lis_store_spills_total", "counter", &self.store_spills),
            (
                "lis_store_disk_hits_total",
                "counter",
                &self.store_disk_hits,
            ),
            (
                "lis_store_warm_loaded_total",
                "counter",
                &self.store_warm_loaded,
            ),
            (
                "lis_store_quarantined_total",
                "counter",
                &self.store_quarantined,
            ),
            (
                "lis_store_gc_evictions_total",
                "counter",
                &self.store_gc_evictions,
            ),
            ("lis_store_entries", "gauge", &self.store_entries),
            ("lis_store_bytes", "gauge", &self.store_bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
        }
        let _ = writeln!(out, "# TYPE lis_schedule_requests_total counter");
        let _ = writeln!(
            out,
            "lis_schedule_requests_total {}",
            self.schedule_requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_schedule_burst_requests_total counter");
        let _ = writeln!(
            out,
            "lis_schedule_burst_requests_total {}",
            self.schedule_burst_requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_sweep_jobs_total counter");
        let _ = writeln!(
            out,
            "lis_sweep_jobs_total {}",
            self.sweep_jobs.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE lis_sweep_rows_total counter");
        let _ = writeln!(
            out,
            "lis_sweep_rows_total {}",
            self.sweep_rows.load(Ordering::Relaxed)
        );
        if self.sweep_latency.count() > 0 {
            self.sweep_latency.render(&mut out, "lis_sweep_seconds");
        }
        self.net.render_into(&mut out);
        self.latency.render(&mut out, "lis_request_seconds");
        if self.engine_latency.iter().any(|h| h.count() > 0) {
            let _ = writeln!(out, "# TYPE lis_engine_request_seconds histogram");
            for (slot, label) in ENGINE_LABELS.iter().enumerate() {
                let h = &self.engine_latency[slot];
                if h.count() > 0 {
                    h.render_series(
                        &mut out,
                        "lis_engine_request_seconds",
                        &format!("engine=\"{label}\","),
                    );
                }
            }
        }
        out
    }
}

/// Reads one sample back out of a Prometheus text exposition (exact
/// metric-name match, first occurrence). Used by `loadgen` and the
/// end-to-end tests to assert on `/metrics` output.
pub fn parse_metric(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?; // exact name: no labels, no prefix match
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_right_cells() {
        let m = Metrics::new();
        m.record_request(Route::Analyze, 200, Duration::from_micros(80));
        m.record_request(Route::Analyze, 200, Duration::from_micros(80));
        m.record_request(Route::Qs, 400, Duration::from_millis(2));
        m.record_request(Route::Other, 404, Duration::from_micros(1));
        assert_eq!(m.requests_for(Route::Analyze, 200), 2);
        assert_eq!(m.requests_for(Route::Qs, 400), 1);
        assert_eq!(m.requests_total(), 4);
        assert_eq!(m.latency.count(), 4);
    }

    #[test]
    fn unknown_status_codes_count_as_500() {
        let m = Metrics::new();
        m.record_request(Route::Dot, 299, Duration::ZERO);
        assert_eq!(m.requests_for(Route::Dot, 500), 1);
    }

    #[test]
    fn chaos_statuses_have_their_own_cells() {
        let m = Metrics::new();
        m.record_request(Route::Analyze, 408, Duration::ZERO);
        m.record_request(Route::Other, 429, Duration::ZERO);
        assert_eq!(m.requests_for(Route::Analyze, 408), 1);
        assert_eq!(m.requests_for(Route::Other, 429), 1);
        // Neither leaked into the 500 fallback cell.
        assert_eq!(m.requests_for(Route::Analyze, 500), 0);
        assert_eq!(m.requests_for(Route::Other, 500), 0);
    }

    #[test]
    fn robustness_counters_render() {
        let m = Metrics::new();
        m.worker_panics.store(3, Ordering::Relaxed);
        m.worker_respawns.store(3, Ordering::Relaxed);
        m.faults_injected.store(7, Ordering::Relaxed);
        m.connections_rejected.store(2, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_worker_panics_total"), Some(3.0));
        assert_eq!(parse_metric(&text, "lis_worker_respawns_total"), Some(3.0));
        assert_eq!(parse_metric(&text, "lis_faults_injected_total"), Some(7.0));
        assert_eq!(
            parse_metric(&text, "lis_connections_rejected_total"),
            Some(2.0)
        );
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let m = Metrics::new();
        m.record_request(Route::Analyze, 200, Duration::from_micros(300));
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.queue_depth.store(2, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("lis_requests_total{route=\"analyze\",status=\"200\"} 1"));
        assert!(text.contains("lis_cache_hits_total 3"));
        assert!(text.contains("lis_cache_misses_total 1"));
        assert!(text.contains("lis_queue_depth 2"));
        assert!(text.contains("lis_request_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lis_request_seconds_count 1"));
        // Every exposition line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn store_counters_render() {
        let m = Metrics::new();
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_store_spills_total"), Some(0.0));
        m.store_spills.store(5, Ordering::Relaxed);
        m.store_disk_hits.store(4, Ordering::Relaxed);
        m.store_quarantined.store(1, Ordering::Relaxed);
        m.store_entries.store(5, Ordering::Relaxed);
        m.store_bytes.store(640, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_store_spills_total"), Some(5.0));
        assert_eq!(parse_metric(&text, "lis_store_disk_hits_total"), Some(4.0));
        assert_eq!(
            parse_metric(&text, "lis_store_quarantined_total"),
            Some(1.0)
        );
        assert_eq!(parse_metric(&text, "lis_store_entries"), Some(5.0));
        assert_eq!(parse_metric(&text, "lis_store_bytes"), Some(640.0));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn parse_metric_reads_render_back() {
        let m = Metrics::new();
        m.cache_hits.fetch_add(41, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_cache_hits_total"), Some(41.0));
        assert_eq!(parse_metric(&text, "lis_cache_misses_total"), Some(0.0));
        // Exact-name match: a prefix must not pick up the labeled series.
        assert_eq!(parse_metric(&text, "lis_cache_hits"), None);
        assert_eq!(parse_metric(&text, "nope"), None);
    }

    #[test]
    fn engine_latency_renders_labeled_series() {
        let m = Metrics::new();
        // Nothing recorded: the engine histogram family is omitted entirely.
        assert!(!m.render().contains("lis_engine_request_seconds"));
        m.record_engine("howard", Duration::from_micros(40));
        m.record_engine("howard", Duration::from_micros(60));
        m.record_engine("karp", Duration::from_millis(3));
        m.record_engine("unknown", Duration::from_secs(1)); // ignored
        assert_eq!(m.engine_count("howard"), 2);
        assert_eq!(m.engine_count("karp"), 1);
        assert_eq!(m.engine_count("lawler"), 0);
        assert_eq!(m.engine_count("unknown"), 0);
        let text = m.render();
        assert!(text.contains("# TYPE lis_engine_request_seconds histogram"));
        assert!(text.contains("lis_engine_request_seconds_count{engine=\"howard\"} 2"));
        assert!(text.contains("lis_engine_request_seconds_count{engine=\"karp\"} 1"));
        assert!(text.contains("lis_engine_request_seconds_bucket{engine=\"howard\",le=\"+Inf\"} 2"));
        // The unlabeled lis_request_seconds series must stay parseable.
        assert!(!text.contains("lis_engine_request_seconds_count{engine=\"lawler\"}"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn sweep_counters_render() {
        let m = Metrics::new();
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_sweep_jobs_total"), Some(0.0));
        assert_eq!(parse_metric(&text, "lis_sweep_rows_total"), Some(0.0));
        // An idle server omits the sweep latency histogram entirely.
        assert!(!text.contains("lis_sweep_seconds"));
        m.sweep_jobs.fetch_add(2, Ordering::Relaxed);
        m.sweep_rows.fetch_add(128, Ordering::Relaxed);
        m.sweep_latency.observe(Duration::from_millis(12));
        m.record_request(Route::Sweep, 200, Duration::from_millis(12));
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_sweep_jobs_total"), Some(2.0));
        assert_eq!(parse_metric(&text, "lis_sweep_rows_total"), Some(128.0));
        assert!(text.contains("lis_sweep_seconds_count 1"));
        assert!(text.contains("lis_requests_total{route=\"sweep\",status=\"200\"} 1"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn schedule_counters_render() {
        let m = Metrics::new();
        let text = m.render();
        assert_eq!(
            parse_metric(&text, "lis_schedule_requests_total"),
            Some(0.0)
        );
        assert_eq!(
            parse_metric(&text, "lis_schedule_burst_requests_total"),
            Some(0.0)
        );
        m.record_schedule(true, false);
        m.record_schedule(true, true);
        m.record_schedule(false, false);
        let text = m.render();
        assert_eq!(
            parse_metric(&text, "lis_schedule_requests_total"),
            Some(2.0)
        );
        assert_eq!(
            parse_metric(&text, "lis_schedule_burst_requests_total"),
            Some(1.0)
        );
    }

    #[test]
    fn net_stats_render_gauge_counter_and_depth_histogram() {
        let m = Metrics::new();
        m.net.connections_open.store(7, Ordering::Relaxed);
        m.net.wakeups.store(100, Ordering::Relaxed);
        m.net.observe_depth(1);
        m.net.observe_depth(3);
        m.net.observe_depth(500); // beyond the last bucket → +Inf only
        let text = m.render();
        assert_eq!(parse_metric(&text, "lis_net_connections_open"), Some(7.0));
        assert_eq!(
            parse_metric(&text, "lis_net_readiness_wakeups_total"),
            Some(100.0)
        );
        assert!(text.contains("lis_net_pipeline_depth_bucket{le=\"1\"} 1"));
        assert!(text.contains("lis_net_pipeline_depth_bucket{le=\"4\"} 2"));
        assert!(text.contains("lis_net_pipeline_depth_bucket{le=\"+Inf\"} 3"));
        assert_eq!(
            parse_metric(&text, "lis_net_pipeline_depth_count"),
            Some(3.0)
        );
        assert_eq!(
            parse_metric(&text, "lis_net_pipeline_depth_sum"),
            Some(504.0)
        );
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_nanos(10)); // first bucket
        h.observe(Duration::from_secs(5)); // +Inf bucket
        let mut out = String::new();
        h.render(&mut out, "x");
        assert!(out.contains("x_bucket{le=\"0.00005\"} 1"));
        assert!(out.contains("x_bucket{le=\"1\"} 1"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("x_count 2"));
    }
}
