//! Per-connection HTTP state machines for the readiness front tier.
//!
//! The event loop cannot block in the strict parsers of [`crate::http`],
//! so each connection accumulates bytes in a growable buffer and a cheap
//! incremental scanner ([`request_progress`]) decides when one *complete*
//! request is buffered. The complete slice is then handed to the very same
//! [`crate::http::read_request`] the threaded tier uses — every protocol
//! decision (limits, smuggling rejections, error wording) is made by one
//! parser, which is what keeps the two tiers byte-identical.
//!
//! The client side gets the mirror image: [`ResponseProgress`] detects a
//! complete response (Content-Length or chunked framing) in a growing
//! buffer, and the complete slice replays through
//! [`crate::http::read_response`]. The gateway's multiplexed probes and
//! hedge races and the loadgen open-loop driver are built on it.

use std::io::{self, Cursor, Read};

use crate::http::{read_request, read_response, Request, Response, MAX_HEAD_BYTES};

/// What the incremental request scanner concluded about a buffer.
#[derive(Debug)]
pub enum RequestProgress {
    /// No complete request yet; keep reading.
    Partial,
    /// The buffer holds nothing but (ignorable) leading blank lines.
    Empty,
    /// One complete request occupying `consumed` buffer bytes.
    Complete {
        /// The parsed request.
        request: Box<Request>,
        /// Bytes of the buffer it consumed (head + body).
        consumed: usize,
    },
    /// The buffer can never become a valid request.
    Violation(io::Error),
}

/// Scans `buf` for one complete HTTP request.
///
/// The scanner only decides *completeness*; parsing and every protocol
/// check run through [`read_request`] on the complete prefix, so error
/// taxonomy and wording are identical to the threaded tier. A head that
/// exceeds [`MAX_HEAD_BYTES`] without terminating is handed to the parser
/// early, which reports the same "request head too large" violation the
/// blocking reader produces.
pub fn request_progress(buf: &[u8]) -> RequestProgress {
    // Leading blank lines are tolerated (`read_head` skips them) but they
    // still count toward the head budget there, so a blank flood larger
    // than the budget must reach the parser and fail exactly like the
    // threaded tier — not sit in the buffer forever.
    let mut start = 0usize;
    while start < buf.len() && matches!(buf[start], b'\r' | b'\n') {
        start += 1;
    }
    if start == buf.len() && buf.len() <= MAX_HEAD_BYTES {
        return RequestProgress::Empty;
    }
    if !head_terminated(&buf[start..]) && buf.len() <= MAX_HEAD_BYTES {
        return RequestProgress::Partial;
    }
    // A complete head (or an over-budget prefix): every protocol decision
    // is made by the real parser over the buffered bytes. An under-buffered
    // body (the head announced more Content-Length than has arrived) comes
    // back as UnexpectedEof, which means: keep reading.
    let mut cursor = Cursor::new(buf);
    match read_request(&mut cursor) {
        Ok(Some(request)) => RequestProgress::Complete {
            request: Box::new(request),
            consumed: cursor.position() as usize,
        },
        Ok(None) => RequestProgress::Empty,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => RequestProgress::Partial,
        Err(e) => RequestProgress::Violation(e),
    }
}

/// Whether `buf` (starting at its first non-blank byte) contains a head
/// terminator: an empty line after at least one head line. `read_head` is
/// `read_line`-based, so a bare `\n\n` terminates as well as `\r\n\r\n`.
fn head_terminated(buf: &[u8]) -> bool {
    for i in 0..buf.len().saturating_sub(1) {
        if buf[i] == b'\n'
            && (buf[i + 1] == b'\n' || (buf[i + 1] == b'\r' && buf.get(i + 2) == Some(&b'\n')))
        {
            return true;
        }
    }
    false
}

/// What the incremental response scanner concluded about a buffer.
#[derive(Debug)]
pub enum ResponseProgress {
    /// No complete response yet; keep reading.
    Partial,
    /// One complete response occupying `consumed` buffer bytes.
    Complete {
        /// The parsed response.
        response: Box<Response>,
        /// Bytes of the buffer it consumed.
        consumed: usize,
    },
    /// The buffer can never become a valid response.
    Violation(io::Error),
}

/// Scans `buf` for one complete HTTP response (Content-Length or chunked).
pub fn response_progress(buf: &[u8]) -> ResponseProgress {
    let mut start = 0usize;
    while start < buf.len() && matches!(buf[start], b'\r' | b'\n') {
        start += 1;
    }
    if (start == buf.len() || !head_terminated(&buf[start..])) && buf.len() <= MAX_HEAD_BYTES {
        return ResponseProgress::Partial;
    }
    let mut cursor = Cursor::new(buf);
    match read_response(&mut cursor) {
        Ok(response) => ResponseProgress::Complete {
            response: Box::new(response),
            consumed: cursor.position() as usize,
        },
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => ResponseProgress::Partial,
        Err(e) => ResponseProgress::Violation(e),
    }
}

/// An outbound byte queue with partial-write resume.
///
/// The loop appends rendered responses (or chunk frames) and drains as the
/// socket accepts bytes; a short write leaves the offset in place and the
/// connection re-arms write interest.
#[derive(Debug, Default)]
pub struct WriteQueue {
    segments: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of the front segment already written.
    offset: usize,
}

impl WriteQueue {
    /// Queues `bytes` for transmission (no-op when empty).
    pub fn push(&mut self, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.segments.push_back(bytes);
        }
    }

    /// Whether any bytes are pending.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Writes pending bytes into `writer` until drained or `WouldBlock`.
    /// `max_per_call` bounds bytes written per invocation — the test hook
    /// behind fault-injected short writes (`usize::MAX` in production).
    ///
    /// Returns `true` when the queue drained completely.
    ///
    /// # Errors
    ///
    /// Propagates fatal I/O errors (a dead peer); `WouldBlock` is not an
    /// error — it reports an undrained queue instead.
    pub fn drain(&mut self, writer: &mut impl io::Write, max_per_call: usize) -> io::Result<bool> {
        let mut budget = max_per_call;
        while let Some(front) = self.segments.front() {
            if budget == 0 {
                return Ok(false);
            }
            let slice = &front[self.offset..front.len().min(self.offset.saturating_add(budget))];
            match writer.write(slice) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.offset += n;
                    budget -= n;
                    if self.offset == front.len() {
                        self.segments.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Reads everything currently available from a nonblocking stream into
/// `buf`. Returns `(bytes_read, saw_eof)`.
///
/// # Errors
///
/// Propagates fatal I/O errors; `WouldBlock` ends the read normally.
pub fn read_available(stream: &mut impl io::Read, buf: &mut Vec<u8>) -> io::Result<(usize, bool)> {
    let mut total = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok((total, true)),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                total += n;
                if n < chunk.len() {
                    // The socket buffer is drained; don't pay another
                    // syscall just to learn WouldBlock.
                    return Ok((total, false));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((total, false)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// A [`BufRead`] over a consumed prefix plus a live stream: the threaded
/// tier's reader for connections migrated out of the event loop (the
/// residual loop buffer must be replayed before fresh socket bytes).
pub type ResidualReader<R> = io::BufReader<io::Chain<Cursor<Vec<u8>>, R>>;

/// Builds a [`ResidualReader`] over `residual` + `stream`.
pub fn residual_reader<R: io::Read>(residual: Vec<u8>, stream: R) -> ResidualReader<R> {
    io::BufReader::new(Cursor::new(residual).chain(stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{write_request, write_response};

    #[test]
    fn request_scanner_walks_a_pipelined_buffer() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/analyze", b"{\"a\":1}").unwrap();
        write_request(&mut wire, "GET", "/metrics", b"").unwrap();
        // First request parses and reports its exact span.
        let RequestProgress::Complete { request, consumed } = request_progress(&wire) else {
            panic!("first request should be complete");
        };
        assert_eq!(request.path, "/analyze");
        assert_eq!(request.body, b"{\"a\":1}");
        // The remainder is exactly the second request.
        let rest = &wire[consumed..];
        let RequestProgress::Complete { request, consumed } = request_progress(rest) else {
            panic!("second request should be complete");
        };
        assert_eq!(request.path, "/metrics");
        assert_eq!(consumed, rest.len());
        assert!(matches!(request_progress(&[]), RequestProgress::Empty));
    }

    #[test]
    fn request_scanner_reports_partials_at_every_split_point() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/analyze", b"{\"key\":\"value\"}").unwrap();
        for cut in 1..wire.len() {
            match request_progress(&wire[..cut]) {
                RequestProgress::Partial | RequestProgress::Empty => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
        assert!(matches!(
            request_progress(&wire),
            RequestProgress::Complete { .. }
        ));
    }

    #[test]
    fn request_scanner_matches_the_blocking_parser_on_violations() {
        let cases: &[&[u8]] = &[
            b"GARBAGE\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for wire in cases {
            let RequestProgress::Violation(mine) = request_progress(wire) else {
                panic!("{wire:?} should be a violation");
            };
            let theirs = read_request(&mut Cursor::new(*wire)).unwrap_err();
            assert_eq!(mine.kind(), theirs.kind(), "{wire:?}");
            assert_eq!(mine.to_string(), theirs.to_string(), "{wire:?}");
        }
    }

    #[test]
    fn oversized_head_is_a_violation_even_without_a_terminator() {
        let mut wire = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 64));
        let RequestProgress::Violation(e) = request_progress(&wire) else {
            panic!("oversized head should be a violation");
        };
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("head too large"), "{e}");
    }

    #[test]
    fn leading_blank_lines_are_tolerated() {
        let mut wire = b"\r\n\r\n\n".to_vec();
        write_request(&mut wire, "GET", "/healthz", b"").unwrap();
        let RequestProgress::Complete { request, consumed } = request_progress(&wire) else {
            panic!("request after blank lines should parse");
        };
        assert_eq!(request.path, "/healthz");
        assert_eq!(consumed, wire.len());
        assert!(matches!(
            request_progress(b"\r\n\r\n"),
            RequestProgress::Empty
        ));
    }

    #[test]
    fn response_scanner_handles_content_length_and_chunked() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let tail_start = wire.len();
        // A chunked response right behind it.
        crate::http::write_chunked_head(&mut wire, 200, "application/x-ndjson", true, &[]).unwrap();
        crate::http::write_chunk(&mut wire, b"{\"row\":0}\n").unwrap();
        crate::http::write_chunk(&mut wire, b"{\"row\":1}\n").unwrap();
        crate::http::finish_chunked(&mut wire).unwrap();

        let ResponseProgress::Complete { response, consumed } = response_progress(&wire) else {
            panic!("first response should be complete");
        };
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"{\"ok\":true}");
        assert_eq!(consumed, tail_start);
        for cut in tail_start + 1..wire.len() {
            assert!(
                matches!(
                    response_progress(&wire[consumed..cut]),
                    ResponseProgress::Partial
                ),
                "cut {cut}"
            );
        }
        let ResponseProgress::Complete { response, consumed } =
            response_progress(&wire[consumed..])
        else {
            panic!("chunked response should be complete");
        };
        assert_eq!(response.body, b"{\"row\":0}\n{\"row\":1}\n");
        assert_eq!(consumed, wire.len() - tail_start);
    }

    #[test]
    fn write_queue_resumes_partial_writes() {
        struct Trickle(Vec<u8>);
        impl io::Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::default();
        q.push(b"hello ".to_vec());
        q.push(Vec::new()); // ignored
        q.push(b"world".to_vec());
        let mut sink = Trickle(Vec::new());
        // A 4-byte budget cannot finish; the queue reports undrained.
        assert!(!q.drain(&mut sink, 4).unwrap());
        assert!(!q.is_empty());
        while !q.drain(&mut sink, usize::MAX).unwrap() {}
        assert_eq!(sink.0, b"hello world");
        assert!(q.is_empty());
    }
}
