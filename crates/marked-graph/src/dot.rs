//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::graph::MarkedGraph;

/// Renders a marked graph in Graphviz DOT syntax.
///
/// Transitions become boxes labeled with their names; each place becomes an
/// edge labeled with its token count (tokens drawn as a `•` list to match the
/// paper's figures).
///
/// # Examples
///
/// ```
/// use marked_graph::{dot::to_dot, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph marked_graph"));
/// assert!(dot.contains("\"A\" -> \"B\""));
/// ```
pub fn to_dot(graph: &MarkedGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph marked_graph {\n");
    out.push_str("  rankdir=LR;\n  node [shape=box];\n");
    for t in graph.transition_ids() {
        let _ = writeln!(out, "  \"{}\";", escape(graph.transition_name(t)));
    }
    for p in graph.place_ids() {
        let tokens = graph.tokens(p);
        let dots = if tokens <= 5 {
            "\u{2022}".repeat(tokens as usize)
        } else {
            format!("{tokens}\u{2022}")
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            escape(graph.transition_name(graph.source(p))),
            escape(graph.transition_name(graph.target(p))),
            dots
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tokens_and_names() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A \"x\"");
        let b = g.add_transition("B");
        g.add_place(a, b, 2);
        g.add_place(b, a, 7);
        let dot = to_dot(&g);
        assert!(dot.contains("\\\"x\\\""));
        assert!(dot.contains("\u{2022}\u{2022}"));
        assert!(dot.contains("7\u{2022}"));
        assert!(dot.ends_with("}\n"));
    }
}
