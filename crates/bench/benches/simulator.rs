//! Simulator throughput benchmarks: clock periods per second for the
//! marked-graph firing engine and the value-level LIS simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lis_cofdm::table6_scenario;
use lis_core::LisModel;
use lis_sim::{CoreModel, LisSimulator, Passthrough, QueueMode, RtlSimulator};
use marked_graph::FiringEngine;

fn cofdm_cores(sys: &lis_core::LisSystem) -> Vec<Box<dyn CoreModel>> {
    sys.block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect()
}

fn bench_simulators(c: &mut Criterion) {
    let soc = table6_scenario();
    let mut group = c.benchmark_group("simulator");

    let doubled = LisModel::doubled(&soc.system).into_graph();
    group.bench_function(BenchmarkId::new("firing_engine", "cofdm_1k_steps"), |b| {
        b.iter(|| {
            let mut e = FiringEngine::new(std::hint::black_box(&doubled));
            e.run(1000);
            e.steps()
        })
    });

    group.bench_function(BenchmarkId::new("value_sim", "cofdm_1k_steps"), |b| {
        b.iter(|| {
            let mut sim = LisSimulator::new(
                std::hint::black_box(&soc.system),
                cofdm_cores(&soc.system),
                QueueMode::Finite,
            );
            sim.run(1000);
            sim.steps()
        })
    });

    group.bench_function(BenchmarkId::new("rtl_sim", "cofdm_1k_steps"), |b| {
        b.iter(|| {
            let mut sim =
                RtlSimulator::new(std::hint::black_box(&soc.system), cofdm_cores(&soc.system));
            sim.run(1000);
            sim.steps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
