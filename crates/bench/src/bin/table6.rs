//! Table VI — the potential critical cycles when relay stations are added
//! between FEC and Spread, and Spread and Pilot (Fig. 19 scenario).
//!
//! Lists every deficient cycle of the doubled COFDM graph with its blocks
//! (backedge hops marked with a `*`, the paper's italics) and cycle mean,
//! then prints the queue-sizing solution — one extra slot behind each of
//! the backedges `(Pilot, Control)` and `(FFT_in, Control)` in the paper.

use lis_bench::Table;
use lis_cofdm::table6_scenario;
use lis_core::{ideal_mst, practical_mst, LisModel};
use lis_qs::{extract_instance, solve, verify_solution, Algorithm, QsConfig};
use marked_graph::Ratio;

fn main() {
    let soc = table6_scenario();
    let sys = &soc.system;
    println!(
        "ideal throughput {} = {:.2} (paper 0.75); degraded {} = {:.2} (paper lists cycles down to 0.67)",
        ideal_mst(sys),
        ideal_mst(sys).to_f64(),
        practical_mst(sys),
        practical_mst(sys).to_f64()
    );
    println!();

    let model = LisModel::doubled(sys);
    let graph = model.graph();
    let inst = extract_instance(sys, 10_000_000).expect("bounded");

    let mut t = Table::new(
        "Table VI: potential critical cycles (backedge hops marked *)",
        &["Cycle", "Blocks", "Cycle Mean"],
    );
    for (i, cycle) in inst.cycles.iter().enumerate() {
        let mut blocks = Vec::new();
        for &p in &cycle.places {
            let name = graph.transition_name(graph.target(p)).to_string();
            let star = if model.is_backedge(p) { "*" } else { "" };
            blocks.push(format!("{name}{star}"));
        }
        t.row(&[
            format!("C{}", i + 1),
            blocks.join(", "),
            format!(
                "{} = {:.2}",
                Ratio::new(cycle.tokens as i64, cycle.len as i64),
                cycle.tokens as f64 / cycle.len as f64
            ),
        ]);
    }
    t.print();

    println!();
    let report = solve(sys, Algorithm::Exact, &QsConfig::default()).expect("bounded");
    println!(
        "exact queue-sizing solution: {} extra token(s) (paper: one on (Pilot, Control) + one on (FFT_in, Control)):",
        report.total_extra
    );
    for (c, w) in &report.extra_tokens {
        println!(
            "  +{w} slot(s) on the queue of {} -> {} (backedge ({}, {}))",
            sys.block_name(sys.channel_from(*c)),
            sys.block_name(sys.channel_to(*c)),
            sys.block_name(sys.channel_to(*c)),
            sys.block_name(sys.channel_from(*c)),
        );
    }
    assert!(verify_solution(sys, &report));
    assert_eq!(report.total_extra, 2);
}
