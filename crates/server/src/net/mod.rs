//! The network tier: a vendored, zero-registry-deps readiness stack.
//!
//! Layers, bottom to top:
//!
//! * [`sys`] — raw `epoll`/`poll`/socket syscalls against the C library
//!   `std` already links (the only `unsafe` in the crate);
//! * [`poller`] — a safe level-triggered [`Poller`] (epoll on Linux,
//!   portable `poll(2)` elsewhere);
//! * [`conn`] — incremental HTTP parsing over growable buffers, a
//!   partial-write-safe [`WriteQueue`], and buffer/stream glue;
//! * [`front`] — the [`EventLoop`]: nonblocking accept, pipelined
//!   request/response ordering, loop-side deadlines, graceful drain;
//! * [`probe`] — thread-free concurrent health probes and hedged races
//!   for the gateway.
//!
//! The loop replaces thread-per-connection accept/read/write in both
//! daemons: a single front thread holds every keep-alive connection and
//! hands complete requests to the existing bounded worker pool, which is
//! the paper's own prescription — throughput is set by the slowest
//! feedback loop, so the slow edge (client I/O) must be decoupled from
//! the fast core (analysis workers).

pub mod conn;
pub mod front;
pub mod poller;
pub mod probe;
pub mod sys;

pub use conn::{
    read_available, request_progress, residual_reader, response_progress, RequestProgress,
    ResponseProgress, WriteQueue,
};
pub use front::{
    Completion, Completions, ConnPermit, EventLoop, FrontConfig, Handler, Outcome, Rendered,
    SlotKey,
};
pub use poller::{Event, Interest, Poller};
pub use probe::{probe_many, race, RaceAttempt, RaceOutcome, RaceResult};
pub use sys::raise_nofile_limit;
