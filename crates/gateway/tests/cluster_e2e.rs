//! In-process cluster tests: a gateway fronting real `lis-server`
//! instances over real sockets, checking the PR's core contract — every
//! answer obtained through the cluster (routed, failed-over, or hedged)
//! is byte-identical to what a fault-free single server produces.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lis_core::to_netlist;
use lis_gateway::{Backends, Gateway, GatewayConfig, HedgeConfig};
use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use lis_server::wire::{obj, Json};
use lis_server::{parse_metric, Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn netlist(seed: u64) -> String {
    let cfg = GeneratorConfig {
        vertices: 10,
        sccs: 2,
        min_cycles_per_scc: 2,
        relay_stations: 2,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: None,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    to_netlist(&generate(&cfg, &mut rng).system)
}

struct TestShard {
    addr: SocketAddr,
    daemon: JoinHandle<std::io::Result<lis_server::DrainReport>>,
}

fn start_shard() -> TestShard {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind shard");
    let addr = server.local_addr().expect("shard addr");
    let daemon = std::thread::spawn(move || server.run());
    TestShard { addr, daemon }
}

fn stop_shard(shard: TestShard) {
    if let Ok(mut client) = Client::connect(shard.addr) {
        let _ = client.shutdown();
    }
    let _ = shard.daemon.join();
}

struct TestGateway {
    addr: SocketAddr,
    daemon: JoinHandle<std::io::Result<()>>,
}

fn start_gateway(shards: &[SocketAddr], config: GatewayConfig) -> TestGateway {
    let gateway = Gateway::bind("127.0.0.1:0", Backends::Join(shards.to_vec()), config)
        .expect("bind gateway");
    let addr = gateway.local_addr().expect("gateway addr");
    let daemon = std::thread::spawn(move || gateway.run());
    TestGateway { addr, daemon }
}

fn stop_gateway(gw: TestGateway) {
    if let Ok(mut client) = Client::connect(gw.addr) {
        let _ = client.shutdown();
    }
    let _ = gw.daemon.join();
}

/// One request against a fresh single server: the byte-identity reference.
fn reference_answers(requests: &[(String, String)]) -> Vec<(u16, Vec<u8>)> {
    let shard = start_shard();
    let mut client = Client::connect(shard.addr).expect("connect reference");
    let answers = requests
        .iter()
        .map(|(path, body)| {
            let response = client
                .request("POST", path, body.as_bytes())
                .expect("reference request");
            (response.status, response.body)
        })
        .collect();
    drop(client);
    stop_shard(shard);
    answers
}

/// The standard mixed workload: every route, several designs, plus a
/// malformed netlist and a malformed envelope (typed 400s must relay too).
fn workload() -> Vec<(String, String)> {
    let mut requests = Vec::new();
    for seed in 0..6u64 {
        let n = netlist(seed);
        let body = obj([("netlist", Json::str(&n))]).to_string();
        for path in ["/analyze", "/qs", "/insert", "/dot"] {
            requests.push((path.to_string(), body.clone()));
        }
    }
    // A schedule + bursty-source analyze: the options envelope must relay
    // untouched through the gateway, cache under its own key (distinct from
    // the bare analyze of the same netlist above), and the seeded kernel
    // must make the answer reproducible across shards.
    requests.push((
        "/analyze".to_string(),
        obj([
            ("netlist", Json::str(netlist(0))),
            (
                "options",
                obj([
                    ("schedule", Json::Bool(true)),
                    (
                        "burst",
                        obj([
                            ("off_per_mille", Json::Num(150.0)),
                            ("on_per_mille", Json::Num(400.0)),
                            ("trials", Json::Num(64.0)),
                            ("cycles", Json::Num(500.0)),
                            ("seed", Json::Num(11.0)),
                        ]),
                    ),
                ]),
            ),
        ])
        .to_string(),
    ));
    requests.push((
        "/analyze".to_string(),
        obj([("netlist", Json::str("blok A\n"))]).to_string(),
    ));
    requests.push(("/qs".to_string(), "not json at all".to_string()));
    requests
}

#[test]
fn cluster_answers_are_byte_identical_to_a_single_server() {
    let requests = workload();
    let reference = reference_answers(&requests);

    let shards: Vec<TestShard> = (0..3).map(|_| start_shard()).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    // Hedging on, with an aggressive deadline so some hedges actually
    // launch — answers must stay identical regardless of which leg wins.
    let gw = start_gateway(
        &addrs,
        GatewayConfig {
            hedge: Some(HedgeConfig {
                max_delay: Duration::from_millis(5),
                min_delay: Duration::from_micros(50),
                ..HedgeConfig::default()
            }),
            ..GatewayConfig::default()
        },
    );

    let mut client = Client::connect(gw.addr).expect("connect gateway");
    // Two passes: cold (every shard computes) and warm (cache replays).
    for pass in 0..2 {
        for ((path, body), (ref_status, ref_body)) in requests.iter().zip(&reference) {
            let response = client
                .request("POST", path, body.as_bytes())
                .expect("gateway request");
            assert_eq!(response.status, *ref_status, "pass {pass} {path}");
            assert_eq!(&response.body, ref_body, "pass {pass} {path} diverged");
        }
    }

    stop_gateway(gw);
    for shard in shards {
        stop_shard(shard);
    }
}

#[test]
fn failover_is_transparent_and_byte_identical_when_a_shard_dies() {
    let requests = workload();
    let reference = reference_answers(&requests);

    let shards: Vec<TestShard> = (0..3).map(|_| start_shard()).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    let gw = start_gateway(
        &addrs,
        GatewayConfig {
            hedge: None,
            probe_interval: Duration::from_millis(50),
            ..GatewayConfig::default()
        },
    );
    let mut client = Client::connect(gw.addr).expect("connect gateway");

    // Kill the middle shard outright (drain + stop): roughly a third of
    // the keyspace must fail over, invisibly.
    let mut shards = shards;
    let victim = shards.remove(1);
    stop_shard(victim);

    for ((path, body), (ref_status, ref_body)) in requests.iter().zip(&reference) {
        let response = client
            .request("POST", path, body.as_bytes())
            .expect("request during outage");
        assert_eq!(response.status, *ref_status, "{path} status changed");
        assert_eq!(&response.body, ref_body, "{path} diverged during outage");
    }

    // The dead shard must be ejected and failovers recorded.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let metrics = client.metrics().expect("gateway metrics");
        let ejected = metrics.contains("lis_gateway_shard_healthy{shard=\"shard-1\"} 0");
        if ejected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead shard never ejected:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // After ejection, requests route around the corpse with no failover
    // needed — and still answer identically.
    for ((path, body), (ref_status, ref_body)) in requests.iter().zip(&reference) {
        let response = client
            .request("POST", path, body.as_bytes())
            .expect("request after ejection");
        assert_eq!(response.status, *ref_status);
        assert_eq!(&response.body, ref_body);
    }

    stop_gateway(gw);
    for shard in shards {
        stop_shard(shard);
    }
}

#[test]
fn repeat_requests_for_one_design_stick_to_one_warm_shard() {
    let shards: Vec<TestShard> = (0..3).map(|_| start_shard()).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    let gw = start_gateway(
        &addrs,
        GatewayConfig {
            hedge: None, // hedging would spread duplicates across shards
            ..GatewayConfig::default()
        },
    );
    let mut client = Client::connect(gw.addr).expect("connect gateway");

    let body = obj([("netlist", Json::str(netlist(7)))]).to_string();
    for _ in 0..10 {
        let response = client
            .request("POST", "/analyze", body.as_bytes())
            .expect("analyze");
        assert_eq!(response.status, 200);
    }

    // Exactly one shard served the design — and from its cache after the
    // first computation.
    let mut serving_shards = 0;
    for addr in &addrs {
        let mut direct = Client::connect(*addr).expect("connect shard");
        let metrics = direct.metrics().expect("shard metrics");
        let hits = parse_metric(&metrics, "lis_cache_hits_total").unwrap_or(0.0);
        let misses = parse_metric(&metrics, "lis_cache_misses_total").unwrap_or(0.0);
        if hits + misses > 0.0 {
            serving_shards += 1;
            assert_eq!(misses, 1.0, "design computed more than once");
            assert_eq!(hits, 9.0, "cache did not serve the repeats");
        }
    }
    assert_eq!(serving_shards, 1, "design was routed to multiple shards");

    stop_gateway(gw);
    for shard in shards {
        stop_shard(shard);
    }
}

#[test]
fn gateway_with_no_reachable_shards_answers_typed_502() {
    // Reserve a port with nothing behind it.
    let dead = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        sock.local_addr().expect("addr")
    };
    let gw = start_gateway(
        &[dead],
        GatewayConfig {
            hedge: None,
            ..GatewayConfig::default()
        },
    );
    let mut client = Client::connect(gw.addr).expect("connect gateway");
    let body = obj([("netlist", Json::str(netlist(1)))]).to_string();
    let response = client
        .request("POST", "/analyze", body.as_bytes())
        .expect("request");
    assert_eq!(response.status, 502);
    let doc = Json::parse(std::str::from_utf8(&response.body).unwrap()).expect("json");
    assert_eq!(
        doc.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("bad_gateway")
    );
    stop_gateway(gw);
}

#[test]
fn hedge_decisions_replay_across_identical_runs() {
    let digest_of_run = || {
        let shards: Vec<TestShard> = (0..2).map(|_| start_shard()).collect();
        let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
        let gw = start_gateway(
            &addrs,
            GatewayConfig {
                hedge: Some(HedgeConfig {
                    rate: 0.5,
                    seed: 0xfeed_beef,
                    ..HedgeConfig::default()
                }),
                ..GatewayConfig::default()
            },
        );
        let mut client = Client::connect(gw.addr).expect("connect gateway");
        let body = obj([("netlist", Json::str(netlist(3)))]).to_string();
        for _ in 0..20 {
            let response = client
                .request("POST", "/analyze", body.as_bytes())
                .expect("analyze");
            assert_eq!(response.status, 200);
        }
        let health = client.request("GET", "/healthz", b"").expect("healthz");
        let doc = Json::parse(std::str::from_utf8(&health.body).unwrap()).expect("json");
        let digest = doc
            .get("hedge_decisions_digest")
            .unwrap()
            .as_str()
            .expect("digest present")
            .to_string();
        stop_gateway(gw);
        for shard in shards {
            stop_shard(shard);
        }
        digest
    };
    let a = digest_of_run();
    let b = digest_of_run();
    assert_eq!(a, b, "same seed and workload must replay identically");
    assert_ne!(a, format!("{:016x}", 0u64), "digest never folded anything");
}

/// Re-exec helper for the SIGKILL test: when `LIS_E2E_SWEEP_SHARD` is set,
/// this "test" is a real shard daemon in its own OS process (so the parent
/// can kill -9 it mid-stream). Without the env var it is a no-op.
#[test]
fn sweep_shard_child_process() {
    if std::env::var("LIS_E2E_SWEEP_SHARD").is_err() {
        return;
    }
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind child shard");
    println!("SHARD_ADDR={}", server.local_addr().expect("addr"));
    let _ = server.run(); // until killed or shut down
}

/// Spawns this test binary as a standalone shard process with a per-row
/// streaming delay, returning its address and process handle. The caller
/// owns reaping: the SIGKILL test kills and waits both shards on every
/// exit path.
#[allow(clippy::zombie_processes)]
fn spawn_shard_process(row_delay_ms: u64) -> (SocketAddr, std::process::Child) {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("test exe");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "sweep_shard_child_process", "--nocapture"])
        .env("LIS_E2E_SWEEP_SHARD", "1")
        .env("LIS_SWEEP_ROW_DELAY_MS", row_delay_ms.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn shard process");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("child stdout") == 0 {
            panic!("shard child exited before printing its address");
        }
        // The libtest harness prints `test <name> ... ` on the same line
        // before the marker, so search rather than prefix-match.
        if let Some(pos) = line.find("SHARD_ADDR=") {
            let addr = line[pos + "SHARD_ADDR=".len()..]
                .trim()
                .parse()
                .expect("child addr");
            // Keep the pipe drained so the child never blocks on stdout.
            std::thread::spawn(move || {
                use std::io::Read;
                let mut sink = Vec::new();
                let _ = reader.read_to_end(&mut sink);
            });
            return (addr, child);
        }
    }
}

#[test]
fn sweep_survives_mid_stream_shard_sigkill_via_failover_replay() {
    let n = netlist(9);
    let grid = obj([
        (
            "capacities",
            Json::Arr(
                [0.0, 1.0]
                    .iter()
                    .map(|&c| {
                        obj([
                            ("channel", Json::Num(c)),
                            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("budget", Json::Num(2.0)),
    ]);

    // The byte-identity reference: one fault-free in-process server with no
    // streaming delay (the parent process does not set the delay env var).
    let reference = {
        let shard = start_shard();
        let mut client = Client::connect(shard.addr).expect("connect reference");
        let (status, body) = client.sweep(&n, grid.clone()).expect("reference sweep");
        assert_eq!(status, 200);
        drop(client);
        stop_shard(shard);
        body
    };
    let rows = reference.iter().filter(|&&b| b == b'\n').count() - 2;
    assert!(rows >= 4, "grid too small to be killed mid-stream: {rows}");

    // Two real OS-process shards, each streaming one row per 60ms.
    let (addr_a, mut child_a) = spawn_shard_process(60);
    let (addr_b, mut child_b) = spawn_shard_process(60);
    let gw = start_gateway(
        &[addr_a, addr_b],
        GatewayConfig {
            hedge: None,
            probe_interval: Duration::from_millis(50),
            ..GatewayConfig::default()
        },
    );

    // Fire the sweep through the gateway on its own thread, then SIGKILL
    // whichever shard is streaming it once at least two rows are out.
    let gw_addr = gw.addr;
    let sweep = {
        let grid = grid.clone();
        let n = n.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(gw_addr).expect("connect gateway");
            client.sweep(&n, grid).expect("sweep through outage")
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let victim = loop {
        assert!(Instant::now() < deadline, "no shard ever started streaming");
        let streaming = |addr: SocketAddr| {
            Client::connect(addr).ok().and_then(|mut c| {
                let m = c.metrics().ok()?;
                parse_metric(&m, "lis_sweep_rows_total").filter(|&r| r >= 2.0)
            })
        };
        if streaming(addr_a).is_some() {
            break &mut child_a;
        }
        if streaming(addr_b).is_some() {
            break &mut child_b;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    victim.kill().expect("SIGKILL the streaming shard");
    let _ = victim.wait();

    // The client must still get the complete, byte-identical stream — the
    // gateway fails over and the survivor replays the whole sweep.
    let (status, body) = sweep.join().expect("sweep thread");
    assert_eq!(status, 200, "sweep failed during the outage");
    assert_eq!(
        body, reference,
        "failover replay diverged from the reference stream"
    );

    let mut client = Client::connect(gw.addr).expect("connect gateway");
    let metrics = client.metrics().expect("gateway metrics");
    assert!(
        parse_metric(&metrics, "lis_gateway_failovers_total").expect("failovers metric") >= 1.0,
        "kill happened but no failover was recorded:\n{metrics}"
    );

    stop_gateway(gw);
    for child in [&mut child_a, &mut child_b] {
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[test]
fn shards_see_the_gateway_request_id() {
    // White-box: shard echoes the id the gateway forwarded; the gateway
    // relays its own response headers, so the echo seen by the client is
    // the gateway's, but the shard-side propagation is what this checks —
    // via a direct probe with the same id.
    let shards: Vec<TestShard> = (0..2).map(|_| start_shard()).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    let gw = start_gateway(&addrs, GatewayConfig::default());
    let mut client = Client::connect(gw.addr).expect("connect gateway");
    let body = obj([("netlist", Json::str(netlist(5)))]).to_string();
    let tagged = client
        .request_with(
            "POST",
            "/analyze",
            &[("X-LIS-Request-Id", "corr-xyz")],
            body.as_bytes(),
        )
        .expect("tagged analyze");
    assert_eq!(tagged.status, 200);
    assert_eq!(tagged.header("x-lis-request-id"), Some("corr-xyz"));
    // An untagged request gets a gateway-minted id.
    let minted = client
        .request("POST", "/analyze", body.as_bytes())
        .expect("untagged analyze");
    let id = minted.header("x-lis-request-id").expect("minted id");
    assert!(id.starts_with("gw-"), "unexpected id shape {id:?}");
    stop_gateway(gw);
    for shard in shards {
        stop_shard(shard);
    }
}
