//! Real-binary tests for `lis simulate`: kernel selection, Monte-Carlo
//! flags, seed determinism, and exit-code behavior.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

const FIG1: &str = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// Writes a throwaway netlist and returns its path (left behind in the
/// temp dir; unique per test invocation).
fn netlist_file(text: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("lis-simulate-cli-{}-{n}.lis", std::process::id()));
    fs::write(&path, text).expect("write netlist");
    path
}

fn run_simulate(args: &[&str]) -> Output {
    let path = netlist_file(FIG1);
    Command::new(env!("CARGO_BIN_EXE_lis"))
        .arg("simulate")
        .arg(&path)
        .args(args)
        .output()
        .expect("run lis simulate")
}

#[test]
fn reference_kernel_is_the_default() {
    let out = run_simulate(&["--steps", "300"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("pass-through cores"), "{stdout}");
    assert!(stdout.contains("2/3"), "{stdout}");
}

#[test]
fn compiled_kernel_reports_the_same_rate() {
    let out = run_simulate(&["--steps", "3000", "--kernel", "compiled"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("compiled kernel"), "{stdout}");
    // Fig. 1 under backpressure settles at 2/3.
    assert!(stdout.contains("rate 0.66"), "{stdout}");
}

#[test]
fn monte_carlo_mode_is_seed_deterministic() {
    let args = [
        "--steps", "500", "--kernel", "compiled", "--trials", "96", "--stall", "0.1", "--seed", "7",
    ];
    let a = run_simulate(&args);
    let b = run_simulate(&args);
    assert!(a.status.success(), "{a:?}");
    let a = String::from_utf8(a.stdout).expect("utf8");
    let b = String::from_utf8(b.stdout).expect("utf8");
    assert_eq!(a, b, "same seed must reproduce the identical report");
    assert!(a.contains("Monte-Carlo"), "{a}");
    assert!(a.contains("θ bound"), "{a}");

    let other = run_simulate(&[
        "--steps", "500", "--kernel", "compiled", "--trials", "96", "--stall", "0.1", "--seed", "8",
    ]);
    let other = String::from_utf8(other.stdout).expect("utf8");
    assert_ne!(a, other, "a different seed must change the trials");
}

#[test]
fn unknown_kernel_exits_with_failure() {
    let out = run_simulate(&["--kernel", "warp"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("known: reference, compiled"),
        "stderr was: {stderr}"
    );
}

#[test]
fn monte_carlo_flags_require_the_compiled_kernel() {
    let out = run_simulate(&["--trials", "8"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--kernel compiled"), "stderr was: {stderr}");
}

#[test]
fn usage_documents_the_monte_carlo_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_lis"))
        .output()
        .expect("run lis");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    for flag in ["--kernel", "--trials", "--seed", "--stall"] {
        assert!(stderr.contains(flag), "usage misses {flag}: {stderr}");
    }
}
