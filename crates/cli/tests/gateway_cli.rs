//! End-to-end cluster tests driving the real `lis` binary: a gateway that
//! spawns and supervises shard children, serves the wire protocol, fails
//! over when a shard is SIGKILLed, and respawns the corpse.

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use lis_server::wire::{obj, Json};
use lis_server::{parse_metric, Client};

const FIG1: &str = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";

struct GatewayProcess {
    child: Child,
    addr: SocketAddr,
}

impl Drop for GatewayProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launches `lis gateway` with the given extra args and waits for its
/// listening announcement.
fn start_gateway(args: &[&str]) -> GatewayProcess {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lis"))
        .arg("gateway")
        .arg("127.0.0.1:0")
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gateway");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read gateway stdout") == 0 {
            panic!("gateway exited before announcing its address");
        }
        if let Some(rest) = line.trim().strip_prefix("lis-gateway listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .parse()
                .expect("parse gateway address");
        }
    };
    // Keep the pipe open so the gateway's shutdown println cannot EPIPE.
    std::mem::forget(reader);
    GatewayProcess { child, addr }
}

fn analyze_body() -> String {
    obj([("netlist", Json::str(FIG1))]).to_string()
}

fn json(body: &[u8]) -> Json {
    Json::parse(std::str::from_utf8(body).expect("utf-8 body")).expect("json body")
}

#[test]
fn gateway_serves_the_wire_protocol_with_failover_and_respawn() {
    let gw = start_gateway(&["--shards", "2", "--shard-threads", "1", "--probe-ms", "50"]);
    let mut client = Client::connect(gw.addr).expect("connect gateway");

    // A fault-free single-server reference for byte-identity.
    let reference = {
        let server = lis_server::Server::bind("127.0.0.1:0", lis_server::ServerConfig::default())
            .expect("bind reference");
        let addr = server.local_addr().expect("addr");
        let daemon = std::thread::spawn(move || server.run());
        let mut direct = Client::connect(addr).expect("connect reference");
        let response = direct
            .request("POST", "/analyze", analyze_body().as_bytes())
            .expect("reference analyze");
        assert_eq!(response.status, 200);
        let _ = direct.shutdown();
        let _ = daemon.join();
        response.body
    };

    // The gateway's healthz names the cluster topology, pids included.
    let health = client.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let doc = json(&health.body);
    assert_eq!(doc.get("role").unwrap().as_str(), Some("gateway"));
    assert_eq!(doc.get("shard_count").unwrap().as_u64(), Some(2));
    assert_eq!(doc.get("supervised").unwrap().as_bool(), Some(true));
    let shards = doc.get("shards").unwrap().as_arr().unwrap().to_vec();
    assert_eq!(shards.len(), 2);
    let victim_pid = shards[0].get("pid").unwrap().as_u64().expect("shard pid");

    // Analysis through the gateway is byte-identical to the single server,
    // and the response carries a minted request id.
    let via_gateway = client
        .request("POST", "/analyze", analyze_body().as_bytes())
        .expect("gateway analyze");
    assert_eq!(via_gateway.status, 200);
    assert_eq!(via_gateway.body, reference, "gateway must relay verbatim");
    assert!(via_gateway.header("x-lis-request-id").is_some());

    // A client-supplied id is propagated, not replaced.
    let tagged = client
        .request_with(
            "POST",
            "/analyze",
            &[("X-LIS-Request-Id", "cli-e2e-1")],
            analyze_body().as_bytes(),
        )
        .expect("tagged analyze");
    assert_eq!(tagged.header("x-lis-request-id"), Some("cli-e2e-1"));

    // SIGKILL one shard. Every request during the outage must still be
    // answered (failover), and the supervisor must respawn the corpse.
    let killed = Command::new("/bin/kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim_pid} failed");
    for _ in 0..20 {
        let response = client
            .request("POST", "/analyze", analyze_body().as_bytes())
            .expect("analyze during outage");
        assert_eq!(response.status, 200, "no request may be lost");
        assert_eq!(response.body, reference);
    }

    // Wait for the respawn to land in the metrics.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = client.metrics().expect("gateway metrics");
        if parse_metric(&metrics, "lis_gateway_shard_respawns_total").unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shard was never respawned:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The respawned shard must become routable again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.request("GET", "/healthz", b"").expect("healthz");
        let doc = json(&health.body);
        if doc.get("healthy_shards").unwrap().as_u64() == Some(2) {
            break;
        }
        assert!(Instant::now() < deadline, "shard never recovered");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Drain the cluster; the gateway should exit cleanly.
    let status = client.shutdown().expect("shutdown");
    assert_eq!(status, 200);
    drop(client);
    let mut gw = gw;
    let deadline = Instant::now() + Duration::from_secs(15);
    let exit = loop {
        if let Some(exit) = gw.child.try_wait().expect("try_wait") {
            break exit;
        }
        assert!(Instant::now() < deadline, "gateway never exited");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(exit.success(), "gateway exited with {exit:?}");
}

#[test]
fn client_exit_codes_distinguish_4xx_5xx_and_transport() {
    // A daemon to answer a 400: unparseable netlist in an otherwise valid
    // request.
    let server =
        lis_server::Server::bind("127.0.0.1:0", lis_server::ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run());

    let dir = std::env::temp_dir();
    let bad = dir.join(format!("lis-gateway-cli-bad-{}.lis", std::process::id()));
    std::fs::File::create(&bad)
        .and_then(|mut f| f.write_all(b"blok A\n"))
        .expect("write bad netlist");
    let good = dir.join(format!("lis-gateway-cli-good-{}.lis", std::process::id()));
    std::fs::File::create(&good)
        .and_then(|mut f| f.write_all(FIG1.as_bytes()))
        .expect("write good netlist");

    let run = |addr: &str, netlist: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_lis"))
            .args(["client", addr, "analyze"])
            .arg(netlist)
            .args(["--retries", "0"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run client")
    };

    // 200 → success.
    assert_eq!(run(&addr.to_string(), &good).code(), Some(0));
    // 400 parse error → exit 2 (client-side fault).
    assert_eq!(run(&addr.to_string(), &bad).code(), Some(2));
    // Transport failure (nothing listening) → exit 1.
    let unbound = {
        // Grab a port and release it so the connect is refused.
        let sock = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        sock.local_addr().expect("addr")
    };
    assert_eq!(run(&unbound.to_string(), &good).code(), Some(1));
    // 5xx → exit 3: a gateway whose only shard is unreachable answers 502.
    let gw = start_gateway(&["--join", &unbound.to_string(), "--no-hedge"]);
    assert_eq!(run(&gw.addr.to_string(), &good).code(), Some(3));
    drop(gw);

    // `client health` prints the readiness JSON and exits 0.
    let health = Command::new(env!("CARGO_BIN_EXE_lis"))
        .args(["client", &addr.to_string(), "health"])
        .output()
        .expect("run client health");
    assert!(health.status.success());
    let doc = json(&health.stdout);
    assert_eq!(doc.get("role").unwrap().as_str(), Some("server"));

    let mut client = Client::connect(addr).expect("connect");
    let _ = client.shutdown();
    let _ = daemon.join();
    let _ = std::fs::remove_file(bad);
    let _ = std::fs::remove_file(good);
}
