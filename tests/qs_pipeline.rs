//! End-to-end queue-sizing pipeline checks on random systems: both solvers
//! always verify, the exact never spends more than the heuristic, the
//! simplification rules and SCC collapsing never change the exact optimum,
//! and the Vertex Cover oracle agrees with the exact solver.

use std::time::Duration;

use lis::gen::{generate, vc_to_qs, GeneratorConfig, InsertionPolicy, VcInstance};
use lis::qs::{solve, verify_solution, Algorithm, QsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_system(seed: u64, vertices: usize, sccs: usize, rs: usize) -> lis::core::LisSystem {
    let cfg = GeneratorConfig {
        vertices,
        sccs,
        min_cycles_per_scc: 2,
        relay_stations: rs,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: Some(2),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&cfg, &mut rng).system
}

#[test]
fn both_solvers_verify_on_random_systems() {
    let cfg = QsConfig {
        budget: Some(Duration::from_secs(5)),
        ..QsConfig::default()
    };
    for seed in 0..12 {
        let sys = random_system(seed, 16, 4, 5);
        let heur = solve(&sys, Algorithm::Heuristic, &cfg).unwrap();
        let exact = solve(&sys, Algorithm::Exact, &cfg).unwrap();
        assert!(verify_solution(&sys, &heur), "seed {seed} heuristic");
        assert!(verify_solution(&sys, &exact), "seed {seed} exact");
        assert!(
            exact.total_extra <= heur.total_extra,
            "seed {seed}: exact {} > heuristic {}",
            exact.total_extra,
            heur.total_extra
        );
    }
}

#[test]
fn simplification_and_collapsing_preserve_the_exact_optimum() {
    for seed in 0..8 {
        let sys = random_system(seed + 100, 14, 3, 4);
        let variants = [
            QsConfig::default(),
            QsConfig {
                simplify: false,
                ..QsConfig::default()
            },
            QsConfig {
                collapse_sccs: false,
                ..QsConfig::default()
            },
            QsConfig {
                simplify: false,
                collapse_sccs: false,
                ..QsConfig::default()
            },
        ];
        let totals: Vec<u64> = variants
            .iter()
            .map(|cfg| {
                let r = solve(&sys, Algorithm::Exact, cfg).unwrap();
                assert!(r.optimal, "seed {seed}: exact must finish on this size");
                assert!(verify_solution(&sys, &r), "seed {seed}");
                r.total_extra
            })
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: optima differ across pipeline variants: {totals:?}"
        );
    }
}

#[test]
fn exact_optimum_equals_min_vertex_cover_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..6 {
        let vc = VcInstance::random(6, 0.4, &mut rng);
        let red = vc_to_qs(&vc);
        let report = solve(&red.system, Algorithm::Exact, &QsConfig::default()).unwrap();
        assert!(report.optimal, "trial {trial}");
        assert_eq!(
            report.total_extra as usize,
            vc.min_cover_size(),
            "trial {trial}: {vc:?}"
        );
        let cover = red.cover_from_solution(&report.extra_tokens);
        assert!(vc.is_cover(&cover), "trial {trial}");
    }
}

#[test]
fn applying_a_solution_is_idempotent_for_throughput() {
    let sys = random_system(42, 16, 4, 6);
    let report = solve(&sys, Algorithm::Heuristic, &QsConfig::default()).unwrap();
    let mut resized = sys.clone();
    lis::qs::apply_solution(&mut resized, &report);
    let after_once = lis::core::practical_mst(&resized);
    // Sizing again on the already-fixed system finds nothing to do.
    let second = solve(&resized, Algorithm::Heuristic, &QsConfig::default()).unwrap();
    assert_eq!(second.total_extra, 0);
    assert_eq!(after_once, report.target);
}
