//! Content-addressed canonical hashing of a [`LisSystem`].
//!
//! Two netlist texts that differ only in comments, whitespace, attribute
//! spelling, or quoting parse to the same [`LisSystem`] and therefore hash
//! to the same value — which is what makes the hash usable as a
//! content-addressed cache key for analysis results (the `lis-server`
//! result cache keys on `canonical_hash(system)` plus the request kind).
//!
//! The hash covers everything analysis can observe: block names and
//! initialization flags in id order, and per channel its endpoints, relay
//! stations, and queue capacity. Block/channel *declaration order* is part
//! of the identity (ids are positional and appear in analysis output), so
//! reordering lines produces a different hash.
//!
//! The function is a 64-bit FNV-1a over a length-prefixed byte
//! serialization: deterministic across platforms and processes (unlike
//! `std::hash::DefaultHasher`, whose seed varies), with no dependencies.

use crate::system::LisSystem;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a used for the canonical system hash.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed so that adjacent strings cannot collide by
    /// re-splitting (`"ab","c"` vs `"a","bc"`).
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

/// Deterministic 64-bit structural hash of a system.
///
/// Equal systems hash equal on every platform and in every process; the
/// hash is stable across textual re-formattings of the same netlist. See
/// the module docs for what counts as identity.
///
/// # Examples
///
/// ```
/// use lis_core::{canonical_hash, parse_netlist};
///
/// let a = parse_netlist("block A\nblock B\nchannel A -> B rs=1 q=1\n")?;
/// let b = parse_netlist("# same system, different text\nblock A   # core\nblock B\nchannel A -> B rs=1\n")?;
/// assert_eq!(canonical_hash(&a), canonical_hash(&b));
///
/// let bigger_queue = parse_netlist("block A\nblock B\nchannel A -> B rs=1 q=2\n")?;
/// assert_ne!(canonical_hash(&a), canonical_hash(&bigger_queue));
/// # Ok::<(), lis_core::ParseNetlistError>(())
/// ```
pub fn canonical_hash(sys: &LisSystem) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(sys.block_count() as u64);
    for b in sys.block_ids() {
        h.write_str(sys.block_name(b));
        h.write(&[u8::from(sys.is_initialized(b))]);
    }
    h.write_u64(sys.channel_count() as u64);
    for c in sys.channel_ids() {
        h.write_u64(sys.channel_from(c).index() as u64);
        h.write_u64(sys.channel_to(c).index() as u64);
        h.write_u64(u64::from(sys.relay_stations_on(c)));
        h.write_u64(sys.queue_capacity(c));
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::parse_netlist;

    fn hash_of(text: &str) -> u64 {
        canonical_hash(&parse_netlist(text).expect("valid netlist"))
    }

    #[test]
    fn formatting_does_not_change_the_hash() {
        let plain = hash_of("block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n");
        let noisy = hash_of(
            "# the Fig. 1 system\n\nblock \"A\"   # quoted\nblock B\n\
             channel A -> B rs=1 q=1\nchannel  A  ->  B\n",
        );
        assert_eq!(plain, noisy);
    }

    #[test]
    fn every_field_is_identity_bearing() {
        let base = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";
        let variants = [
            // renamed block
            "block A2\nblock B\nchannel A2 -> B rs=1\nchannel A2 -> B\n",
            // initialization flag
            "block A uninitialized\nblock B\nchannel A -> B rs=1\nchannel A -> B\n",
            // relay-station count
            "block A\nblock B\nchannel A -> B rs=2\nchannel A -> B\n",
            // queue capacity
            "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B q=2\n",
            // channel direction
            "block A\nblock B\nchannel A -> B rs=1\nchannel B -> A\n",
            // dropped channel
            "block A\nblock B\nchannel A -> B rs=1\n",
            // extra block
            "block A\nblock B\nblock C\nchannel A -> B rs=1\nchannel A -> B\n",
        ];
        let h = hash_of(base);
        for v in variants {
            assert_ne!(h, hash_of(v), "variant hashed equal: {v:?}");
        }
    }

    #[test]
    fn declaration_order_is_part_of_the_identity() {
        // Ids are positional: swapping block declarations changes which id
        // each name maps to, which analysis output observes.
        let ab = hash_of("block A\nblock B\nchannel A -> B\n");
        let ba = hash_of("block B\nblock A\nchannel A -> B\n");
        assert_ne!(ab, ba);
    }

    #[test]
    fn hash_is_stable_across_calls_and_clones() {
        let sys = parse_netlist("block A\nblock B\nchannel A -> B rs=1\n").unwrap();
        assert_eq!(canonical_hash(&sys), canonical_hash(&sys.clone()));
    }

    #[test]
    fn known_vector_pins_cross_platform_stability() {
        // Pinned value: if this changes, cached results from older servers
        // would silently be invalidated — bump deliberately, not by accident.
        let empty = canonical_hash(&LisSystem::new());
        let mut h = Fnv1a::new();
        h.write_u64(0);
        h.write_u64(0);
        assert_eq!(empty, h.0);
    }
}
