//! Behavioral models of IP cores.
//!
//! A [`CoreModel`] supplies the value-level behavior of a block: its
//! initialized output (the data its shell transfers in the first clock
//! period) and its combinational function. The simulator drives these
//! models under the latency-insensitive protocol, so a core never sees void
//! data — exactly the encapsulation property of the paper.

use std::fmt;

/// The value type flowing on LIS channels.
pub type Value = i64;

/// Behavioral model of a stallable core.
///
/// `compute` receives one value per *input channel* (ordered by channel id)
/// and returns one value per *output channel* (same ordering). The shell
/// guarantees `compute` is called only when every input has valid data.
pub trait CoreModel: fmt::Debug {
    /// The values latched at reset, transferred during the first period
    /// (one per output channel).
    fn initial_outputs(&self) -> Vec<Value>;

    /// One firing of the core.
    fn compute(&mut self, inputs: &[Value]) -> Vec<Value>;
}

/// The even/odd generator of the paper's Table I: emits `0, 2, 4, …` on its
/// first output channel and `1, 3, 5, …` on its second.
#[derive(Debug, Default, Clone)]
pub struct EvenOddGenerator {
    fired: u64,
}

impl EvenOddGenerator {
    /// Creates the generator in its reset state.
    pub fn new() -> EvenOddGenerator {
        EvenOddGenerator::default()
    }
}

impl CoreModel for EvenOddGenerator {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![0, 1]
    }

    fn compute(&mut self, _inputs: &[Value]) -> Vec<Value> {
        self.fired += 1;
        vec![2 * self.fired as Value, 2 * self.fired as Value + 1]
    }
}

/// The adder of Table I: output latch initialized to zero, then the sum of
/// its inputs, broadcast to every output channel.
#[derive(Debug, Clone)]
pub struct Adder {
    outputs: usize,
}

impl Adder {
    /// An adder driving `outputs` output channels.
    pub fn new(outputs: usize) -> Adder {
        Adder { outputs }
    }
}

impl CoreModel for Adder {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![0; self.outputs]
    }

    fn compute(&mut self, inputs: &[Value]) -> Vec<Value> {
        vec![inputs.iter().sum(); self.outputs]
    }
}

/// Emits a fixed sequence, then repeats its last element (a scripted
/// source; useful for directed tests).
#[derive(Debug, Clone)]
pub struct SequenceSource {
    sequence: Vec<Value>,
    next: usize,
    outputs: usize,
}

impl SequenceSource {
    /// A source that plays `sequence` on each of `outputs` channels.
    ///
    /// # Panics
    ///
    /// Panics if `sequence` is empty.
    pub fn new(sequence: Vec<Value>, outputs: usize) -> SequenceSource {
        assert!(!sequence.is_empty(), "sequence must be nonempty");
        SequenceSource {
            sequence,
            next: 0,
            outputs,
        }
    }
}

impl CoreModel for SequenceSource {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![self.sequence[0]; self.outputs]
    }

    fn compute(&mut self, _inputs: &[Value]) -> Vec<Value> {
        self.next = (self.next + 1).min(self.sequence.len() - 1);
        vec![self.sequence[self.next]; self.outputs]
    }
}

/// Forwards its single input to every output channel (a wire/repeater core).
#[derive(Debug, Clone)]
pub struct Passthrough {
    outputs: usize,
    initial: Value,
}

impl Passthrough {
    /// A pass-through block with a given reset value.
    pub fn new(outputs: usize, initial: Value) -> Passthrough {
        Passthrough { outputs, initial }
    }
}

impl CoreModel for Passthrough {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![self.initial; self.outputs]
    }

    fn compute(&mut self, inputs: &[Value]) -> Vec<Value> {
        vec![inputs.first().copied().unwrap_or(self.initial); self.outputs]
    }
}

/// Applies a stateless function to the inputs (sum, xor, custom closures are
/// all expressible); output broadcast to every channel.
pub struct MapCore<F: FnMut(&[Value]) -> Value> {
    f: F,
    outputs: usize,
    initial: Value,
}

impl<F: FnMut(&[Value]) -> Value> MapCore<F> {
    /// A core computing `f(inputs)` each firing.
    pub fn new(outputs: usize, initial: Value, f: F) -> MapCore<F> {
        MapCore {
            f,
            outputs,
            initial,
        }
    }
}

impl<F: FnMut(&[Value]) -> Value> fmt::Debug for MapCore<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapCore")
            .field("outputs", &self.outputs)
            .field("initial", &self.initial)
            .finish()
    }
}

impl<F: FnMut(&[Value]) -> Value> CoreModel for MapCore<F> {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![self.initial; self.outputs]
    }

    fn compute(&mut self, inputs: &[Value]) -> Vec<Value> {
        vec![(self.f)(inputs); self.outputs]
    }
}

/// Consumes inputs and produces nothing observable (for blocks with no
/// output channels) or a running count (when it does have outputs).
#[derive(Debug, Default, Clone)]
pub struct Sink {
    consumed: u64,
    outputs: usize,
}

impl Sink {
    /// A sink with `outputs` (usually zero) output channels.
    pub fn new(outputs: usize) -> Sink {
        Sink {
            consumed: 0,
            outputs,
        }
    }

    /// How many firings this sink has performed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

impl CoreModel for Sink {
    fn initial_outputs(&self) -> Vec<Value> {
        vec![0; self.outputs]
    }

    fn compute(&mut self, _inputs: &[Value]) -> Vec<Value> {
        self.consumed += 1;
        vec![self.consumed as Value; self.outputs]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_odd_generator_sequence() {
        let mut g = EvenOddGenerator::new();
        assert_eq!(g.initial_outputs(), vec![0, 1]);
        assert_eq!(g.compute(&[]), vec![2, 3]);
        assert_eq!(g.compute(&[]), vec![4, 5]);
    }

    #[test]
    fn adder_sums() {
        let mut a = Adder::new(2);
        assert_eq!(a.initial_outputs(), vec![0, 0]);
        assert_eq!(a.compute(&[3, 4]), vec![7, 7]);
    }

    #[test]
    fn sequence_source_repeats_tail() {
        let mut s = SequenceSource::new(vec![5, 6], 1);
        assert_eq!(s.initial_outputs(), vec![5]);
        assert_eq!(s.compute(&[]), vec![6]);
        assert_eq!(s.compute(&[]), vec![6]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sequence_panics() {
        let _ = SequenceSource::new(vec![], 1);
    }

    #[test]
    fn passthrough_forwards() {
        let mut p = Passthrough::new(2, 9);
        assert_eq!(p.initial_outputs(), vec![9, 9]);
        assert_eq!(p.compute(&[42]), vec![42, 42]);
    }

    #[test]
    fn map_core_applies_function() {
        let mut m = MapCore::new(1, 0, |xs: &[Value]| xs.iter().product());
        assert_eq!(m.compute(&[3, 5]), vec![15]);
        assert!(format!("{m:?}").contains("MapCore"));
    }

    #[test]
    fn sink_counts() {
        let mut s = Sink::new(0);
        s.compute(&[1]);
        s.compute(&[2]);
        assert_eq!(s.consumed(), 2);
        assert!(s.initial_outputs().is_empty());
    }
}
