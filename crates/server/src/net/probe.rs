//! Thread-free concurrent HTTP exchanges on one poller: health probes
//! against N peers at once, and hedged request races.
//!
//! The gateway uses [`probe_many`] to sweep every shard's `/healthz` in a
//! single poll set (previously N sequential blocking round trips) and
//! [`race`] to run a hedged primary/runner-up pair without spawning a
//! thread per attempt: the runner-up's connect is armed at the hedge
//! deadline and the first usable answer wins.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::http::Response;

use super::conn::{read_available, response_progress, ResponseProgress};
use super::poller::{Interest, Poller};
use super::sys::sys_connect_nonblocking_v4;

/// One request/response exchange in flight on a nonblocking stream.
struct Exchange {
    stream: TcpStream,
    wire: Vec<u8>,
    written: usize,
    buf: Vec<u8>,
    started: Instant,
    eof: bool,
}

impl Exchange {
    /// Starts the connect and queues `wire` for transmission.
    fn start(
        addr: SocketAddr,
        wire: Vec<u8>,
        v6_connect_timeout: Duration,
    ) -> io::Result<Exchange> {
        let stream = match addr {
            SocketAddr::V4(v4) => sys_connect_nonblocking_v4(&v4)?,
            SocketAddr::V6(_) => {
                // No raw nonblocking path for v6; a bounded blocking connect
                // keeps the rare case correct.
                let s = TcpStream::connect_timeout(&addr, v6_connect_timeout)?;
                s.set_nonblocking(true)?;
                s
            }
        };
        let _ = stream.set_nodelay(true);
        Ok(Exchange {
            stream,
            wire,
            written: 0,
            buf: Vec::new(),
            started: Instant::now(),
            eof: false,
        })
    }

    fn interest(&self) -> Interest {
        if self.written < self.wire.len() {
            Interest::BOTH
        } else {
            Interest::READ
        }
    }

    /// Advances the exchange; `Some` when it finished (either way).
    fn on_ready(
        &mut self,
        readable: bool,
        writable: bool,
        hangup: bool,
    ) -> Option<io::Result<Response>> {
        if writable || hangup {
            while self.written < self.wire.len() {
                match self.stream.write(&self.wire[self.written..]) {
                    Ok(0) => return Some(Err(io::ErrorKind::WriteZero.into())),
                    Ok(n) => self.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Some(Err(e)),
                }
            }
        }
        if readable || hangup {
            match read_available(&mut self.stream, &mut self.buf) {
                Ok((_, eof)) => self.eof |= eof,
                Err(e) => return Some(Err(e)),
            }
            match response_progress(&self.buf) {
                ResponseProgress::Complete { response, .. } => return Some(Ok(*response)),
                ResponseProgress::Violation(e) => return Some(Err(e)),
                ResponseProgress::Partial if self.eof => {
                    return Some(Err(io::ErrorKind::UnexpectedEof.into()));
                }
                ResponseProgress::Partial => {}
            }
        }
        None
    }
}

/// Probes every address with one `GET /healthz` round trip, all driven
/// concurrently by a single poller. `healthy[i]` is true iff address `i`
/// answered a complete 200 within `timeout`.
pub fn probe_many(addrs: &[SocketAddr], timeout: Duration) -> Vec<bool> {
    let Ok(mut poller) = Poller::new() else {
        return vec![false; addrs.len()];
    };
    let mut wire = Vec::new();
    let _ = crate::http::write_request(&mut wire, "GET", "/healthz", b"");
    let mut exchanges: Vec<Option<Exchange>> = Vec::with_capacity(addrs.len());
    let mut healthy = vec![false; addrs.len()];
    for (i, addr) in addrs.iter().enumerate() {
        match Exchange::start(*addr, wire.clone(), timeout) {
            Ok(ex) => {
                if poller
                    .register(ex.stream.as_raw_fd(), i, ex.interest())
                    .is_ok()
                {
                    exchanges.push(Some(ex));
                } else {
                    exchanges.push(None);
                }
            }
            Err(_) => exchanges.push(None),
        }
    }
    let deadline = Instant::now() + timeout;
    let mut open = exchanges.iter().filter(|e| e.is_some()).count();
    let mut events = Vec::new();
    while open > 0 {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if poller.wait(&mut events, Some(deadline - now)).is_err() {
            break;
        }
        for ev in &events {
            let slot = ev.token;
            let Some(ex) = exchanges.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let before = ex.interest();
            if let Some(outcome) = ex.on_ready(ev.readable, ev.writable, ev.hangup) {
                healthy[slot] = matches!(outcome, Ok(r) if r.status == 200);
                poller.deregister(ex.stream.as_raw_fd());
                exchanges[slot] = None;
                open -= 1;
                continue;
            }
            let after = ex.interest();
            if after != before {
                let fd = ex.stream.as_raw_fd();
                let _ = poller.modify(fd, slot, after);
            }
        }
    }
    healthy
}

/// One leg of a hedged race.
pub struct RaceAttempt {
    /// Where to connect.
    pub addr: SocketAddr,
    /// The fully rendered request bytes to send.
    pub wire: Vec<u8>,
    /// Don't start this leg before `delay` has elapsed (the hedge
    /// deadline for the runner-up; zero for the primary).
    pub delay: Duration,
}

/// What happened to one race leg.
pub enum RaceOutcome {
    /// A complete response arrived `elapsed` after this leg started.
    Response {
        /// The parsed response.
        response: Response,
        /// Time from this leg's connect to its complete response.
        elapsed: Duration,
    },
    /// Transport or protocol failure.
    Failed,
    /// The race ended before this leg's delay expired, or was decided
    /// while the leg was still in flight (check [`RaceResult::launched`]
    /// to tell the two apart).
    NotStarted,
}

/// The result of [`race`].
pub struct RaceResult {
    /// Index of the first leg that produced a response whose status is not
    /// in the disqualify list.
    pub winner: Option<usize>,
    /// Per-leg outcomes, index-aligned with the attempts.
    pub outcomes: Vec<RaceOutcome>,
    /// Which legs actually started their connect. A launched leg can still
    /// end `NotStarted` when the race was decided while it was in flight —
    /// abandoned, not failed.
    pub launched: Vec<bool>,
}

/// Races request legs on one poller: each leg connects after its delay,
/// and the first complete response with a status outside `disqualify`
/// wins (remaining legs are abandoned — their connections just close).
/// Disqualified responses are still reported in the outcomes so the
/// caller can relay the least-bad answer when nobody wins.
pub fn race(attempts: Vec<RaceAttempt>, disqualify: &[u16], timeout: Duration) -> RaceResult {
    let mut outcomes: Vec<RaceOutcome> = attempts.iter().map(|_| RaceOutcome::NotStarted).collect();
    let Ok(mut poller) = Poller::new() else {
        return RaceResult {
            winner: None,
            outcomes,
            launched: vec![false; attempts.len()],
        };
    };
    let started = Instant::now();
    let deadline = started + timeout;
    let mut exchanges: Vec<Option<Exchange>> = attempts.iter().map(|_| None).collect();
    let mut launched = vec![false; attempts.len()];
    let mut pending = attempts.len();
    let mut events = Vec::new();
    loop {
        let now = Instant::now();
        // Launch every leg whose delay has expired.
        for (i, attempt) in attempts.iter().enumerate() {
            if launched[i] || now < started + attempt.delay {
                continue;
            }
            launched[i] = true;
            match Exchange::start(attempt.addr, attempt.wire.clone(), timeout) {
                Ok(ex) => {
                    if poller
                        .register(ex.stream.as_raw_fd(), i, ex.interest())
                        .is_ok()
                    {
                        exchanges[i] = Some(ex);
                    } else {
                        outcomes[i] = RaceOutcome::Failed;
                        pending -= 1;
                    }
                }
                Err(_) => {
                    outcomes[i] = RaceOutcome::Failed;
                    pending -= 1;
                }
            }
        }
        if pending == 0 || now >= deadline {
            // Anything still in flight at the deadline failed.
            for (i, ex) in exchanges.iter().enumerate() {
                if ex.is_some() {
                    outcomes[i] = RaceOutcome::Failed;
                }
            }
            return RaceResult {
                winner: None,
                outcomes,
                launched,
            };
        }
        let mut wait = deadline - now;
        for (i, attempt) in attempts.iter().enumerate() {
            if !launched[i] {
                let due = started + attempt.delay;
                wait = wait.min(due.saturating_duration_since(now));
            }
        }
        if poller.wait(&mut events, Some(wait)).is_err() {
            return RaceResult {
                winner: None,
                outcomes,
                launched,
            };
        }
        for ev in &events {
            let slot = ev.token;
            let Some(ex) = exchanges.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let before = ex.interest();
            if let Some(outcome) = ex.on_ready(ev.readable, ev.writable, ev.hangup) {
                let elapsed = ex.started.elapsed();
                poller.deregister(ex.stream.as_raw_fd());
                exchanges[slot] = None;
                pending -= 1;
                match outcome {
                    Ok(response) => {
                        let usable = !disqualify.contains(&response.status);
                        outcomes[slot] = RaceOutcome::Response { response, elapsed };
                        if usable {
                            return RaceResult {
                                winner: Some(slot),
                                outcomes,
                                launched,
                            };
                        }
                    }
                    Err(_) => outcomes[slot] = RaceOutcome::Failed,
                }
                continue;
            }
            let after = ex.interest();
            if after != before {
                let fd = ex.stream.as_raw_fd();
                let _ = poller.modify(fd, slot, after);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_request, write_request_with, write_response};
    use std::io::BufReader;
    use std::net::TcpListener;

    /// A tiny threaded responder: answers every request with `status` after
    /// `delay`, then closes.
    fn responder(status: u16, delay: Duration) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    if let Ok(Some(_)) = read_request(&mut reader) {
                        std::thread::sleep(delay);
                        let mut w = stream;
                        let _ = write_response(&mut w, status, "application/json", b"{}", false);
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn probe_many_separates_healthy_from_dead_and_unhealthy() {
        let ok = responder(200, Duration::ZERO);
        let sick = responder(503, Duration::ZERO);
        // A bound-but-never-accepting port: refused or timed out.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = l.local_addr().expect("addr");
            drop(l);
            addr
        };
        let healthy = probe_many(&[ok, sick, dead], Duration::from_secs(2));
        assert_eq!(healthy, vec![true, false, false]);
    }

    #[test]
    fn race_prefers_the_fast_leg_and_reports_the_laggard_unstarted() {
        let fast = responder(200, Duration::ZERO);
        let slow = responder(200, Duration::from_secs(5));
        let mut wire = Vec::new();
        write_request_with(
            &mut wire,
            "POST",
            "/analyze",
            &[("X-LIS-Request-Id", "r1")],
            b"{}",
        )
        .expect("render");
        let result = race(
            vec![
                RaceAttempt {
                    addr: fast,
                    wire: wire.clone(),
                    delay: Duration::ZERO,
                },
                RaceAttempt {
                    addr: slow,
                    wire,
                    delay: Duration::from_secs(3),
                },
            ],
            &[500, 502, 503, 504],
            Duration::from_secs(4),
        );
        assert_eq!(result.winner, Some(0));
        assert!(matches!(
            result.outcomes[0],
            RaceOutcome::Response { ref response, .. } if response.status == 200
        ));
        assert!(matches!(result.outcomes[1], RaceOutcome::NotStarted));
        assert_eq!(result.launched, vec![true, false]);
    }

    #[test]
    fn race_falls_to_the_hedge_when_the_primary_stalls_or_disqualifies() {
        let stalled = responder(503, Duration::ZERO);
        let healthy = responder(200, Duration::ZERO);
        let mut wire = Vec::new();
        write_request_with(&mut wire, "POST", "/analyze", &[], b"{}").expect("render");
        let result = race(
            vec![
                RaceAttempt {
                    addr: stalled,
                    wire: wire.clone(),
                    delay: Duration::ZERO,
                },
                RaceAttempt {
                    addr: healthy,
                    wire,
                    delay: Duration::from_millis(50),
                },
            ],
            &[500, 502, 503, 504],
            Duration::from_secs(3),
        );
        assert_eq!(result.winner, Some(1));
        assert_eq!(result.launched, vec![true, true]);
        // The disqualified primary answer is still available for relay.
        assert!(matches!(
            result.outcomes[0],
            RaceOutcome::Response { ref response, .. } if response.status == 503
        ));
    }
}
