//! Bottleneck and sensitivity analysis.
//!
//! Once the minimum cycle mean is known, a designer wants to know *where*
//! to spend buffering: which places lie on critical cycles, and which
//! single-token additions actually raise the throughput. This module
//! answers both questions exactly, by re-solving the MCM under
//! hypothetical token additions — O(|P|) MCM computations, cheap at LIS
//! scale and free of the false positives a purely structural analysis
//! would give (a place can lie on *a* critical cycle without being on
//! *all* of them). The per-place re-solves go through
//! [`crate::incremental::IncrementalMcm`], so only the touched component
//! is re-evaluated, warm-started from the previous Howard policy.

use crate::graph::{MarkedGraph, PlaceId};
use crate::incremental::IncrementalMcm;
use crate::mcm;
use crate::ratio::Ratio;

/// The sensitivity of the minimum cycle mean to one extra token on a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceSensitivity {
    /// The place examined.
    pub place: PlaceId,
    /// The minimum cycle mean after adding one token there.
    pub mean_after: Ratio,
    /// Whether the addition strictly raises the minimum cycle mean — i.e.
    /// the place lies on **every** minimum-mean cycle.
    pub improves: bool,
}

/// Computes, for every place, the minimum cycle mean after one extra token
/// on that place.
///
/// Returns an empty vector for acyclic graphs (nothing limits throughput).
///
/// # Examples
///
/// In a single ring every place is a bottleneck; with two token-disjoint
/// critical cycles no single place is:
///
/// ```
/// use marked_graph::{sensitivity::token_sensitivity, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// g.add_place(a, b, 1);
/// g.add_place(b, a, 0);
/// let report = token_sensitivity(&g);
/// assert!(report.iter().all(|s| s.improves));
/// ```
pub fn token_sensitivity(graph: &MarkedGraph) -> Vec<PlaceSensitivity> {
    let mut inc = IncrementalMcm::new(graph);
    let Some(base) = inc.base_mean() else {
        return Vec::new();
    };
    graph
        .place_ids()
        .map(|p| {
            // One extra token on `p`: only p's component is re-solved,
            // warm-started; every other component reuses its base mean.
            let mean_after = inc
                .mcm_with_tokens(&[(p, graph.tokens(p) + 1)])
                .expect("graph still cyclic");
            PlaceSensitivity {
                place: p,
                mean_after,
                improves: mean_after > base,
            }
        })
        .collect()
}

/// The places whose single-token increment strictly raises the minimum
/// cycle mean — the true bottlenecks (places on *every* critical cycle).
///
/// Computed structurally via [`IncrementalMcm::bottlenecks_with_tokens`]:
/// a token on `p` leaves every cycle avoiding `p` unchanged, so `p` is a
/// bottleneck iff the tight subgraph of minimum-mean cycles minus `p` is
/// acyclic — one solve per component and a few DFS passes, identical in
/// output to probing every place but with no per-place re-solves.
///
/// # Examples
///
/// ```
/// use marked_graph::{sensitivity::bottleneck_places, MarkedGraph};
///
/// // Two rings sharing the place (a -> b): only the shared place is a
/// // bottleneck when both rings are equally critical.
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let c = g.add_transition("C");
/// let d = g.add_transition("D");
/// let shared = g.add_place(a, b, 1);
/// g.add_place(b, c, 0);
/// g.add_place(c, a, 0);
/// g.add_place(b, d, 0);
/// g.add_place(d, a, 0);
/// assert_eq!(bottleneck_places(&g), vec![shared]);
/// ```
pub fn bottleneck_places(graph: &MarkedGraph) -> Vec<PlaceId> {
    IncrementalMcm::new(graph).bottlenecks_with_tokens(&[])
}

/// All places lying on at least one minimum-mean cycle ("critical places").
///
/// A place `p` is critical iff some cycle through `p` has mean equal to the
/// minimum. The exact test runs per place: under reduced weights
/// `r(e) = den·w(e) − num`, every cycle has nonnegative total and the
/// critical ones total zero; a zero-total closed walk through `p`
/// decomposes into elementary cycles that must each be tight, one of which
/// contains `p`. So `p` is critical iff the shortest reduced-weight path
/// from `target(p)` back to `source(p)` plus `r(p)` is zero.
///
/// # Examples
///
/// ```
/// use marked_graph::{sensitivity::critical_places, MarkedGraph};
///
/// let mut g = MarkedGraph::new();
/// let a = g.add_transition("A");
/// let b = g.add_transition("B");
/// let p1 = g.add_place(a, b, 1);
/// let p2 = g.add_place(b, a, 0);
/// // A second, slack ring through c is not critical.
/// let c = g.add_transition("C");
/// g.add_place(a, c, 5);
/// g.add_place(c, a, 5);
/// assert_eq!(critical_places(&g), vec![p1, p2]);
/// ```
pub fn critical_places(graph: &MarkedGraph) -> Vec<PlaceId> {
    let Some(base) = mcm::howard(graph) else {
        return Vec::new();
    };
    graph
        .place_ids()
        .filter(|&p| cycle_through_place_with_mean(graph, p, base))
        .collect()
}

/// Whether some cycle through `p` has mean exactly `mean`. Exact, via
/// shortest-path potentials on reduced weights restricted to p's SCC.
fn cycle_through_place_with_mean(graph: &MarkedGraph, p: PlaceId, mean: Ratio) -> bool {
    use crate::scc::SccDecomposition;
    let scc = SccDecomposition::compute(graph);
    let s = scc.component_of(graph.source(p));
    if s != scc.component_of(graph.target(p)) {
        return false;
    }
    // Reduced weight r(e) = den*w - num >= 0 around every cycle; a cycle
    // through p with mean == `mean` exists iff the shortest reduced-weight
    // path from target(p) back to source(p) within the SCC equals -r(p)...
    // i.e. dist(target -> source) + r(p) == 0.
    let members: Vec<_> = scc.members(s).to_vec();
    let index: std::collections::HashMap<_, _> =
        members.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = members.len();
    let num = mean.numer();
    let den = mean.denom();
    let reduced = |w: u64| den * w as i64 - num;
    let mut dist = vec![i64::MAX; n];
    dist[index[&graph.target(p)]] = 0;
    for _ in 0..n {
        let mut changed = false;
        for (i, &t) in members.iter().enumerate() {
            if dist[i] == i64::MAX {
                continue;
            }
            for &out in graph.outputs(t) {
                let Some(&j) = index.get(&graph.target(out)) else {
                    continue;
                };
                let cand = dist[i] + reduced(graph.tokens(out));
                if cand < dist[j] {
                    dist[j] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let back = dist[index[&graph.source(p)]];
    back != i64::MAX && back + reduced(graph.tokens(p)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_no_bottlenecks() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        assert!(token_sensitivity(&g).is_empty());
        assert!(bottleneck_places(&g).is_empty());
        assert!(critical_places(&g).is_empty());
    }

    #[test]
    fn single_ring_every_place_critical_and_bottleneck() {
        let mut g = MarkedGraph::new();
        let ts: Vec<_> = (0..4).map(|i| g.add_transition(format!("t{i}"))).collect();
        for i in 0..4 {
            g.add_place(ts[i], ts[(i + 1) % 4], u64::from(i == 0));
        }
        assert_eq!(bottleneck_places(&g).len(), 4);
        assert_eq!(critical_places(&g).len(), 4);
    }

    #[test]
    fn slack_ring_is_not_critical() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let p1 = g.add_place(a, b, 0);
        let p2 = g.add_place(b, a, 1);
        let p3 = g.add_place(a, c, 3);
        let p4 = g.add_place(c, a, 3);
        let crit = critical_places(&g);
        assert!(crit.contains(&p1));
        assert!(crit.contains(&p2));
        assert!(!crit.contains(&p3));
        assert!(!crit.contains(&p4));
    }

    #[test]
    fn two_disjoint_critical_rings_have_no_bottleneck() {
        // Both rings at mean 1/2: improving one leaves the other limiting.
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        g.add_place(a, b, 1);
        g.add_place(b, a, 0);
        g.add_place(c, d, 1);
        g.add_place(d, c, 0);
        assert!(bottleneck_places(&g).is_empty());
        // ...but every place is critical (on some minimum cycle).
        assert_eq!(critical_places(&g).len(), 4);
    }

    #[test]
    fn shared_place_is_the_only_bottleneck() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        let c = g.add_transition("C");
        let d = g.add_transition("D");
        let shared = g.add_place(a, b, 1);
        g.add_place(b, c, 0);
        g.add_place(c, a, 0);
        g.add_place(b, d, 0);
        g.add_place(d, a, 0);
        assert_eq!(bottleneck_places(&g), vec![shared]);
        assert_eq!(critical_places(&g).len(), 5);
    }

    #[test]
    fn sensitivity_reports_new_means() {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("A");
        let b = g.add_transition("B");
        g.add_place(a, b, 1);
        g.add_place(b, a, 0);
        for s in token_sensitivity(&g) {
            assert_eq!(s.mean_after, Ratio::ONE);
            assert!(s.improves);
        }
    }

    #[test]
    fn structural_bottlenecks_agree_with_exhaustive_probing() {
        // The tight-subgraph computation must match probing every place
        // with a re-solve, on random graphs and random token overrides.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(27);
        for trial in 0..40 {
            let n = rng.gen_range(2..9);
            let mut g = MarkedGraph::new();
            let ts: Vec<_> = (0..n).map(|i| g.add_transition(format!("t{i}"))).collect();
            let mut places = Vec::new();
            for i in 0..n {
                places.push(g.add_place(ts[i], ts[(i + 1) % n], rng.gen_range(0..3)));
            }
            for _ in 0..rng.gen_range(0..2 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                places.push(g.add_place(ts[u], ts[v], rng.gen_range(0..3)));
            }
            // Base marking: against the probe-everything oracle.
            let expected = {
                let mut probe = IncrementalMcm::new(&g);
                let base = probe.base_mean().expect("ring is cyclic");
                places
                    .iter()
                    .copied()
                    .filter(|&p| {
                        probe
                            .mcm_with_tokens(&[(p, g.tokens(p) + 1)])
                            .expect("still cyclic")
                            > base
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(bottleneck_places(&g), expected, "trial {trial}\n{g:?}");
            // Random overrides: the incremental entry point against the
            // oracle probing on top of the same overrides.
            for _ in 0..5 {
                let k = rng.gen_range(0..3usize);
                let overrides: Vec<(PlaceId, u64)> = (0..k)
                    .map(|_| {
                        (
                            places[rng.gen_range(0..places.len())],
                            rng.gen_range(0..4u64),
                        )
                    })
                    .collect();
                let mut inc = IncrementalMcm::new(&g);
                let base = inc.mcm_with_tokens(&overrides).expect("still cyclic");
                let tokens_at = |p: PlaceId| {
                    overrides
                        .iter()
                        .rev()
                        .find_map(|&(op, t)| (op == p).then_some(t))
                        .unwrap_or_else(|| g.tokens(p))
                };
                let expected: Vec<PlaceId> = places
                    .iter()
                    .copied()
                    .filter(|&p| {
                        let mut probe = overrides.clone();
                        probe.push((p, tokens_at(p) + 1));
                        inc.mcm_with_tokens(&probe).expect("still cyclic") > base
                    })
                    .collect();
                assert_eq!(
                    inc.bottlenecks_with_tokens(&overrides),
                    expected,
                    "trial {trial} overrides {overrides:?}\n{g:?}"
                );
            }
        }
    }

    #[test]
    fn critical_agrees_with_enumeration_on_random_graphs() {
        use crate::cycles::elementary_cycles;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..30 {
            let n = rng.gen_range(2..8);
            let mut g = MarkedGraph::new();
            let ts: Vec<_> = (0..n).map(|i| g.add_transition(format!("t{i}"))).collect();
            for i in 0..n {
                g.add_place(ts[i], ts[(i + 1) % n], rng.gen_range(0..3));
            }
            for _ in 0..rng.gen_range(0..n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                g.add_place(ts[u], ts[v], rng.gen_range(0..3));
            }
            let base = match mcm::karp(&g) {
                Some(m) => m,
                None => continue,
            };
            let cycles = elementary_cycles(&g, 100_000).expect("bounded");
            let mut expected: Vec<PlaceId> = cycles
                .iter()
                .filter(|c| g.cycle_mean(c) == base)
                .flat_map(|c| c.iter().copied())
                .collect();
            expected.sort();
            expected.dedup();
            let mut got = critical_places(&g);
            got.sort();
            assert_eq!(got, expected, "trial {trial}\n{g:?}");
        }
    }
}
