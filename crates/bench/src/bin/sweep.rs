//! Measures the batch advantage of `/sweep` over individual round trips
//! and records it in `results/sweep_speedup.txt`.
//!
//! One design-space grid (four capacity axes x four values = 256 points on
//! a generated netlist), evaluated two ways against fresh daemons:
//!
//! 1. a single `POST /sweep` — one parse, one plan, warm per-component
//!    incremental solvers shared across the grid, rows streamed back;
//! 2. 256 individual `POST /analyze` round trips, one per reconstructed
//!    per-point netlist — each a cold parse + model build + MCM solve.
//!
//! Each daemon gets a few untimed warmup requests first (on a capacity
//! outside the grid's value set, so nothing measured is ever pre-cached).
//!
//! Every streamed row is asserted **byte-identical** to its single-shot
//! answer before any number is recorded, so the speedup is for the exact
//! same payload.
//!
//! Flags: `--quick` (smaller base system — the CI smoke mode),
//! `--min-speedup X` (gate; exit 1 below it), `--axes N`, `--seed S`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lis_core::to_netlist;
use lis_gen::{generate, GeneratorConfig, InsertionPolicy};
use lis_server::wire::{obj, Json};
use lis_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OUT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/sweep_speedup.txt"
);

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"));
            v.parse()
                .unwrap_or_else(|e| panic!("{name}: {e} (got {v:?})"))
        }
    }
}

struct Daemon {
    addr: std::net::SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<lis_server::DrainReport>>,
}

fn start() -> Daemon {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr");
    let handle = std::thread::spawn(move || server.run());
    Daemon { addr, handle }
}

fn stop(daemon: Daemon) {
    let mut client = Client::connect(daemon.addr).expect("connect for shutdown");
    assert_eq!(client.shutdown().expect("shutdown"), 200);
    daemon
        .handle
        .join()
        .expect("daemon thread")
        .expect("clean exit");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let axes_n: usize = arg(&args, "--axes", 4);
    let seed: u64 = arg(&args, "--seed", 11);
    let min_speedup: f64 = arg(&args, "--min-speedup", 0.0);

    // The base system: a generated SoC, large enough that one cold
    // analysis has real work in it.
    let cfg = GeneratorConfig {
        vertices: if quick { 40 } else { 120 },
        sccs: if quick { 3 } else { 6 },
        min_cycles_per_scc: 3,
        relay_stations: 4,
        reconvergent_paths: true,
        policy: InsertionPolicy::Scc,
        extra_inter_edges: None,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let sys = generate(&cfg, &mut rng).system;
    let netlist = to_netlist(&sys);
    assert!(sys.channel_count() >= axes_n, "base system too small");

    // The grid: `axes_n` capacity axes x 4 values — 64 points at the
    // default 3 axes.
    let values = [1u64, 2, 4, 8];
    let axes: Vec<Json> = (0..axes_n)
        .map(|c| {
            obj([
                ("channel", Json::Num(c as f64)),
                (
                    "values",
                    Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect()),
                ),
            ])
        })
        .collect();
    let options = obj([("capacities", Json::Arr(axes))]);
    let expected_points = values.len().pow(axes_n as u32);

    // Warmup body: channel 0 at capacity 3 — a value outside the grid's
    // {1,2,4,8}, so no measured request is ever answered from a cache the
    // warmup populated. A few untimed round trips spin up the CPU clock,
    // allocator, and TCP path on both daemons alike.
    let warmup_body = {
        let mut modified = sys.clone();
        let c = modified.channel_ids().next().expect("channel id");
        modified.set_queue_capacity(c, 3).expect("set capacity");
        obj([("netlist", Json::str(to_netlist(&modified)))]).to_string()
    };
    let warmup = |client: &mut Client| {
        for _ in 0..3 {
            let resp = client
                .request("POST", "/analyze", warmup_body.as_bytes())
                .expect("warmup analyze");
            assert_eq!(resp.status, 200);
        }
    };

    // Phase 1 — one batched /sweep against a fresh daemon.
    eprintln!("phase 1: one /sweep over {expected_points} points");
    let sweep_daemon = start();
    let mut client = Client::connect(sweep_daemon.addr).expect("connect");
    warmup(&mut client);
    let started = Instant::now();
    let (status, body) = client.sweep(&netlist, options).expect("sweep");
    let t_sweep = started.elapsed();
    assert_eq!(
        status,
        200,
        "sweep failed: {}",
        String::from_utf8_lossy(&body)
    );
    drop(client);
    stop(sweep_daemon);

    let text = String::from_utf8(body).expect("utf-8 ndjson");
    let mut lines = text.lines();
    let header = Json::parse(lines.next().expect("header")).expect("header json");
    let points = header.get("points").unwrap().as_u64().expect("points") as usize;
    assert_eq!(points, expected_points);
    let rows: Vec<Json> = (0..points)
        .map(|_| Json::parse(lines.next().expect("row")).expect("row json"))
        .collect();
    let trailer = Json::parse(lines.next().expect("trailer")).expect("trailer json");
    let warm_hits = trailer.get("warm_hits").unwrap().as_u64().unwrap_or(0);

    // Reconstruct each per-point netlist outside any timed window: the
    // individual phase times only what a client would actually send.
    let bodies: Vec<String> = rows
        .iter()
        .map(|row| {
            let mut modified = sys.clone();
            if let Some(Json::Arr(caps)) = row.get("capacities") {
                for cap in caps {
                    let idx = cap.get("channel").unwrap().as_u64().expect("channel") as usize;
                    let q = cap.get("capacity").unwrap().as_u64().expect("capacity");
                    let c = modified.channel_ids().nth(idx).expect("channel id");
                    modified.set_queue_capacity(c, q).expect("set capacity");
                }
            }
            obj([("netlist", Json::str(to_netlist(&modified)))]).to_string()
        })
        .collect();

    // Phase 2 — the same grid as individual round trips against a second
    // fresh daemon (its own cold cache), on one keep-alive connection.
    eprintln!("phase 2: {points} individual /analyze round trips");
    let single_daemon = start();
    let mut client = Client::connect(single_daemon.addr).expect("connect");
    warmup(&mut client);
    let started = Instant::now();
    let singles: Vec<Vec<u8>> = bodies
        .iter()
        .map(|b| {
            let resp = client
                .request("POST", "/analyze", b.as_bytes())
                .expect("individual analyze");
            assert_eq!(resp.status, 200);
            resp.body
        })
        .collect();
    let t_single = started.elapsed();
    drop(client);
    stop(single_daemon);

    // Byte identity, point by point, before any number is reported.
    for (i, (row, single)) in rows.iter().zip(&singles).enumerate() {
        assert_eq!(
            row.get("result").unwrap().to_string(),
            String::from_utf8_lossy(single),
            "point {i} diverged from its single-shot round trip"
        );
    }

    let speedup = t_single.as_secs_f64() / t_sweep.as_secs_f64();
    let per_point = |d: Duration| d.as_secs_f64() * 1e3 / points as f64;
    let mut report = String::new();
    writeln!(
        report,
        "Batched /sweep vs individual round trips\n\
         ========================================\n\
         {points}-point design-space grid ({axes_n} capacity axes x {} values) on a\n\
         generated netlist ({} blocks, {} channels, seed {seed}); both phases run\n\
         against fresh single-process daemons over real TCP, and every streamed\n\
         row is asserted byte-identical to its single-shot answer first.\n\
         Regenerate with:\n\
         \x20   cargo run --release -p lis-bench --bin sweep\n",
        values.len(),
        sys.block_count(),
        sys.channel_count(),
    )
    .expect("write to String");
    writeln!(
        report,
        "one POST /sweep:          {:>10.3} ms  ({:>7.3} ms/point, {warm_hits} warm memo hits)\n\
         {points:>3} x POST /analyze:      {:>10.3} ms  ({:>7.3} ms/point, cold each)\n\
         speedup:                  {speedup:>10.2}x",
        t_sweep.as_secs_f64() * 1e3,
        per_point(t_sweep),
        t_single.as_secs_f64() * 1e3,
        per_point(t_single),
    )
    .expect("write to String");

    std::fs::write(OUT_PATH, &report).expect("write results/sweep_speedup.txt");
    print!("{report}");
    eprintln!("\nwrote {OUT_PATH}");

    if speedup < min_speedup {
        eprintln!("FAIL: sweep speedup {speedup:.2}x below the required {min_speedup:.2}x");
        std::process::exit(1);
    }
}
