//! Property tests for the durable result store.
//!
//! * **Model equivalence** — arbitrary interleavings of inserts (fresh
//!   keys, overwrites, capacity-evicting streams) and reopens must leave
//!   the store indistinguishable from a trivial in-memory model (a
//!   `HashMap` plus a FIFO queue with the same capacity rule): same live
//!   keys in the same eviction order, byte-identical bodies. Reopens in
//!   the middle of a sequence prove recovery round-trips the *exact*
//!   state, order included.
//! * **Truncation recovery** — records are fixed-width, so cutting the
//!   index log at an arbitrary byte must recover exactly `cut /
//!   RECORD_LEN` inserts — the longest checksummed prefix — with nothing
//!   quarantined and nothing torn.
//! * **Garbage tails** — appending arbitrary non-record bytes to the log
//!   must cost only the garbage: every committed entry survives reopen.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lis_server::store::{RECORD_LEN, RECORD_MAGIC};
use lis_server::{CacheKey, ResultStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Store capacity under test: small enough that random sequences hit the
/// GC path constantly.
const CAPACITY: usize = 6;
/// Key pool: > capacity so evicted keys get reinserted (the
/// remove-then-reinsert order case), small enough for collisions.
const SLOTS: u64 = 10;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lis-store-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn key_for(slot: u64) -> CacheKey {
    CacheKey {
        system: mix(slot),
        request: mix(slot ^ 0xc2b2_ae35),
    }
}

/// Body content is a function of (slot, tag): overwrites with a new tag
/// change the bytes, replays with the same tag are idempotent.
fn body_for(slot: u64, tag: u8) -> Vec<u8> {
    let h = mix(slot.wrapping_mul(257).wrapping_add(u64::from(tag)));
    let len = 1 + (h % 96) as usize;
    (0..len).map(|j| (mix(h ^ j as u64) & 0xff) as u8).collect()
}

#[derive(Clone, Debug)]
enum Op {
    Insert { slot: u64, tag: u8 },
    Reopen,
}

struct OpSeq;

impl Strategy for OpSeq {
    type Value = Vec<Op>;
    fn generate(&self, rng: &mut StdRng) -> Vec<Op> {
        let len = rng.gen_range(1..40usize);
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    Op::Reopen
                } else {
                    Op::Insert {
                        slot: rng.gen_range(0..SLOTS),
                        tag: rng.gen_range(0..8u8),
                    }
                }
            })
            .collect()
    }
}

/// The in-memory reference: what a correct bounded FIFO map does.
#[derive(Default)]
struct Model {
    map: HashMap<CacheKey, (u16, Vec<u8>)>,
    order: VecDeque<CacheKey>,
}

impl Model {
    fn insert(&mut self, key: CacheKey, status: u16, body: Vec<u8>) {
        if self.map.insert(key, (status, body)).is_none() {
            self.order.push_back(key);
            while self.map.len() > CAPACITY {
                let oldest = self.order.pop_front().expect("order tracks map");
                self.map.remove(&oldest);
            }
        }
    }
}

fn assert_store_matches(store: &ResultStore, model: &Model, context: &str) {
    assert_eq!(store.len(), model.map.len(), "{context}: live-entry count");
    let order: Vec<CacheKey> = model.order.iter().copied().collect();
    assert_eq!(store.keys(), order, "{context}: FIFO order");
    for (key, (status, body)) in &model.map {
        let got = store
            .get(*key)
            .unwrap_or_else(|| panic!("{context}: live key {key:?} missing"));
        assert_eq!(got.status, *status, "{context}: status for {key:?}");
        assert_eq!(&got.body, body, "{context}: body for {key:?}");
    }
    assert_eq!(
        store.quarantined(),
        0,
        "{context}: clean runs quarantine nothing"
    );
}

/// Record sizes and cut points for the truncation property.
struct TruncCase;

impl Strategy for TruncCase {
    type Value = (u64, u64);
    fn generate(&self, rng: &mut StdRng) -> (u64, u64) {
        let records = rng.gen_range(1..24u64);
        let cut = rng.gen_range(0..=records * RECORD_LEN as u64);
        (records, cut)
    }
}

/// Arbitrary bytes appended past the last committed record.
struct GarbageTail;

impl Strategy for GarbageTail {
    type Value = Vec<u8>;
    fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        let len = rng.gen_range(1..80usize);
        let mut tail: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
        // The replay stops at the first invalid record; force the tail's
        // first byte off the record magic so "garbage" is guaranteed to
        // be garbage rather than a one-in-2^32 valid record.
        if tail[0] == RECORD_MAGIC {
            tail[0] ^= 0xff;
        }
        tail
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn insert_gc_reopen_interleavings_match_the_in_memory_model(ops in OpSeq) {
        let dir = scratch("model");
        let mut store = ResultStore::open(&dir, CAPACITY).expect("open");
        let mut model = Model::default();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Insert { slot, tag } => {
                    let body = body_for(*slot, *tag);
                    store
                        .insert(key_for(*slot), 200, &body)
                        .expect("insert");
                    model.insert(key_for(*slot), 200, body);
                }
                Op::Reopen => {
                    drop(store);
                    store = ResultStore::open(&dir, CAPACITY).expect("reopen");
                    assert_store_matches(&store, &model, &format!("after reopen at op {i}"));
                }
            }
        }
        assert_store_matches(&store, &model, "at end of sequence");
        drop(store);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn arbitrary_tail_cuts_recover_exactly_the_checksummed_prefix(case in TruncCase) {
        let (records, cut) = case;
        let dir = scratch("trunc");
        {
            let store = ResultStore::open(&dir, 0).expect("open");
            for i in 0..records {
                store
                    .insert(key_for(1000 + i), 200, &body_for(1000 + i, 0))
                    .expect("insert");
            }
        }
        let log = fs::OpenOptions::new()
            .write(true)
            .open(dir.join("index.log"))
            .expect("open log");
        log.set_len(cut).expect("truncate");
        drop(log);

        let store = ResultStore::open(&dir, 0).expect("reopen");
        let survivors = cut / RECORD_LEN as u64;
        assert_eq!(store.len() as u64, survivors, "cut at {cut} of {records} records");
        for i in 0..survivors {
            let got = store.get(key_for(1000 + i)).expect("prefix entry survives");
            assert_eq!(got.body, body_for(1000 + i, 0), "prefix entry byte-identical");
        }
        assert!(store.get(key_for(1000 + survivors)).is_none(), "no torn record served");
        assert_eq!(store.quarantined(), 0);
        drop(store);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn garbage_appended_to_the_log_costs_only_the_garbage(tail in GarbageTail) {
        let dir = scratch("garbage");
        let records = 5u64;
        {
            let store = ResultStore::open(&dir, 0).expect("open");
            for i in 0..records {
                store
                    .insert(key_for(2000 + i), 200, &body_for(2000 + i, 1))
                    .expect("insert");
            }
        }
        {
            use std::io::Write as _;
            let mut log = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("index.log"))
                .expect("open log");
            log.write_all(&tail).expect("append garbage");
        }
        let store = ResultStore::open(&dir, 0).expect("reopen");
        assert_eq!(store.len() as u64, records, "garbage tail must not eat records");
        assert_eq!(store.truncated_bytes(), tail.len() as u64);
        for i in 0..records {
            let got = store.get(key_for(2000 + i)).expect("entry survives");
            assert_eq!(got.body, body_for(2000 + i, 1));
        }
        drop(store);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
