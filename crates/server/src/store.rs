//! The durable, content-addressed result store behind [`ResultCache`].
//!
//! Carloni's observation makes persistence semantically free: a correct
//! analysis answer is a pure function of the canonical netlist and the
//! request kind, so the in-memory cache key ([`CacheKey`]) is already a
//! durable content address. This module spills finished responses to disk
//! under that address and warm-loads them on startup, converting a
//! SIGKILL + respawn from "recompute everything" into "serve warm".
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! store/
//!   index.log              append-only record log, 32-byte checksummed
//!                          records, fsync'd on append
//!   entries/<xx>/<key>     one file per cached response body, written
//!                          tmp-then-rename (xx = first hash byte, hex)
//!   quarantine/            entries that failed validation, kept for
//!                          forensics instead of being trusted or deleted
//! ```
//!
//! Crash consistency is by write ordering, not locks:
//!
//! 1. The entry body is written to a `.tmp` file, fsync'd, and renamed
//!    into place **before** its index record is appended. An index record
//!    therefore never points at a missing or partial entry file.
//! 2. Index records carry a CRC32 over themselves; [`ResultStore::open`]
//!    replays the **longest checksummed prefix** of the log and truncates
//!    any torn tail a crash left behind.
//! 3. Entry bodies carry their own length + CRC32 in the index record;
//!    a mismatched body is quarantined (moved aside and counted), never
//!    returned.
//!
//! The store itself is synchronous. [`Spiller`] wraps it in a bounded
//! write-behind queue so cache inserts never wait on `fsync`; a drain
//! flushes the queue (see `DrainReport::spilled`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cache::{CacheKey, CachedResponse};

/// Size of one index-log record, in bytes. Records are fixed-width, so a
/// truncation at byte `b` recovers exactly `b / RECORD_LEN` records —
/// the property the store's proptests pin down.
pub const RECORD_LEN: usize = 32;

/// First byte of every index record (torn/garbage tails fail this first).
pub const RECORD_MAGIC: u8 = 0xA5;

/// Record op: the keyed entry was inserted.
const OP_INSERT: u8 = 1;

/// Record op: the keyed entry was removed (GC or quarantine).
const OP_REMOVE: u8 = 2;

/// Pending spills beyond this are dropped (and counted) instead of
/// buffering unboundedly while the disk lags.
const SPILL_QUEUE_LIMIT: u64 = 4096;

/// CRC32 (IEEE, reflected) lookup table, built at compile time — the
/// workspace is fully offline, so the checksum is hand-rolled.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum guarding both index records and
/// entry bodies. Public so tests can author (and corrupt) store files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Renders a cache key as the store's canonical hex spelling
/// (`<system 16 hex>-<request 16 hex>`), used for entry file names and
/// the `X-LIS-Cache-Key` response header.
pub fn key_hex(key: CacheKey) -> String {
    format!("{:016x}-{:016x}", key.system, key.request)
}

/// Parses the canonical hex spelling produced by [`key_hex`].
pub fn parse_key_hex(text: &str) -> Option<CacheKey> {
    let (system, request) = text.split_once('-')?;
    if system.len() != 16 || request.len() != 16 {
        return None;
    }
    Some(CacheKey {
        system: u64::from_str_radix(system, 16).ok()?,
        request: u64::from_str_radix(request, 16).ok()?,
    })
}

/// Index metadata for one stored entry: enough to validate the entry file
/// without trusting its content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryMeta {
    /// HTTP status of the original computation.
    pub status: u16,
    /// Exact body length in bytes.
    pub len: u32,
    /// CRC32 of the body bytes.
    pub crc: u32,
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4-byte slice"))
}

/// Encodes one fixed-width index record.
fn encode_record(op: u8, key: CacheKey, meta: EntryMeta) -> [u8; RECORD_LEN] {
    let mut rec = [0u8; RECORD_LEN];
    rec[0] = RECORD_MAGIC;
    rec[1] = op;
    rec[2..10].copy_from_slice(&key.system.to_le_bytes());
    rec[10..18].copy_from_slice(&key.request.to_le_bytes());
    rec[18..20].copy_from_slice(&meta.status.to_le_bytes());
    rec[20..24].copy_from_slice(&meta.len.to_le_bytes());
    rec[24..28].copy_from_slice(&meta.crc.to_le_bytes());
    let sum = crc32(&rec[..28]);
    rec[28..32].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// Decodes one record that already passed the magic + CRC checks.
fn decode_record(rec: &[u8]) -> (u8, CacheKey, EntryMeta) {
    let key = CacheKey {
        system: read_u64(&rec[2..10]),
        request: read_u64(&rec[10..18]),
    };
    let meta = EntryMeta {
        status: u16::from_le_bytes(rec[18..20].try_into().expect("2-byte slice")),
        len: read_u32(&rec[20..24]),
        crc: read_u32(&rec[24..28]),
    };
    (rec[1], key, meta)
}

/// Whether a record slice is complete, magic-tagged, and checksummed.
fn record_valid(rec: &[u8]) -> bool {
    rec.len() >= RECORD_LEN && rec[0] == RECORD_MAGIC && crc32(&rec[..28]) == read_u32(&rec[28..32])
}

/// Best-effort directory fsync so a rename survives power loss, not just
/// SIGKILL. Failures are ignored: not every platform lets a directory be
/// opened for syncing, and the kill-based crash harness does not need it.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[derive(Debug)]
struct StoreInner {
    log: File,
    index: HashMap<CacheKey, EntryMeta>,
    /// Insertion (FIFO eviction) order of the live keys.
    order: VecDeque<CacheKey>,
    /// Total body bytes of the live entries.
    bytes: u64,
}

/// The durable content-addressed store. Thread-safe; cheap to share via
/// `Arc`. All mutation is serialized under one mutex — the hot path stays
/// in RAM ([`ResultCache`]); the store only sees spills, warm loads, and
/// replication reads.
///
/// [`ResultCache`]: crate::cache::ResultCache
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_entries: usize,
    inner: Mutex<StoreInner>,
    spills: AtomicU64,
    disk_hits: AtomicU64,
    warm_loaded: AtomicU64,
    quarantined: AtomicU64,
    gc_evictions: AtomicU64,
    truncated_bytes: AtomicU64,
    write_errors: AtomicU64,
}

impl ResultStore {
    /// Opens (or creates) a store at `dir`, recovering the longest
    /// checksummed prefix of the index log, quarantining entries that fail
    /// validation, sweeping `.tmp` and orphaned entry files, and enforcing
    /// `max_entries` (0 = unbounded).
    ///
    /// Never panics on hostile on-disk state: torn tails are truncated,
    /// bad records stop the replay, and bad entries are quarantined with
    /// a counted metric.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating directories or opening the log.
    pub fn open(dir: impl Into<PathBuf>, max_entries: usize) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("entries"))?;
        fs::create_dir_all(dir.join("quarantine"))?;
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("index.log"))?;
        let mut raw = Vec::new();
        log.read_to_end(&mut raw)?;

        // Longest checksummed prefix: stop at the first torn/invalid record.
        let mut valid = 0usize;
        while valid + RECORD_LEN <= raw.len() && record_valid(&raw[valid..valid + RECORD_LEN]) {
            valid += RECORD_LEN;
        }
        let truncated = (raw.len() - valid) as u64;
        if truncated > 0 {
            log.set_len(valid as u64)?;
            log.sync_all()?;
        }
        log.seek(SeekFrom::End(0))?;

        // Replay the surviving records.
        let mut index: HashMap<CacheKey, EntryMeta> = HashMap::new();
        let mut order: VecDeque<CacheKey> = VecDeque::new();
        let mut bytes = 0u64;
        for rec in raw[..valid].chunks_exact(RECORD_LEN) {
            let (op, key, meta) = decode_record(rec);
            match op {
                OP_INSERT => {
                    if let Some(old) = index.insert(key, meta) {
                        bytes -= u64::from(old.len);
                    } else {
                        order.push_back(key);
                    }
                    bytes += u64::from(meta.len);
                }
                OP_REMOVE => {
                    if let Some(old) = index.remove(&key) {
                        bytes -= u64::from(old.len);
                        // Keep the order queue exact: a key removed and
                        // later reinserted must rejoin at the *back*, the
                        // same FIFO position the live store gave it.
                        order.retain(|k| *k != key);
                    }
                }
                // Unknown op with a valid checksum: a future format. Skip
                // the record rather than guessing.
                _ => {}
            }
        }
        // Collapse the order queue to one slot per surviving key (a
        // remove + reinsert leaves a stale position behind).
        let mut seen: HashSet<CacheKey> = HashSet::new();
        order.retain(|k| index.contains_key(k) && seen.insert(*k));

        let store = ResultStore {
            dir,
            max_entries,
            inner: Mutex::new(StoreInner {
                log,
                index,
                order,
                bytes,
            }),
            spills: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            warm_loaded: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            gc_evictions: AtomicU64::new(0),
            truncated_bytes: AtomicU64::new(truncated),
            write_errors: AtomicU64::new(0),
        };
        store.sweep_entry_files();
        store.validate_entries();
        store.enforce_capacity();
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry file for `key`.
    fn entry_path(&self, key: CacheKey) -> PathBuf {
        let shard = format!("{:02x}", key.system >> 56);
        self.dir.join("entries").join(shard).join(key_hex(key))
    }

    /// Deletes leftover `.tmp` files (crash mid-write) and entry files the
    /// recovered index does not reference (crash between rename and index
    /// append, or records lost to a truncated tail).
    fn sweep_entry_files(&self) {
        let inner = self.inner.lock().expect("store lock");
        let Ok(shards) = fs::read_dir(self.dir.join("entries")) else {
            return;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let name = file.file_name();
                let name = name.to_string_lossy();
                let keep = parse_key_hex(&name).is_some_and(|key| inner.index.contains_key(&key));
                if !keep {
                    let _ = fs::remove_file(file.path());
                }
            }
        }
    }

    /// Validates every indexed entry file against its recorded length and
    /// CRC; failures are quarantined (moved aside, logged as removes, and
    /// counted) so `open` never trusts a torn or tampered body.
    fn validate_entries(&self) {
        let indexed: Vec<(CacheKey, EntryMeta)> = {
            let inner = self.inner.lock().expect("store lock");
            inner.index.iter().map(|(k, m)| (*k, *m)).collect()
        };
        for (key, meta) in indexed {
            let ok = match fs::read(self.entry_path(key)) {
                Ok(body) => body.len() as u64 == u64::from(meta.len) && crc32(&body) == meta.crc,
                Err(_) => false,
            };
            if !ok {
                self.quarantine(key, meta);
            }
        }
    }

    /// Moves a failed entry into `quarantine/`, drops it from the index
    /// (appending a remove record), and counts it.
    fn quarantine(&self, key: CacheKey, meta: EntryMeta) {
        let mut inner = self.inner.lock().expect("store lock");
        // Only quarantine the exact entry we validated: a concurrent
        // re-insert under the same key must not be thrown away.
        if inner.index.get(&key) != Some(&meta) {
            return;
        }
        inner.index.remove(&key);
        inner.order.retain(|k| *k != key);
        inner.bytes -= u64::from(meta.len);
        let rec = encode_record(OP_REMOVE, key, meta);
        let _ = inner.log.write_all(&rec);
        let _ = inner.log.sync_data();
        let from = self.entry_path(key);
        if from.exists() {
            let to = self.dir.join("quarantine").join(key_hex(key));
            if fs::rename(&from, &to).is_err() {
                let _ = fs::remove_file(&from);
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// FIFO-evicts entries beyond `max_entries` (no-op when unbounded).
    fn enforce_capacity(&self) {
        if self.max_entries == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("store lock");
        let mut removals: Vec<u8> = Vec::new();
        let mut victims: Vec<CacheKey> = Vec::new();
        while inner.index.len() > self.max_entries {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            if let Some(meta) = inner.index.remove(&oldest) {
                inner.bytes -= u64::from(meta.len);
                removals.extend_from_slice(&encode_record(OP_REMOVE, oldest, meta));
                victims.push(oldest);
                self.gc_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !removals.is_empty() {
            let _ = inner.log.write_all(&removals);
            let _ = inner.log.sync_data();
        }
        drop(inner);
        for key in victims {
            let _ = fs::remove_file(self.entry_path(key));
        }
    }

    /// Durably inserts one response under `key`: entry file first
    /// (tmp + fsync + rename), index record second (append + fsync), then
    /// GC beyond capacity. Idempotent for identical content.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the store's in-memory index is only updated
    /// after the bytes are durable, so a failed insert leaves no phantom.
    pub fn insert(&self, key: CacheKey, status: u16, body: &[u8]) -> io::Result<()> {
        let len = u32::try_from(body.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "body too large for store"))?;
        let meta = EntryMeta {
            status,
            len,
            crc: crc32(body),
        };
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.get(&key) == Some(&meta) {
            return Ok(());
        }
        // Entry body becomes durable before the index references it.
        let path = self.entry_path(key);
        let parent = path.parent().expect("entry path has a parent");
        fs::create_dir_all(parent)?;
        let tmp = parent.join(format!("{}.tmp", key_hex(key)));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(body)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(parent);
        inner.log.write_all(&encode_record(OP_INSERT, key, meta))?;
        inner.log.sync_data()?;
        let mut delta = i64::from(meta.len);
        if let Some(old) = inner.index.insert(key, meta) {
            delta -= i64::from(old.len);
        } else {
            inner.order.push_back(key);
        }
        inner.bytes = inner.bytes.saturating_add_signed(delta);
        self.spills.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.enforce_capacity();
        Ok(())
    }

    /// Reads and CRC-verifies one entry without touching the hit counter;
    /// a failed verification quarantines the entry and returns `None`.
    fn read_verified(&self, key: CacheKey) -> Option<CachedResponse> {
        let meta = *self.inner.lock().expect("store lock").index.get(&key)?;
        match fs::read(self.entry_path(key)) {
            Ok(body) if body.len() as u64 == u64::from(meta.len) && crc32(&body) == meta.crc => {
                Some(CachedResponse {
                    status: meta.status,
                    body,
                })
            }
            _ => {
                self.quarantine(key, meta);
                None
            }
        }
    }

    /// Looks up one entry by content address, counting a disk hit on
    /// success. Torn or tampered entries are quarantined, never returned.
    pub fn get(&self, key: CacheKey) -> Option<CachedResponse> {
        let response = self.read_verified(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        Some(response)
    }

    /// Reads every live entry in insertion order for the startup warm
    /// load, counting them as warm-loaded rather than as disk hits.
    pub fn warm_entries(&self) -> Vec<(CacheKey, Arc<CachedResponse>)> {
        let keys: Vec<CacheKey> = {
            let inner = self.inner.lock().expect("store lock");
            inner.order.iter().copied().collect()
        };
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(response) = self.read_verified(key) {
                self.warm_loaded.fetch_add(1, Ordering::Relaxed);
                out.push((key, Arc::new(response)));
            }
        }
        out
    }

    /// Live keys in insertion order (the `/store/index` document).
    pub fn keys(&self) -> Vec<CacheKey> {
        let inner = self.inner.lock().expect("store lock");
        inner.order.iter().copied().collect()
    }

    /// Whether `key` is live in the index.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .contains_key(&key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store lock").index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total body bytes across live entries.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").bytes
    }

    /// Entries spilled to disk since open.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Lookups served from disk since open (warm loads excluded).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Entries handed to the RAM cache by [`ResultStore::warm_entries`].
    pub fn warm_loaded(&self) -> u64 {
        self.warm_loaded.load(Ordering::Relaxed)
    }

    /// Entries quarantined after failing validation.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Entries evicted by the bounded-size GC.
    pub fn gc_evictions(&self) -> u64 {
        self.gc_evictions.load(Ordering::Relaxed)
    }

    /// Torn index-log tail bytes truncated by the last `open`.
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes.load(Ordering::Relaxed)
    }

    /// Background spill writes that failed with an I/O error.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Counts one failed background spill (called by [`Spiller`]).
    fn count_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }
}

enum SpillMsg {
    Write(CacheKey, Arc<CachedResponse>),
    Barrier(mpsc::SyncSender<()>),
}

/// A bounded write-behind queue in front of a [`ResultStore`]: cache
/// inserts enqueue here and never wait on `fsync`; [`Spiller::flush`]
/// drains the queue durably (the `POST /shutdown` drain path).
#[derive(Debug)]
pub struct Spiller {
    store: Arc<ResultStore>,
    tx: Mutex<Option<mpsc::Sender<SpillMsg>>>,
    pending: Arc<AtomicU64>,
    dropped: AtomicU64,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for SpillMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillMsg::Write(key, _) => write!(f, "Write({})", key_hex(*key)),
            SpillMsg::Barrier(_) => write!(f, "Barrier"),
        }
    }
}

impl Spiller {
    /// Starts the background spill worker. `write_delay` is test
    /// instrumentation (mirrors `job_delay_for_tests`): sleep this long
    /// before each write so drain tests can observe a non-empty queue.
    pub fn new(store: Arc<ResultStore>, write_delay: Option<Duration>) -> Spiller {
        let (tx, rx) = mpsc::channel::<SpillMsg>();
        let pending = Arc::new(AtomicU64::new(0));
        let worker = {
            let store = Arc::clone(&store);
            let pending = Arc::clone(&pending);
            std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        SpillMsg::Write(key, response) => {
                            if let Some(delay) = write_delay {
                                std::thread::sleep(delay);
                            }
                            if store.insert(key, response.status, &response.body).is_err() {
                                store.count_write_error();
                            }
                            pending.fetch_sub(1, Ordering::AcqRel);
                        }
                        SpillMsg::Barrier(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })
        };
        Spiller {
            store,
            tx: Mutex::new(Some(tx)),
            pending,
            dropped: AtomicU64::new(0),
            worker: Mutex::new(Some(worker)),
        }
    }

    /// The wrapped store (for reads, stats, and the peer routes).
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// Enqueues one write-through spill. Beyond [`SPILL_QUEUE_LIMIT`]
    /// pending writes the spill is dropped and counted — the RAM cache
    /// still holds the entry, so only durability (not correctness) lags.
    pub fn spill(&self, key: CacheKey, response: Arc<CachedResponse>) {
        if self.pending.load(Ordering::Acquire) >= SPILL_QUEUE_LIMIT {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let tx = self.tx.lock().expect("spiller lock");
        if let Some(tx) = tx.as_ref() {
            self.pending.fetch_add(1, Ordering::AcqRel);
            if tx.send(SpillMsg::Write(key, response)).is_err() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Blocks until every spill enqueued so far is durable on disk.
    /// Returns the number of writes that were still pending when the
    /// flush began — the entries a RAM-only drain would have lost.
    pub fn flush(&self) -> usize {
        let pending_now = self.pending.load(Ordering::Acquire) as usize;
        let barrier = {
            let tx = self.tx.lock().expect("spiller lock");
            let Some(tx) = tx.as_ref() else {
                return 0;
            };
            let (ack_tx, ack_rx) = mpsc::sync_channel::<()>(1);
            if tx.send(SpillMsg::Barrier(ack_tx)).is_err() {
                return 0;
            }
            ack_rx
        };
        let _ = barrier.recv();
        pending_now
    }

    /// Spills dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes still waiting in the queue.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }
}

impl Drop for Spiller {
    fn drop(&mut self) {
        // Drain before the worker goes away: a dropped spiller must not
        // silently lose enqueued writes.
        self.flush();
        *self.tx.lock().expect("spiller lock") = None;
        if let Some(worker) = self.worker.lock().expect("spiller lock").take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A fresh, empty scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "lis-store-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(n: u64) -> CacheKey {
        CacheKey {
            system: n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            request: n ^ 0xdead_beef,
        }
    }

    fn body(n: u64) -> Vec<u8> {
        format!("{{\"answer\":{n}}}").into_bytes()
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn key_hex_round_trips() {
        let k = CacheKey {
            system: 0x0123_4567_89ab_cdef,
            request: 0xfedc_ba98_7654_3210,
        };
        assert_eq!(parse_key_hex(&key_hex(k)), Some(k));
        assert_eq!(parse_key_hex("nonsense"), None);
        assert_eq!(parse_key_hex("0-0"), None, "short hex rejected");
    }

    #[test]
    fn insert_get_and_reopen_round_trip() {
        let scratch = Scratch::new("roundtrip");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        for n in 0..16 {
            store.insert(key(n), 200, &body(n)).unwrap();
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.get(key(3)).unwrap().body, body(3));
        assert_eq!(store.disk_hits(), 1);
        drop(store);

        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(reopened.len(), 16);
        assert_eq!(reopened.quarantined(), 0);
        assert_eq!(reopened.truncated_bytes(), 0);
        for n in 0..16 {
            let got = reopened.get(key(n)).expect("entry survives reopen");
            assert_eq!(got.status, 200);
            assert_eq!(got.body, body(n), "byte-identical after reopen");
        }
    }

    #[test]
    fn insert_is_idempotent_and_overwrites_changed_content() {
        let scratch = Scratch::new("idem");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        store.insert(key(1), 200, &body(1)).unwrap();
        store.insert(key(1), 200, &body(1)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.spills(), 1, "identical re-insert is a no-op");
        store.insert(key(1), 422, b"different").unwrap();
        assert_eq!(store.get(key(1)).unwrap().status, 422);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn gc_is_fifo_bounded_and_survives_reopen() {
        let scratch = Scratch::new("gc");
        let store = ResultStore::open(scratch.path(), 4).unwrap();
        for n in 0..10 {
            store.insert(key(n), 200, &body(n)).unwrap();
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.gc_evictions(), 6);
        for n in 0..6 {
            assert!(store.get(key(n)).is_none(), "entry {n} evicted");
        }
        for n in 6..10 {
            assert_eq!(store.get(key(n)).unwrap().body, body(n));
        }
        drop(store);
        let reopened = ResultStore::open(scratch.path(), 4).unwrap();
        assert_eq!(reopened.len(), 4, "GC state replays from the log");
        for n in 0..6 {
            assert!(reopened.get(key(n)).is_none());
        }
    }

    #[test]
    fn torn_log_tail_recovers_the_longest_checksummed_prefix() {
        let scratch = Scratch::new("tail");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        for n in 0..8 {
            store.insert(key(n), 200, &body(n)).unwrap();
        }
        drop(store);
        let log_path = scratch.path().join("index.log");
        let full = fs::read(&log_path).unwrap();
        assert_eq!(full.len(), 8 * RECORD_LEN);
        // Cut mid-record: the torn record must vanish, the prefix survive.
        for cut in [8 * RECORD_LEN - 1, 7 * RECORD_LEN + 1, 5 * RECORD_LEN] {
            fs::write(&log_path, &full[..cut]).unwrap();
            let reopened = ResultStore::open(scratch.path(), 0).unwrap();
            let expect = cut / RECORD_LEN;
            assert_eq!(reopened.len(), expect, "cut at {cut}");
            assert_eq!(
                reopened.truncated_bytes(),
                (cut % RECORD_LEN) as u64,
                "cut at {cut}"
            );
            for n in 0..expect as u64 {
                assert_eq!(reopened.get(key(n)).unwrap().body, body(n));
            }
            drop(reopened);
            // Entry files past the cut were swept as orphans; restoring the
            // full log would resurrect dangling records, so rebuild instead.
            let _ = fs::remove_dir_all(scratch.path());
            let rebuild = ResultStore::open(scratch.path(), 0).unwrap();
            for n in 0..8 {
                rebuild.insert(key(n), 200, &body(n)).unwrap();
            }
        }
    }

    #[test]
    fn garbage_appended_to_the_log_is_truncated() {
        let scratch = Scratch::new("garbage");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        store.insert(key(1), 200, &body(1)).unwrap();
        drop(store);
        let log_path = scratch.path().join("index.log");
        let mut raw = fs::read(&log_path).unwrap();
        raw.extend_from_slice(b"\xff\xfe garbage that is not a record at all");
        fs::write(&log_path, &raw).unwrap();
        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.truncated_bytes() > 0);
        assert_eq!(reopened.get(key(1)).unwrap().body, body(1));
        drop(reopened);
        // The truncation was persisted: a third open sees a clean log.
        let third = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(third.truncated_bytes(), 0);
    }

    #[test]
    fn corrupted_entry_bodies_are_quarantined_not_returned() {
        let scratch = Scratch::new("quarantine");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        store.insert(key(1), 200, &body(1)).unwrap();
        store.insert(key(2), 200, &body(2)).unwrap();
        let victim = store.entry_path(key(1));
        drop(store);
        fs::write(&victim, b"{\"answer\":1}").unwrap(); // same-length tamper
        {
            let mut raw = fs::read(&victim).unwrap();
            raw[0] ^= 0x20;
            fs::write(&victim, &raw).unwrap();
        }
        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(reopened.quarantined(), 1);
        assert!(
            reopened.get(key(1)).is_none(),
            "tampered entry never served"
        );
        assert_eq!(reopened.get(key(2)).unwrap().body, body(2));
        assert!(
            scratch
                .path()
                .join("quarantine")
                .join(key_hex(key(1)))
                .exists(),
            "quarantined file kept for forensics"
        );
        drop(reopened);
        // The quarantine appended a remove record: the next open is clean.
        let third = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(third.len(), 1);
        assert_eq!(third.quarantined(), 0);
    }

    #[test]
    fn tmp_and_orphan_entry_files_are_swept_on_open() {
        let scratch = Scratch::new("sweep");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        store.insert(key(1), 200, &body(1)).unwrap();
        let shard_dir = store.entry_path(key(1)).parent().unwrap().to_path_buf();
        drop(store);
        let tmp = shard_dir.join(format!("{}.tmp", key_hex(key(9))));
        fs::write(&tmp, b"half-written").unwrap();
        let orphan = shard_dir.join(key_hex(key(8)));
        fs::write(&orphan, b"renamed but never indexed").unwrap();
        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(!tmp.exists(), "tmp file swept");
        assert!(!orphan.exists(), "orphan entry swept");
        assert_eq!(reopened.get(key(1)).unwrap().body, body(1));
    }

    #[test]
    fn warm_entries_returns_everything_in_insertion_order() {
        let scratch = Scratch::new("warm");
        let store = ResultStore::open(scratch.path(), 0).unwrap();
        for n in 0..5 {
            store.insert(key(n), 200, &body(n)).unwrap();
        }
        drop(store);
        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        let warm = reopened.warm_entries();
        assert_eq!(warm.len(), 5);
        assert_eq!(reopened.warm_loaded(), 5);
        assert_eq!(reopened.disk_hits(), 0, "warm load is not a disk hit");
        for (n, (k, response)) in warm.iter().enumerate() {
            assert_eq!(*k, key(n as u64), "insertion order preserved");
            assert_eq!(response.body, body(n as u64));
        }
    }

    #[test]
    fn spiller_flush_makes_pending_writes_durable() {
        let scratch = Scratch::new("spiller");
        let store = Arc::new(ResultStore::open(scratch.path(), 0).unwrap());
        let spiller = Spiller::new(Arc::clone(&store), None);
        for n in 0..20 {
            spiller.spill(
                key(n),
                Arc::new(CachedResponse {
                    status: 200,
                    body: body(n),
                }),
            );
        }
        spiller.flush();
        assert_eq!(store.len(), 20);
        assert_eq!(spiller.pending(), 0);
        drop(spiller);
        let reopened = ResultStore::open(scratch.path(), 0).unwrap();
        assert_eq!(reopened.len(), 20);
    }

    #[test]
    fn spiller_flush_reports_the_writes_a_ram_only_drain_would_lose() {
        let scratch = Scratch::new("spiller-slow");
        let store = Arc::new(ResultStore::open(scratch.path(), 0).unwrap());
        // Slow worker: the queue is observably non-empty at flush time.
        let spiller = Spiller::new(Arc::clone(&store), Some(Duration::from_millis(30)));
        for n in 0..3 {
            spiller.spill(
                key(n),
                Arc::new(CachedResponse {
                    status: 200,
                    body: body(n),
                }),
            );
        }
        let spilled = spiller.flush();
        assert!(
            (1..=3).contains(&spilled),
            "flush reports pending writes, saw {spilled}"
        );
        assert_eq!(store.len(), 3, "flush drained everything durably");
    }

    #[test]
    fn drop_drains_the_spiller() {
        let scratch = Scratch::new("spiller-drop");
        let store = Arc::new(ResultStore::open(scratch.path(), 0).unwrap());
        let spiller = Spiller::new(Arc::clone(&store), Some(Duration::from_millis(10)));
        spiller.spill(
            key(1),
            Arc::new(CachedResponse {
                status: 200,
                body: body(1),
            }),
        );
        drop(spiller);
        assert_eq!(store.len(), 1, "drop flushes before joining the worker");
    }
}
