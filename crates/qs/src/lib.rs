//! Queue sizing (QS) for latency-insensitive systems.
//!
//! Backpressure with finite queues can degrade a LIS's maximal sustainable
//! throughput below the ideal (infinite-queue) value. *Queue sizing* — adding
//! extra slots to shell input queues, i.e. extra tokens to backedges of the
//! doubled marked graph — restores it. The paper proves the minimal-token
//! version NP-complete (reduction from Vertex Cover, Section V) and proposes
//! the pipeline implemented here (Section VII):
//!
//! 1. [`extract_instance`] — enumerate the cycles of `d[G]`, keep the
//!    *deficient* ones (mean below the ideal MST), and record the shell
//!    queues each one runs through;
//! 2. [`TdInstance::from_qs`] — abstract to the Token Deficit problem;
//! 3. [`simplify`] / [`collapse_sccs`] — the paper's simplification rules
//!    (subset sets, singleton cycles, SCC contraction);
//! 4. [`heuristic_solve`] (the paper's polynomial trim-down),
//!    [`greedy_cover_solve`] (a max-coverage baseline), or [`exact_solve`]
//!    (binary search + depth-K branch and bound with a wall-clock budget,
//!    optionally memoized and with parallel root branching);
//! 5. [`verify_solution`] — recompute `θ(d[G])` with Karp's algorithm, the
//!    polynomial certificate of the NP-membership argument.
//!
//! [`ThroughputOracle`] answers repeated "θ(d[G]) with these extra slots?"
//! queries incrementally (one doubled model, per-SCC re-solves with a memo
//! cache); it backs [`verify_solution_incremental`] and the oracle-based
//! trim pass ([`trim_weights`], [`QsConfig::oracle_trim`]) that can tighten
//! solutions past the Token Deficit abstraction when cycle enumeration was
//! truncated.
//!
//! [`solve`] runs the whole pipeline on a [`lis_core::LisSystem`].
//!
//! # Examples
//!
//! ```
//! use lis_core::figures;
//! use lis_qs::{solve, verify_solution, Algorithm, QsConfig};
//!
//! let (sys, _, _) = figures::fig1();
//! let report = solve(&sys, Algorithm::Exact, &QsConfig::default())?;
//! assert_eq!(report.total_extra, 1); // one extra queue slot suffices
//! assert!(verify_solution(&sys, &report));
//! # Ok::<(), lis_qs::QsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod deficit;
mod error;
mod exact;
mod fixed;
mod greedy;
mod heuristic;
mod lp;
mod oracle;
mod solve;
mod td;

pub use collapse::{collapse_sccs, Collapsed};
pub use deficit::{
    cycle_deficit, extract_from_model, extract_from_model_with, extract_instance,
    extract_instance_with, DeficientCycle, QsInstance, DEFAULT_CYCLE_LIMIT,
};
pub use error::QsError;
pub use exact::{brute_force_optimum, exact_solve, exact_solve_with, ExactOptions, ExactOutcome};
pub use fixed::{minimal_uniform_q, sufficient_queue_capacities};
pub use greedy::{greedy_cover_solve, greedy_cover_solve_trimmed};
pub use heuristic::{heuristic_solve, heuristic_solve_trimmed};
pub use lp::{to_lp, to_lp_from_td};
pub use oracle::{trim_weights, ThroughputOracle};
pub use solve::{
    apply_solution, solve, verify_solution, verify_solution_incremental, verify_solution_simulated,
    Algorithm, QsConfig, QsReport,
};
pub use td::{simplify, Simplified, TdInstance, TdSolution};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<QsError>();
        assert_traits::<TdInstance>();
        assert_traits::<QsReport>();
        assert_traits::<QsInstance>();
    }
}
