//! Table I — output traces of the components in the Fig. 1 LIS.
//!
//! Runs the value-level simulator on the paper's two-core example (A emits
//! even numbers on the upper, pipelined channel and odd numbers on the lower
//! one; B is an adder whose latched output is initialized to zero) and
//! prints the four trace rows exactly as in the paper, plus the analytic and
//! measured throughput under backpressure (Figs. 5 and 6).

use lis_bench::Table;
use lis_core::{figures, practical_mst};
use lis_sim::{Adder, CoreModel, EvenOddGenerator, LisSimulator, QueueMode, RtlSimulator, Value};

fn trace_row(name: &str, trace: &[Option<Value>]) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(
        trace
            .iter()
            .map(|v| v.map_or("tau".to_string(), |x| x.to_string())),
    );
    row
}

fn cores() -> Vec<Box<dyn CoreModel>> {
    vec![Box::new(EvenOddGenerator::new()), Box::new(Adder::new(1))]
}

fn main() {
    let (sys, upper, lower) = figures::fig1();
    let b = sys.block_by_name("B").expect("block B exists");

    // Paper Table I: the ideal (infinite-queue) behavior over 4 periods.
    let mut sim = LisSimulator::new(&sys, cores(), QueueMode::Infinite);
    sim.run(4);
    let mut t = Table::new(
        "Table I: output traces of the LIS of Fig. 1 (infinite queues)",
        &["output channel", "t0", "t1", "t2", "t3"],
    );
    t.row(&trace_row("A (upper)", &sim.channel_trace(upper)));
    t.row(&trace_row("A (lower)", &sim.channel_trace(lower)));
    t.row(&trace_row("B", &sim.block_output_trace(b, 0)));
    t.row(&trace_row(
        "Relay Station",
        &sim.relay_station_trace(upper, 0),
    ));
    t.print();

    // The same table from the independent RTL simulator (wide queues emulate
    // the infinite-queue assumption).
    println!();
    let mut wide = sys.clone();
    wide.set_uniform_queue_capacity(16);
    let mut rtl = RtlSimulator::new(&wide, cores());
    rtl.run(4);
    let mut tr = Table::new(
        "Cross-check: the same traces from the RTL simulator",
        &["output channel", "t0", "t1", "t2", "t3"],
    );
    tr.row(&trace_row("A (upper)", &rtl.channel_trace(upper)));
    tr.row(&trace_row("A (lower)", &rtl.channel_trace(lower)));
    tr.print();

    // Follow-up: the same system under backpressure (Fig. 5) and after
    // queue sizing (Fig. 6).
    println!();
    let mut finite = LisSimulator::new(&sys, cores(), QueueMode::Finite);
    finite.run(3000);
    let a = sys.block_by_name("A").expect("block A exists");
    println!(
        "practical MST with q=1 (Fig. 5): analytic {} | measured {:.4}",
        practical_mst(&sys),
        finite.throughput(a).to_f64()
    );
    let (sized, _, _) = figures::fig6();
    let mut fixed = LisSimulator::new(&sized, cores(), QueueMode::Finite);
    fixed.run(3000);
    println!(
        "after queue sizing q(lower)=2 (Fig. 6): analytic {} | measured {:.4}",
        practical_mst(&sized),
        fixed.throughput(a).to_f64()
    );
    let _ = lower;
}
