//! Analysis request kinds: parsing from the wire, cache identity, and
//! execution against the analysis engine.
//!
//! Every `POST` analysis route carries the same envelope:
//!
//! ```json
//! {"netlist": "<lis-core netlist text>", "options": { ... }}
//! ```
//!
//! The route selects the job, `options` its knobs. Execution is pure: the
//! same parsed system and kind always produce the same JSON (the solvers
//! underneath are deterministic), which is what makes the responses safe
//! to cache by content hash.

use lis_core::{canonical_hash, classify, explain_with, LisModel, LisSystem, TopologyClass};
use lis_qs::{solve, verify_solution, Algorithm, QsConfig};
use lis_rsopt::{exhaustive_insertion, greedy_insertion};
use marked_graph::{McmEngine, Ratio};

use crate::cache::CacheKey;
use crate::error::ServerError;
use crate::wire::{obj, Json};

/// A decoded analysis request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Throughput analysis + topology classification (`POST /analyze`).
    Analyze {
        /// The MCM engine backing the throughput solves.
        engine: McmEngine,
    },
    /// Queue sizing (`POST /qs`), heuristic or exact.
    Qs {
        /// Run the exact branch-and-bound instead of the heuristic.
        exact: bool,
        /// The MCM engine backing the throughput solves.
        engine: McmEngine,
    },
    /// Relay-station insertion search (`POST /insert`).
    Insert {
        /// Maximum stations to insert.
        budget: u32,
    },
    /// Graphviz export of the marked-graph model (`POST /dot`).
    Dot {
        /// Export the doubled model `d[G]` instead of the ideal `G`.
        doubled: bool,
    },
}

impl RequestKind {
    /// Decodes a request body for the analysis route `route`
    /// (`"analyze"`, `"qs"`, `"insert"`, or `"dot"`), returning the
    /// netlist text and the decoded kind.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadRequest`] on missing/ill-typed fields.
    pub fn decode(route: &str, body: &Json) -> Result<(String, RequestKind), ServerError> {
        let netlist = body
            .get("netlist")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                ServerError::BadRequest("body must be {\"netlist\": \"...\", ...}".into())
            })?
            .to_string();
        let options = body.get("options").unwrap_or(&Json::Null);
        let opt_bool = |name: &str| -> Result<bool, ServerError> {
            match options.get(name) {
                None => Ok(false),
                Some(v) => v.as_bool().ok_or_else(|| {
                    ServerError::BadRequest(format!("option {name:?} must be a boolean"))
                }),
            }
        };
        let opt_engine = || -> Result<McmEngine, ServerError> {
            match options.get("engine") {
                None => Ok(McmEngine::default()),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        ServerError::BadRequest("option \"engine\" must be a string".into())
                    })?
                    .parse()
                    .map_err(ServerError::BadRequest),
            }
        };
        let kind = match route {
            "analyze" => RequestKind::Analyze {
                engine: opt_engine()?,
            },
            "qs" => RequestKind::Qs {
                exact: opt_bool("exact")?,
                engine: opt_engine()?,
            },
            "insert" => {
                let budget = match options.get("budget") {
                    None => 2,
                    Some(v) => v.as_u64().filter(|&b| b <= 16).ok_or_else(|| {
                        ServerError::BadRequest(
                            "option \"budget\" must be an integer in 0..=16".into(),
                        )
                    })? as u32,
                };
                RequestKind::Insert { budget }
            }
            "dot" => RequestKind::Dot {
                doubled: opt_bool("doubled")?,
            },
            other => return Err(ServerError::NotFound(format!("/{other}"))),
        };
        Ok((netlist, kind))
    }

    /// A stable token naming the kind *and* every option that affects the
    /// result — the request half of the cache key.
    pub fn token(&self) -> String {
        match self {
            RequestKind::Analyze { engine } => format!("analyze:engine={engine}"),
            RequestKind::Qs { exact, engine } => format!("qs:exact={exact}:engine={engine}"),
            RequestKind::Insert { budget } => format!("insert:budget={budget}"),
            RequestKind::Dot { doubled } => format!("dot:doubled={doubled}"),
        }
    }

    /// The MCM engine label for the per-engine latency metrics, for the
    /// kinds whose runtime is dominated by throughput solves.
    pub fn engine_label(&self) -> Option<&'static str> {
        match self {
            RequestKind::Analyze { engine } | RequestKind::Qs { engine, .. } => {
                Some(engine.as_str())
            }
            RequestKind::Insert { .. } | RequestKind::Dot { .. } => None,
        }
    }

    /// The content-addressed cache key for this kind applied to `sys`.
    pub fn cache_key(&self, sys: &LisSystem) -> CacheKey {
        let token = self.token();
        let request = token.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        CacheKey {
            system: canonical_hash(sys),
            request,
        }
    }

    /// Runs the job. Deterministic in `(sys, self)`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Analysis`] when the underlying solver fails (e.g.
    /// cycle-enumeration limits).
    pub fn execute(&self, sys: &LisSystem) -> Result<Json, ServerError> {
        match self {
            RequestKind::Analyze { engine } => Ok(analyze(sys, *engine)),
            RequestKind::Qs { exact, engine } => qs(sys, *exact, *engine),
            RequestKind::Insert { budget } => Ok(insert(sys, *budget)),
            RequestKind::Dot { doubled } => Ok(dot(sys, *doubled)),
        }
    }
}

fn ratio_json(r: Ratio) -> Json {
    obj([
        ("num", Json::num(r.numer() as f64)),
        ("den", Json::num(r.denom() as f64)),
    ])
}

fn class_label(class: TopologyClass) -> &'static str {
    match class {
        TopologyClass::Tree => "tree",
        TopologyClass::SccNoReconvergence => "scc_no_reconvergence",
        TopologyClass::NetworkNoReconvergence => "network_no_reconvergence",
        TopologyClass::General => "general",
    }
}

fn channel_json(sys: &LisSystem, c: lis_core::ChannelId) -> Json {
    obj([
        ("channel", Json::num(c.index() as f64)),
        ("from", Json::str(sys.block_name(sys.channel_from(c)))),
        ("to", Json::str(sys.block_name(sys.channel_to(c)))),
    ])
}

fn analyze(sys: &LisSystem, engine: McmEngine) -> Json {
    let report = explain_with(sys, engine);
    let bottlenecks: Vec<Json> = report
        .bottleneck_queues
        .iter()
        .map(|&c| channel_json(sys, c))
        .collect();
    obj([
        ("blocks", Json::num(sys.block_count() as f64)),
        ("channels", Json::num(sys.channel_count() as f64)),
        (
            "relay_stations",
            Json::num(f64::from(sys.relay_station_count())),
        ),
        ("topology_class", Json::str(class_label(classify(sys)))),
        ("engine", Json::str(report.engine.as_str())),
        ("ideal_mst", ratio_json(report.ideal)),
        ("practical_mst", ratio_json(report.practical)),
        ("degraded", Json::Bool(report.is_degraded())),
        (
            "critical_cycle",
            report
                .critical_cycle
                .as_deref()
                .map_or(Json::Null, Json::str),
        ),
        ("bottleneck_queues", Json::Arr(bottlenecks)),
    ])
}

fn qs(sys: &LisSystem, exact: bool, engine: McmEngine) -> Result<Json, ServerError> {
    let algo = if exact {
        Algorithm::Exact
    } else {
        Algorithm::Heuristic
    };
    let cfg = QsConfig {
        engine,
        ..QsConfig::default()
    };
    let report = solve(sys, algo, &cfg).map_err(|e| ServerError::Analysis(e.to_string()))?;
    if !verify_solution(sys, &report) {
        return Err(ServerError::Analysis(
            "queue-sizing solution failed verification".into(),
        ));
    }
    let extra: Vec<Json> = report
        .extra_tokens
        .iter()
        .map(|&(c, w)| {
            let mut entry = match channel_json(sys, c) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("extra_slots".into(), Json::num(w as f64)));
            entry.push((
                "new_capacity".into(),
                Json::num((sys.queue_capacity(c) + w) as f64),
            ));
            Json::Obj(entry)
        })
        .collect();
    Ok(obj([
        ("engine", Json::str(engine.as_str())),
        ("target_mst", ratio_json(report.target)),
        ("practical_before", ratio_json(report.practical_before)),
        ("total_extra", Json::num(report.total_extra as f64)),
        ("optimal", Json::Bool(report.optimal)),
        (
            "deficient_cycles",
            Json::num(report.deficient_cycles as f64),
        ),
        ("extra_tokens", Json::Arr(extra)),
    ]))
}

fn insert(sys: &LisSystem, budget: u32) -> Json {
    // Exhaustive search is exponential in the budget; same feasibility
    // cutoff the CLI uses.
    let exhaustive_feasible = (sys.channel_count() as u64).pow(budget.min(6)) <= 2_000_000;
    let result = if exhaustive_feasible {
        exhaustive_insertion(sys, budget)
    } else {
        greedy_insertion(sys, budget)
    };
    let placements: Vec<Json> = result
        .placements
        .iter()
        .map(|&(c, n)| {
            let mut entry = match channel_json(sys, c) {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("channel_json returns an object"),
            };
            entry.push(("stations".into(), Json::num(f64::from(n))));
            Json::Obj(entry)
        })
        .collect();
    obj([
        (
            "search",
            Json::str(if exhaustive_feasible {
                "exhaustive"
            } else {
                "greedy"
            }),
        ),
        ("practical_mst", ratio_json(result.practical)),
        ("ideal_mst", ratio_json(result.ideal)),
        ("inserted", Json::num(f64::from(result.inserted))),
        ("placements", Json::Arr(placements)),
    ])
}

fn dot(sys: &LisSystem, doubled: bool) -> Json {
    let model = if doubled {
        LisModel::doubled(sys)
    } else {
        LisModel::ideal(sys)
    };
    obj([
        (
            "model",
            Json::str(if doubled { "doubled" } else { "ideal" }),
        ),
        ("dot", Json::str(marked_graph::dot::to_dot(model.graph()))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::parse_netlist;

    const FIG1: &str = "block A\nblock B\nchannel A -> B rs=1\nchannel A -> B\n";

    fn fig1() -> LisSystem {
        parse_netlist(FIG1).expect("fig1 parses")
    }

    #[test]
    fn decode_accepts_every_route_and_option() {
        let body = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"exact": true, "budget": 3, "doubled": true}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        let (text, kind) = RequestKind::decode("analyze", &body).unwrap();
        assert_eq!(text, FIG1);
        assert_eq!(
            kind,
            RequestKind::Analyze {
                engine: McmEngine::Howard
            }
        );
        assert_eq!(
            RequestKind::decode("qs", &body).unwrap().1,
            RequestKind::Qs {
                exact: true,
                engine: McmEngine::Howard
            }
        );
        assert_eq!(
            RequestKind::decode("insert", &body).unwrap().1,
            RequestKind::Insert { budget: 3 }
        );
        assert_eq!(
            RequestKind::decode("dot", &body).unwrap().1,
            RequestKind::Dot { doubled: true }
        );
    }

    #[test]
    fn decode_defaults_options() {
        let body = Json::parse(&format!(r#"{{"netlist": {}}}"#, Json::str(FIG1))).unwrap();
        assert_eq!(
            RequestKind::decode("qs", &body).unwrap().1,
            RequestKind::Qs {
                exact: false,
                engine: McmEngine::Howard
            }
        );
        assert_eq!(
            RequestKind::decode("insert", &body).unwrap().1,
            RequestKind::Insert { budget: 2 }
        );
    }

    #[test]
    fn decode_selects_and_validates_the_engine() {
        for (name, engine) in [
            ("howard", McmEngine::Howard),
            ("karp", McmEngine::Karp),
            ("lawler", McmEngine::Lawler),
        ] {
            let body = Json::parse(&format!(
                r#"{{"netlist": {}, "options": {{"engine": "{name}"}}}}"#,
                Json::str(FIG1)
            ))
            .unwrap();
            assert_eq!(
                RequestKind::decode("analyze", &body).unwrap().1,
                RequestKind::Analyze { engine }
            );
            assert_eq!(
                RequestKind::decode("qs", &body).unwrap().1,
                RequestKind::Qs {
                    exact: false,
                    engine
                }
            );
        }
        let bad = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"engine": "dijkstra"}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("analyze", &bad),
            Err(ServerError::BadRequest(_))
        ));
        let ill_typed = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"engine": 7}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("qs", &ill_typed),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_envelopes() {
        let no_netlist = Json::parse(r#"{"options": {}}"#).unwrap();
        assert!(matches!(
            RequestKind::decode("analyze", &no_netlist),
            Err(ServerError::BadRequest(_))
        ));
        let bad_opt = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"exact": 1}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("qs", &bad_opt),
            Err(ServerError::BadRequest(_))
        ));
        let big_budget = Json::parse(&format!(
            r#"{{"netlist": {}, "options": {{"budget": 999}}}}"#,
            Json::str(FIG1)
        ))
        .unwrap();
        assert!(matches!(
            RequestKind::decode("insert", &big_budget),
            Err(ServerError::BadRequest(_))
        ));
        let ok = Json::parse(&format!(r#"{{"netlist": {}}}"#, Json::str(FIG1))).unwrap();
        assert!(matches!(
            RequestKind::decode("nonsense", &ok),
            Err(ServerError::NotFound(_))
        ));
    }

    #[test]
    fn cache_keys_separate_kinds_and_share_equivalent_netlists() {
        let sys = fig1();
        let noisy = parse_netlist(
            "# same system\nblock \"A\"\nblock B\nchannel A -> B rs=1 q=1\nchannel A -> B\n",
        )
        .unwrap();
        let analyze = RequestKind::Analyze {
            engine: McmEngine::Howard,
        };
        let analyze_karp = RequestKind::Analyze {
            engine: McmEngine::Karp,
        };
        let qs_h = RequestKind::Qs {
            exact: false,
            engine: McmEngine::Howard,
        };
        let qs_x = RequestKind::Qs {
            exact: true,
            engine: McmEngine::Howard,
        };
        assert_eq!(analyze.cache_key(&sys), analyze.cache_key(&noisy));
        assert_ne!(analyze.cache_key(&sys), qs_h.cache_key(&sys));
        assert_ne!(qs_h.cache_key(&sys), qs_x.cache_key(&sys));
        // Different engines must not share cache entries.
        assert_ne!(analyze.cache_key(&sys), analyze_karp.cache_key(&sys));
    }

    #[test]
    fn engine_labels_cover_the_throughput_routes() {
        assert_eq!(
            RequestKind::Analyze {
                engine: McmEngine::Karp
            }
            .engine_label(),
            Some("karp")
        );
        assert_eq!(
            RequestKind::Qs {
                exact: true,
                engine: McmEngine::Lawler
            }
            .engine_label(),
            Some("lawler")
        );
        assert_eq!(RequestKind::Insert { budget: 1 }.engine_label(), None);
        assert_eq!(RequestKind::Dot { doubled: false }.engine_label(), None);
    }

    #[test]
    fn analyze_reports_the_fig1_numbers() {
        let out = RequestKind::Analyze {
            engine: McmEngine::Howard,
        }
        .execute(&fig1())
        .unwrap();
        assert_eq!(out.get("blocks").unwrap().as_u64(), Some(2));
        assert_eq!(out.get("topology_class").unwrap().as_str(), Some("general"));
        assert_eq!(out.get("engine").unwrap().as_str(), Some("howard"));
        let practical = out.get("practical_mst").unwrap();
        assert_eq!(practical.get("num").unwrap().as_u64(), Some(2));
        assert_eq!(practical.get("den").unwrap().as_u64(), Some(3));
        assert_eq!(out.get("degraded").unwrap().as_bool(), Some(true));
        assert!(!out
            .get("bottleneck_queues")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn qs_exact_fixes_fig1_with_one_slot() {
        let out = RequestKind::Qs {
            exact: true,
            engine: McmEngine::Howard,
        }
        .execute(&fig1())
        .unwrap();
        assert_eq!(out.get("total_extra").unwrap().as_u64(), Some(1));
        assert_eq!(out.get("optimal").unwrap().as_bool(), Some(true));
        let extra = out.get("extra_tokens").unwrap().as_arr().unwrap();
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].get("extra_slots").unwrap().as_u64(), Some(1));
        assert_eq!(extra[0].get("new_capacity").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn insert_and_dot_run_on_fig1() {
        let out = RequestKind::Insert { budget: 1 }.execute(&fig1()).unwrap();
        assert_eq!(out.get("search").unwrap().as_str(), Some("exhaustive"));
        assert!(out.get("practical_mst").unwrap().get("num").is_some());
        let ideal = RequestKind::Dot { doubled: false }
            .execute(&fig1())
            .unwrap();
        assert!(ideal
            .get("dot")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("digraph"));
        let doubled = RequestKind::Dot { doubled: true }.execute(&fig1()).unwrap();
        assert!(
            doubled.get("dot").unwrap().as_str().unwrap().len()
                > ideal.get("dot").unwrap().as_str().unwrap().len()
        );
    }

    #[test]
    fn execution_is_deterministic() {
        let sys = fig1();
        for kind in [
            RequestKind::Analyze {
                engine: McmEngine::Howard,
            },
            RequestKind::Qs {
                exact: false,
                engine: McmEngine::Lawler,
            },
            RequestKind::Insert { budget: 2 },
            RequestKind::Dot { doubled: true },
        ] {
            let a = kind.execute(&sys).unwrap().to_string();
            let b = kind.execute(&sys).unwrap().to_string();
            assert_eq!(a, b, "{kind:?} was not deterministic");
        }
    }
}
