//! The paper's exact algorithm for the Token Deficit problem
//! (Section VII-B).
//!
//! The instance is first conceptually expanded so that every weight is 0/1
//! (a set with maximum deficit `D` behaves like `D` unit copies); the solver
//! then binary-searches the budget `K` between an admissible lower bound and
//! the heuristic solution, answering each probe with a depth-`K` search tree
//! that places one token at a time on a set of the first uncovered cycle.
//! Tokens destined for the same cycle are placed in non-decreasing set order
//! to kill permutation symmetry. A wall-clock budget aborts long probes —
//! the paper did the same ("the exact program was halted after running for
//! more than an hour").

use std::time::{Duration, Instant};

use crate::heuristic::heuristic_solve;
use crate::td::{TdInstance, TdSolution};

/// Tuning knobs of the exact solver, exposed for the ablation experiments.
///
/// Both optimizations are sound (they never change the optimum); disabling
/// them only inflates the search tree, which the `ablation` binary
/// quantifies.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Wall-clock budget (`None` = run to completion).
    pub budget: Option<Duration>,
    /// Prune nodes where the disjoint-cycle admissible bound exceeds the
    /// remaining token budget.
    pub disjoint_bound: bool,
    /// Place consecutive tokens for the same cycle in non-decreasing set
    /// order (kills permutation symmetry).
    pub symmetry_breaking: bool,
}

impl Default for ExactOptions {
    fn default() -> ExactOptions {
        ExactOptions {
            budget: None,
            disjoint_bound: true,
            symmetry_breaking: true,
        }
    }
}

/// Outcome of the exact solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactOutcome {
    /// The best solution found. Feasible in all cases.
    pub solution: TdSolution,
    /// Whether `solution` is proven optimal (false if the time budget ran
    /// out before the search completed).
    pub optimal: bool,
    /// Search-tree nodes explored, for reporting.
    pub nodes: u64,
}

/// Solves a TD instance exactly, or as well as the time budget allows.
///
/// With `budget = None` the search runs to completion (exponential worst
/// case — the problem is NP-complete).
///
/// # Examples
///
/// ```
/// use lis_qs::{exact_solve, TdInstance};
///
/// let td = TdInstance::new(vec![1, 1], vec![vec![0, 1], vec![0], vec![1]]);
/// let out = exact_solve(&td, None);
/// assert!(out.optimal);
/// assert_eq!(out.solution.total(), 1);
/// ```
pub fn exact_solve(td: &TdInstance, budget: Option<Duration>) -> ExactOutcome {
    exact_solve_with(
        td,
        &ExactOptions {
            budget,
            ..ExactOptions::default()
        },
    )
}

/// [`exact_solve`] with explicit [`ExactOptions`] (used by the ablation
/// experiments to switch individual optimizations off).
pub fn exact_solve_with(td: &TdInstance, options: &ExactOptions) -> ExactOutcome {
    let budget = options.budget;
    let heuristic = heuristic_solve(td);
    let upper = heuristic.total();
    let lower = td.disjoint_cycles_bound();
    let deadline = budget.map(|b| Instant::now() + b);

    if upper == 0 {
        return ExactOutcome {
            solution: heuristic,
            optimal: true,
            nodes: 0,
        };
    }

    let mut search = Search {
        td,
        deadline,
        nodes: 0,
        timed_out: false,
        weights: vec![0; td.set_count()],
        residual: (0..td.cycle_count()).map(|c| td.deficit(c)).collect(),
        found: None,
        disjoint_bound: options.disjoint_bound,
        symmetry_breaking: options.symmetry_breaking,
    };

    // Binary search on K: feasible(K) is monotone. Invariants:
    // lo - 1 < optimum <= hi, with `best` holding a solution of size <= hi.
    let mut best = heuristic.clone();
    let mut proven = true;
    let (mut lo, mut hi) = (lower.max(1), upper);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match search.probe(mid) {
            Probe::Feasible(sol) => {
                debug_assert!(sol.total() <= mid);
                hi = sol.total();
                best = sol;
            }
            Probe::Infeasible => {
                lo = mid + 1;
            }
            Probe::TimedOut => {
                proven = false;
                break;
            }
        }
    }

    ExactOutcome {
        solution: best,
        optimal: proven,
        nodes: search.nodes,
    }
}

enum Probe {
    Feasible(TdSolution),
    Infeasible,
    TimedOut,
}

struct Search<'a> {
    td: &'a TdInstance,
    deadline: Option<Instant>,
    nodes: u64,
    timed_out: bool,
    weights: Vec<u64>,
    residual: Vec<u64>,
    found: Option<TdSolution>,
    disjoint_bound: bool,
    symmetry_breaking: bool,
}

impl Search<'_> {
    fn probe(&mut self, k: u64) -> Probe {
        self.weights.iter_mut().for_each(|w| *w = 0);
        for c in 0..self.td.cycle_count() {
            self.residual[c] = self.td.deficit(c);
        }
        self.found = None;
        self.timed_out = false;
        self.dfs(k, 0);
        if self.timed_out {
            Probe::TimedOut
        } else if let Some(sol) = self.found.take() {
            Probe::Feasible(sol)
        } else {
            Probe::Infeasible
        }
    }

    /// Places one token at a time; `min_set` enforces non-decreasing set
    /// order while the same cycle stays first-uncovered.
    fn dfs(&mut self, k: u64, min_set: usize) -> bool {
        self.nodes += 1;
        if self.nodes.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                    return true; // unwind
                }
            }
        }

        // First uncovered cycle, preferring the original order (stable, so
        // the symmetry-breaking min_set survives across recursion levels).
        let Some(c) = (0..self.residual.len()).find(|&c| self.residual[c] > 0) else {
            self.found = Some(TdSolution {
                weights: self.weights.clone(),
            });
            return true;
        };
        if k == 0 {
            return false;
        }
        // Admissible pruning: remaining disjoint deficits must fit in k.
        if self.disjoint_bound && self.remaining_bound() > k {
            return false;
        }

        let covering: Vec<usize> = self.td.covering_sets(c).to_vec();
        for &s in covering.iter().filter(|&&s| s >= min_set) {
            self.weights[s] += 1;
            for &cc in self.td.set(s) {
                self.residual[cc] = self.residual[cc].saturating_sub(1);
            }
            // If cycle c still needs tokens, the next token must also serve
            // c: keep the non-decreasing order. Otherwise reset the floor.
            let next_min = if self.symmetry_breaking && self.residual[c] > 0 {
                s
            } else {
                0
            };
            let done = self.dfs(k - 1, next_min);
            self.weights[s] -= 1;
            for &cc in self.td.set(s) {
                // Restore residual, but never above the true deficit.
                let cap = self.td.deficit(cc);
                let cov: u64 = self
                    .td
                    .covering_sets(cc)
                    .iter()
                    .map(|&x| self.weights[x])
                    .sum();
                self.residual[cc] = cap.saturating_sub(cov);
            }
            if done {
                return true;
            }
        }
        false
    }

    /// Disjoint-cycle bound restricted to the still-uncovered residuals.
    fn remaining_bound(&self) -> u64 {
        let mut used = vec![false; self.td.set_count()];
        let mut bound = 0u64;
        for c in 0..self.residual.len() {
            if self.residual[c] == 0 {
                continue;
            }
            if self.td.covering_sets(c).iter().any(|&s| used[s]) {
                continue;
            }
            for &s in self.td.covering_sets(c) {
                used[s] = true;
            }
            bound += self.residual[c];
        }
        bound
    }
}

/// Brute-force optimal solver for cross-validation in tests: tries every
/// weight vector with totals `0..=max_total` (exponential; tiny instances
/// only).
pub fn brute_force_optimum(td: &TdInstance, max_total: u64) -> Option<TdSolution> {
    fn rec(
        td: &TdInstance,
        weights: &mut Vec<u64>,
        i: usize,
        left: u64,
        best: &mut Option<TdSolution>,
    ) {
        if let Some(b) = best {
            let spent: u64 = weights.iter().take(i).sum();
            if spent >= b.total() {
                return;
            }
        }
        if i == weights.len() {
            if td.is_feasible(weights) {
                let total: u64 = weights.iter().sum();
                if best.as_ref().is_none_or(|b| total < b.total()) {
                    *best = Some(TdSolution {
                        weights: weights.clone(),
                    });
                }
            }
            return;
        }
        for w in 0..=left {
            weights[i] = w;
            rec(td, weights, i + 1, left - w, best);
        }
        weights[i] = 0;
    }
    let mut best = None;
    let mut weights = vec![0u64; td.set_count()];
    rec(td, &mut weights, 0, max_total, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        let empty = TdInstance::new(vec![], vec![]);
        let out = exact_solve(&empty, None);
        assert!(out.optimal);
        assert_eq!(out.solution.total(), 0);

        let one = TdInstance::new(vec![2], vec![vec![0]]);
        let out = exact_solve(&one, None);
        assert!(out.optimal);
        assert_eq!(out.solution.total(), 2);
    }

    #[test]
    fn shared_set_optimal() {
        let td = TdInstance::new(vec![1, 1], vec![vec![0, 1], vec![0], vec![1]]);
        let out = exact_solve(&td, None);
        assert!(out.optimal);
        assert_eq!(out.solution.total(), 1);
        assert!(td.is_feasible(&out.solution.weights));
    }

    #[test]
    fn ring_of_cycles() {
        // 4 unit-deficit cycles in a ring of pairwise-overlapping sets:
        // optimal is 2 tokens (opposite sets).
        let td = TdInstance::new(
            vec![1, 1, 1, 1],
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]],
        );
        let out = exact_solve(&td, None);
        assert!(out.optimal);
        assert_eq!(out.solution.total(), 2);
    }

    #[test]
    fn exact_beats_or_matches_heuristic() {
        let td = TdInstance::new(
            vec![1, 2, 1, 1, 2],
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![4, 0],
                vec![0, 2, 4],
            ],
        );
        let h = heuristic_solve(&td);
        let e = exact_solve(&td, None);
        assert!(e.optimal);
        assert!(e.solution.total() <= h.total());
        assert!(td.is_feasible(&e.solution.weights));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let n_cycles = rng.gen_range(1..5);
            let n_sets = rng.gen_range(1..5);
            let deficits: Vec<u64> = (0..n_cycles).map(|_| rng.gen_range(0..3)).collect();
            let mut sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    (0..n_cycles)
                        .filter(|_| rng.gen_bool(0.6))
                        .collect::<Vec<_>>()
                })
                .collect();
            // Ensure every positive-deficit cycle is coverable.
            for (c, &d) in deficits.iter().enumerate() {
                if d > 0 && !sets.iter().any(|s| s.contains(&c)) {
                    sets[0].push(c);
                }
            }
            let td = TdInstance::new(deficits, sets);
            let e = exact_solve(&td, None);
            assert!(e.optimal, "trial {trial}");
            let bf = brute_force_optimum(&td, e.solution.total().max(6)).expect("feasible");
            assert_eq!(
                e.solution.total(),
                bf.total(),
                "trial {trial}: exact {:?} vs brute {:?} on {td:?}",
                e.solution,
                bf
            );
        }
    }

    #[test]
    fn timeout_returns_feasible_upper_bound() {
        // A hard-ish instance with an immediate deadline: must fall back to
        // the heuristic solution without claiming optimality... unless the
        // binary search finished before the first deadline check, which the
        // zero budget makes effectively impossible for this size.
        let n = 14;
        let deficits = vec![1u64; n];
        let sets: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        let td = TdInstance::new(deficits, sets);
        let out = exact_solve(&td, Some(Duration::from_nanos(1)));
        assert!(td.is_feasible(&out.solution.weights));
    }

    #[test]
    fn brute_force_none_when_budget_too_small() {
        let td = TdInstance::new(vec![3], vec![vec![0]]);
        assert!(brute_force_optimum(&td, 2).is_none());
        assert_eq!(brute_force_optimum(&td, 3).unwrap().total(), 3);
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn ring_instance(n: usize) -> TdInstance {
        let deficits = vec![1u64; n];
        let sets: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        TdInstance::new(deficits, sets)
    }

    #[test]
    fn disabling_optimizations_preserves_the_optimum() {
        for n in [4usize, 6, 8] {
            let td = ring_instance(n);
            let reference = exact_solve(&td, None);
            assert!(reference.optimal);
            for (bound, sym) in [(false, true), (true, false), (false, false)] {
                let out = exact_solve_with(
                    &td,
                    &ExactOptions {
                        budget: None,
                        disjoint_bound: bound,
                        symmetry_breaking: sym,
                    },
                );
                assert!(out.optimal, "n={n} bound={bound} sym={sym}");
                assert_eq!(
                    out.solution.total(),
                    reference.solution.total(),
                    "n={n} bound={bound} sym={sym}"
                );
            }
        }
    }

    #[test]
    fn optimizations_shrink_the_search_tree() {
        // An odd ring: the disjoint bound is one below the optimum, so the
        // binary search must run an infeasibility probe — the part of the
        // search the optimizations accelerate. (Even rings solve at the
        // bound with zero explored nodes.)
        let td = ring_instance(11);
        let with = exact_solve(&td, None);
        let without = exact_solve_with(
            &td,
            &ExactOptions {
                budget: None,
                disjoint_bound: false,
                symmetry_breaking: false,
            },
        );
        assert!(with.optimal && without.optimal);
        assert!(
            with.nodes < without.nodes,
            "optimized {} vs unoptimized {}",
            with.nodes,
            without.nodes
        );
    }
}
