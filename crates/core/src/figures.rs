//! The paper's running examples as ready-made systems and graphs.
//!
//! Every numbered figure of the paper that describes a concrete system is
//! reconstructed here so that tests, examples, and benchmarks can refer to
//! them by name. The closed-form throughput values quoted in the paper are
//! asserted in this module's tests.

use marked_graph::MarkedGraph;

use crate::system::{ChannelId, LisSystem};

/// Fig. 1 / Fig. 2 (left): cores `A` and `B`, two channels from `A` to `B`,
/// the upper one pipelined by a relay station.
///
/// Returns the system plus the `(upper, lower)` channel ids. The ideal MST is
/// 1; with backpressure and `q = 1` it degrades to 2/3 (Fig. 5); enlarging
/// the lower queue to 2 restores it (Fig. 6).
///
/// # Examples
///
/// ```
/// use lis_core::{figures, practical_mst};
/// use marked_graph::Ratio;
///
/// let (sys, _, _) = figures::fig1();
/// assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
/// ```
pub fn fig1() -> (LisSystem, ChannelId, ChannelId) {
    let mut sys = LisSystem::new();
    let a = sys.add_block("A");
    let b = sys.add_block("B");
    let upper = sys.add_channel(a, b);
    let lower = sys.add_channel(a, b);
    sys.add_relay_station(upper);
    (sys, upper, lower)
}

/// Fig. 2 (right): the Fig. 1 system with an additional relay station on the
/// lower channel, equalizing the two paths so that `B` receives data from
/// both at the same time. The practical MST returns to 1.
pub fn fig2_right() -> (LisSystem, ChannelId, ChannelId) {
    let (mut sys, upper, lower) = fig1();
    sys.add_relay_station(lower);
    (sys, upper, lower)
}

/// Fig. 6: the Fig. 1 system with the lower-channel queue of `B` enlarged to
/// two — the queue-sizing fix for the Fig. 5 degradation.
pub fn fig6() -> (LisSystem, ChannelId, ChannelId) {
    let (mut sys, upper, lower) = fig1();
    sys.set_queue_capacity(lower, 2)
        .expect("capacity 2 is valid");
    (sys, upper, lower)
}

/// Fig. 10: the standalone cycle with six places and five tokens that pins
/// the ideal MST of the NP-completeness construction to 5/6.
///
/// # Examples
///
/// ```
/// use lis_core::{figures, mst};
/// use marked_graph::Ratio;
///
/// assert_eq!(mst(&figures::fig10()), Ratio::new(5, 6));
/// ```
pub fn fig10() -> MarkedGraph {
    let mut g = MarkedGraph::new();
    let ts: Vec<_> = (0..6).map(|i| g.add_transition(format!("u{i}"))).collect();
    for i in 0..6 {
        // Five tokens over six places: leave exactly one place empty.
        g.add_place(ts[i], ts[(i + 1) % 6], u64::from(i != 5));
    }
    g
}

/// Fig. 15: the counterexample LIS whose MST degradation **cannot** be fixed
/// by relay-station insertion alone.
///
/// Blocks `A, B, C, D, E`; channels `A→E` (with one relay station), `E→D`,
/// `D→C`, `C→B`, `B→A`, `A→C`, `C→E`. The ideal MST is 5/6, set by the big
/// loop through the relay station; with backpressure and `q = 1`, the cycle
/// `{A, rs, E, C̄, Ā}` (backedges on the last two hops) drops the MST to 3/4.
/// Any relay station added on `(A,C)` or `(C,E)` lowers the *ideal* MST to
/// 3/4 because those edges sit on three- and four-place cycles.
///
/// Returns the system plus the channel ids in the order
/// `[A→E, E→D, D→C, C→B, B→A, A→C, C→E]`.
///
/// # Examples
///
/// ```
/// use lis_core::{figures, ideal_mst, practical_mst};
/// use marked_graph::Ratio;
///
/// let (sys, _) = figures::fig15();
/// assert_eq!(ideal_mst(&sys), Ratio::new(5, 6));
/// assert_eq!(practical_mst(&sys), Ratio::new(3, 4));
/// ```
pub fn fig15() -> (LisSystem, [ChannelId; 7]) {
    let mut sys = LisSystem::new();
    let a = sys.add_block("A");
    let b = sys.add_block("B");
    let c = sys.add_block("C");
    let d = sys.add_block("D");
    let e = sys.add_block("E");
    let ae = sys.add_channel(a, e);
    let ed = sys.add_channel(e, d);
    let dc = sys.add_channel(d, c);
    let cb = sys.add_channel(c, b);
    let ba = sys.add_channel(b, a);
    let ac = sys.add_channel(a, c);
    let ce = sys.add_channel(c, e);
    sys.add_relay_station(ae);
    (sys, [ae, ed, dc, cb, ba, ac, ce])
}

/// The Section VIII-B family showing that **no** fixed queue size works for
/// every topology: the Fig. 1 system with `extra` additional relay stations
/// stacked on the upper channel. With `k = extra + 1` total stations, the
/// practical MST under uniform queues of size `q` stays below 1 whenever
/// `q ≤ k`, and exactly `q = k + 1` restores it ("take Fig. 2 and add
/// `q − 1` more relay stations to the upper channel").
///
/// # Examples
///
/// ```
/// use lis_core::{figures, fixed_q_preserves_mst};
///
/// let sys = figures::fig2_family(3); // 4 stations on the upper channel
/// assert!(!fixed_q_preserves_mst(&sys, 4));
/// assert!(fixed_q_preserves_mst(&sys, 5));
/// ```
pub fn fig2_family(extra: u32) -> LisSystem {
    let (mut sys, upper, _) = fig1();
    for _ in 0..extra {
        sys.add_relay_station(upper);
    }
    sys
}

/// The uplink/downlink throughput-mismatch example from the introduction: an
/// uplink SCC with MST 3/4 feeding a downlink SCC with MST 2/3. Only
/// backpressure (or infinite queues) keeps the composition safe.
///
/// Returns the system plus the bridging channel.
pub fn uplink_downlink() -> (LisSystem, ChannelId) {
    let mut sys = LisSystem::new();
    // Uplink: ring of 2 blocks + 1 relay station on the return channel:
    // cycle tokens 3 (two forward places with tokens... ) — build a ring of
    // 3 blocks with one relay station: 3 tokens / 4 places = 3/4.
    let u0 = sys.add_block("u0");
    let u1 = sys.add_block("u1");
    let u2 = sys.add_block("u2");
    sys.add_channel(u0, u1);
    sys.add_channel(u1, u2);
    let ur = sys.add_channel(u2, u0);
    sys.add_relay_station(ur);
    // Downlink: ring of 2 blocks with one relay station: 2 tokens / 3 places.
    let d0 = sys.add_block("d0");
    let d1 = sys.add_block("d1");
    sys.add_channel(d0, d1);
    let dr = sys.add_channel(d1, d0);
    sys.add_relay_station(dr);
    // Bridge.
    let bridge = sys.add_channel(u1, d0);
    (sys, bridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{ideal_mst, mst, practical_mst};
    use crate::topology::{classify, TopologyClass};
    use marked_graph::Ratio;

    #[test]
    fn fig1_numbers() {
        let (sys, upper, lower) = fig1();
        assert_eq!(sys.relay_stations_on(upper), 1);
        assert_eq!(sys.relay_stations_on(lower), 0);
        assert_eq!(ideal_mst(&sys), Ratio::ONE);
        assert_eq!(practical_mst(&sys), Ratio::new(2, 3));
    }

    #[test]
    fn fig2_right_equalization_restores_mst() {
        let (sys, _, _) = fig2_right();
        assert_eq!(ideal_mst(&sys), Ratio::ONE);
        assert_eq!(practical_mst(&sys), Ratio::ONE);
    }

    #[test]
    fn fig6_queue_sizing_restores_mst() {
        let (sys, _, _) = fig6();
        assert_eq!(practical_mst(&sys), Ratio::ONE);
        // Queue sizing spends one extra token; path equalization spends one
        // relay station. Both reach MST 1 (the paper's point in Sec. VI).
        assert_eq!(sys.total_queue_capacity(), 3);
    }

    #[test]
    fn fig10_limit_cycle() {
        let g = fig10();
        assert_eq!(mst(&g), Ratio::new(5, 6));
        assert_eq!(g.place_count(), 6);
        assert_eq!(g.total_tokens(), 5);
    }

    #[test]
    fn fig15_numbers() {
        let (sys, _) = fig15();
        assert_eq!(classify(&sys), TopologyClass::General);
        assert_eq!(ideal_mst(&sys), Ratio::new(5, 6));
        assert_eq!(practical_mst(&sys), Ratio::new(3, 4));
    }

    #[test]
    fn fig15_relay_station_on_ac_or_ce_hurts_ideal_mst() {
        // Paper Sec. VI: inserting on (A,C) makes {A, rs, C, B, A} a 3/4
        // cycle; inserting on (C,E) makes {C, rs, E, D, C} a 3/4 cycle.
        let (sys, ch) = fig15();
        let ac = ch[5];
        let ce = ch[6];
        for edge in [ac, ce] {
            let mut s = sys.clone();
            s.add_relay_station(edge);
            assert_eq!(ideal_mst(&s), Ratio::new(3, 4), "edge {edge:?}");
        }
    }

    #[test]
    fn fig15_queue_sizing_does_fix_it() {
        // QS can always recover the ideal MST; for Fig. 15 grow the queues
        // on the two backedges of the offending cycle.
        let (mut sys, ch) = fig15();
        let ac = ch[5];
        let ce = ch[6];
        sys.set_queue_capacity(ac, 2).unwrap();
        sys.set_queue_capacity(ce, 2).unwrap();
        assert_eq!(practical_mst(&sys), Ratio::new(5, 6));
    }

    #[test]
    fn fig2_family_defeats_any_fixed_q() {
        // Section VIII-B: for every q there is a topology where uniform
        // queues of size q fail; q = stations + 1 is both necessary and
        // sufficient for this family.
        for extra in 0..4u32 {
            let sys = fig2_family(extra);
            let stations = extra + 1;
            for q in 1..=stations as u64 {
                assert!(
                    !crate::topology::fixed_q_preserves_mst(&sys, q),
                    "extra={extra} q={q} unexpectedly sufficient"
                );
            }
            assert!(crate::topology::fixed_q_preserves_mst(
                &sys,
                stations as u64 + 1
            ));
        }
    }

    #[test]
    fn uplink_downlink_throughputs() {
        let (sys, _) = uplink_downlink();
        // ideal MST = min(3/4, 2/3) = 2/3 per the SCC-wise definition.
        assert_eq!(ideal_mst(&sys), Ratio::new(2, 3));
    }
}
