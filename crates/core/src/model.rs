//! Translation of a [`LisSystem`] netlist into marked graphs.
//!
//! Two models are produced, mirroring Section III of the paper:
//!
//! * the **ideal** model `G` — forward edges only, equivalent to assuming
//!   infinite queues and no backpressure;
//! * the **doubled** model `d[G]` — every forward edge gets a *backedge*
//!   carrying tokens equal to the free slots of the consumer's buffer
//!   (queue capacity `q` for shells, 2 for relay stations), modeling
//!   backpressure with finite queues.
//!
//! Initial marking convention (paper Fig. 3): a forward place holds one
//! token iff its **target** is a shell (shells fire in the first clock
//! period; a relay station emits τ first, so its incoming place is empty).
//! This makes every edge/backedge two-cycle hold at least two tokens, as the
//! paper notes.

use marked_graph::{MarkedGraph, PlaceId, TransitionId};

use crate::system::{BlockId, ChannelId, LisSystem};

/// [`LisModel::place_role`] bit: the place is a forward edge.
const ROLE_FORWARD: u8 = 1;
/// [`LisModel::place_role`] bit: the place is a backedge.
const ROLE_BACKWARD: u8 = 2;

/// Which model a [`LisModel`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Forward edges only (infinite queues, no backpressure).
    Ideal,
    /// Forward edges plus backedges (finite queues with backpressure).
    Doubled,
}

/// A marked-graph model of a [`LisSystem`], with the bookkeeping needed to
/// map analysis results (places, transitions) back to netlist entities
/// (blocks, channels, queues).
///
/// # Examples
///
/// ```
/// use lis_core::{LisModel, LisSystem};
///
/// let mut sys = LisSystem::new();
/// let a = sys.add_block("A");
/// let b = sys.add_block("B");
/// let upper = sys.add_channel(a, b);
/// sys.add_channel(a, b);
/// sys.add_relay_station(upper);
///
/// let ideal = LisModel::ideal(&sys);
/// // A, B, and one relay-station transition.
/// assert_eq!(ideal.graph().transition_count(), 3);
/// // Two channels, one carrying a relay station: three forward places.
/// assert_eq!(ideal.graph().place_count(), 3);
///
/// let doubled = LisModel::doubled(&sys);
/// assert_eq!(doubled.graph().place_count(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct LisModel {
    graph: MarkedGraph,
    kind: ModelKind,
    block_transition: Vec<TransitionId>,
    /// Forward places per channel, ordered producer → consumer.
    channel_forward: Vec<Vec<PlaceId>>,
    /// Backedges per channel, `channel_backward[c][i]` pairing with
    /// `channel_forward[c][i]`. Empty in the ideal model.
    channel_backward: Vec<Vec<PlaceId>>,
    /// The adjustable shell-queue backedge per channel (the one entering the
    /// consumer shell's input queue). `None` in the ideal model.
    queue_backedge: Vec<Option<PlaceId>>,
    /// Relay-station transitions per channel, ordered producer → consumer.
    relay_transitions: Vec<Vec<TransitionId>>,
    /// Per-place role flags, indexed by `PlaceId::index()`: bit 0 = forward
    /// edge, bit 1 = backedge. Critical-cycle descriptions query the role of
    /// every hop, so this must not be a per-channel scan.
    place_role: Vec<u8>,
    /// Per-place owner channel of adjustable queue backedges, indexed by
    /// `PlaceId::index()` (`None` for every other place).
    queue_channel: Vec<Option<ChannelId>>,
}

impl LisModel {
    /// Builds the ideal model `G` (no backpressure).
    pub fn ideal(sys: &LisSystem) -> LisModel {
        LisModel::build(sys, ModelKind::Ideal)
    }

    /// Builds the doubled model `d[G]` (backpressure with the system's
    /// current queue capacities).
    pub fn doubled(sys: &LisSystem) -> LisModel {
        LisModel::build(sys, ModelKind::Doubled)
    }

    fn build(sys: &LisSystem, kind: ModelKind) -> LisModel {
        let mut graph = MarkedGraph::new();
        let block_transition: Vec<TransitionId> = sys
            .block_ids()
            .map(|b| graph.add_transition(sys.block_name(b)))
            .collect();

        let n_channels = sys.channel_count();
        let mut channel_forward = vec![Vec::new(); n_channels];
        let mut channel_backward = vec![Vec::new(); n_channels];
        let mut queue_backedge = vec![None; n_channels];
        let mut relay_transitions = vec![Vec::new(); n_channels];

        for c in sys.channel_ids() {
            let from = block_transition[sys.channel_from(c).index()];
            let to = block_transition[sys.channel_to(c).index()];
            let rs_count = sys.relay_stations_on(c);
            let q = sys.queue_capacity(c);

            // Chain of hops: from -> rs_1 -> ... -> rs_k -> to.
            let mut hops = vec![from];
            for i in 0..rs_count {
                let rs = graph.add_transition(format!(
                    "rs{}({}->{})",
                    i + 1,
                    sys.block_name(sys.channel_from(c)),
                    sys.block_name(sys.channel_to(c))
                ));
                relay_transitions[c.index()].push(rs);
                hops.push(rs);
            }
            hops.push(to);

            for w in 0..hops.len() - 1 {
                let (src, dst) = (hops[w], hops[w + 1]);
                let dst_is_shell = w + 1 == hops.len() - 1;
                // Forward place: one token iff the target fires in the first
                // period — it is a shell whose output latch is initialized.
                // (Uninitialized shells, like relay stations, emit void
                // first and hold no incoming token.)
                let fwd_tokens = u64::from(dst_is_shell && sys.is_initialized(sys.channel_to(c)));
                let fwd = graph.add_place(src, dst, fwd_tokens);
                channel_forward[c.index()].push(fwd);
                if kind == ModelKind::Doubled {
                    // Backedge: free slots of the consumer's buffer.
                    let back_tokens = if dst_is_shell { q } else { 2 };
                    let back = graph.add_place(dst, src, back_tokens);
                    channel_backward[c.index()].push(back);
                    if dst_is_shell {
                        queue_backedge[c.index()] = Some(back);
                    }
                }
            }
        }

        let mut place_role = vec![0u8; graph.place_count()];
        for places in &channel_forward {
            for p in places {
                place_role[p.index()] |= ROLE_FORWARD;
            }
        }
        for places in &channel_backward {
            for p in places {
                place_role[p.index()] |= ROLE_BACKWARD;
            }
        }
        let mut queue_channel = vec![None; graph.place_count()];
        for (i, p) in queue_backedge.iter().enumerate() {
            if let Some(p) = p {
                queue_channel[p.index()] = Some(ChannelId::new(i));
            }
        }

        LisModel {
            graph,
            kind,
            block_transition,
            channel_forward,
            channel_backward,
            queue_backedge,
            relay_transitions,
            place_role,
            queue_channel,
        }
    }

    /// The underlying marked graph.
    pub fn graph(&self) -> &MarkedGraph {
        &self.graph
    }

    /// Mutable access to the underlying marked graph (queue sizing adds
    /// tokens to backedges through this).
    pub fn graph_mut(&mut self) -> &mut MarkedGraph {
        &mut self.graph
    }

    /// Consumes the model, returning the marked graph.
    pub fn into_graph(self) -> MarkedGraph {
        self.graph
    }

    /// Which model this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The transition modeling a block's shell.
    pub fn block_transition(&self, b: BlockId) -> TransitionId {
        self.block_transition[b.index()]
    }

    /// The relay-station transitions on a channel, producer → consumer order.
    pub fn relay_transitions(&self, c: ChannelId) -> &[TransitionId] {
        &self.relay_transitions[c.index()]
    }

    /// The forward places of a channel, producer → consumer order.
    pub fn forward_places(&self, c: ChannelId) -> &[PlaceId] {
        &self.channel_forward[c.index()]
    }

    /// The backedges of a channel (empty in the ideal model), index-paired
    /// with [`forward_places`](LisModel::forward_places).
    pub fn backward_places(&self, c: ChannelId) -> &[PlaceId] {
        &self.channel_backward[c.index()]
    }

    /// The adjustable shell-queue backedge of a channel (`None` in the ideal
    /// model). Adding tokens here is equivalent to enlarging the consumer
    /// shell's input queue for this channel.
    pub fn queue_backedge(&self, c: ChannelId) -> Option<PlaceId> {
        self.queue_backedge[c.index()]
    }

    /// All adjustable backedges as `(channel, place)` pairs.
    pub fn adjustable_backedges(&self) -> Vec<(ChannelId, PlaceId)> {
        self.queue_backedge
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (ChannelId::new(i), p)))
            .collect()
    }

    /// Maps an adjustable backedge place back to its channel.
    pub fn channel_of_queue_backedge(&self, p: PlaceId) -> Option<ChannelId> {
        self.queue_channel.get(p.index()).copied().flatten()
    }

    /// Whether a place is a backedge (of any kind).
    pub fn is_backedge(&self, p: PlaceId) -> bool {
        self.place_role.get(p.index()).copied().unwrap_or(0) & ROLE_BACKWARD != 0
    }

    /// Whether a place is a forward edge.
    pub fn is_forward(&self, p: PlaceId) -> bool {
        self.place_role.get(p.index()).copied().unwrap_or(0) & ROLE_FORWARD != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marked_graph::Ratio;

    /// Fig. 1/2 of the paper: A feeds B over two channels, the upper one
    /// pipelined by one relay station.
    fn fig1() -> (LisSystem, ChannelId, ChannelId) {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let upper = sys.add_channel(a, b);
        let lower = sys.add_channel(a, b);
        sys.add_relay_station(upper);
        (sys, upper, lower)
    }

    #[test]
    fn ideal_model_shape() {
        let (sys, upper, lower) = fig1();
        let m = LisModel::ideal(&sys);
        assert_eq!(m.kind(), ModelKind::Ideal);
        assert_eq!(m.graph().transition_count(), 3);
        assert_eq!(m.graph().place_count(), 3);
        assert_eq!(m.forward_places(upper).len(), 2);
        assert_eq!(m.forward_places(lower).len(), 1);
        assert!(m.backward_places(upper).is_empty());
        assert!(m.queue_backedge(upper).is_none());
        assert_eq!(m.relay_transitions(upper).len(), 1);
        assert!(m.relay_transitions(lower).is_empty());
    }

    #[test]
    fn initial_marking_convention() {
        let (sys, upper, lower) = fig1();
        let m = LisModel::ideal(&sys);
        let g = m.graph();
        // Place entering the relay station: no token; entering shell B: one.
        let up = m.forward_places(upper);
        assert_eq!(g.tokens(up[0]), 0);
        assert_eq!(g.tokens(up[1]), 1);
        assert_eq!(g.tokens(m.forward_places(lower)[0]), 1);
    }

    #[test]
    fn doubled_model_backedges() {
        let (sys, upper, lower) = fig1();
        let m = LisModel::doubled(&sys);
        let g = m.graph();
        assert_eq!(g.place_count(), 6);
        let back_up = m.backward_places(upper);
        // Backedge into the producer side of the relay-station hop: 2 slots.
        assert_eq!(g.tokens(back_up[0]), 2);
        // Backedge for B's queue on the upper channel: q = 1.
        assert_eq!(g.tokens(back_up[1]), 1);
        assert_eq!(m.queue_backedge(upper), Some(back_up[1]));
        assert_eq!(m.queue_backedge(lower), Some(m.backward_places(lower)[0]));
        assert_eq!(m.adjustable_backedges().len(), 2);
        assert_eq!(m.channel_of_queue_backedge(back_up[1]), Some(upper));
        assert_eq!(m.channel_of_queue_backedge(back_up[0]), None);
        assert!(m.is_backedge(back_up[0]));
        assert!(!m.is_forward(back_up[0]));
        assert!(m.is_forward(m.forward_places(lower)[0]));
    }

    #[test]
    fn edge_backedge_two_cycles_have_two_tokens() {
        // Paper, Section IV: cycles between an edge and its backedge always
        // have at least two tokens by construction.
        let (sys, _, _) = fig1();
        let m = LisModel::doubled(&sys);
        let g = m.graph();
        for c in sys.channel_ids() {
            for (f, b) in m.forward_places(c).iter().zip(m.backward_places(c).iter()) {
                assert!(g.tokens(*f) + g.tokens(*b) >= 2);
            }
        }
    }

    #[test]
    fn fig5_critical_cycle_mean() {
        // The doubled Fig. 2 graph with q = 1 has MST 2/3 (paper Fig. 5).
        let (sys, _, _) = fig1();
        let m = LisModel::doubled(&sys);
        let mcm = marked_graph::mcm::minimum_cycle_mean(m.graph()).unwrap();
        assert_eq!(mcm.mean, Ratio::new(2, 3));
    }

    #[test]
    fn fig6_queue_sizing_restores_throughput() {
        // Growing B's lower-channel queue to 2 restores MST 1 (paper Fig. 6).
        let (mut sys, _, lower) = fig1();
        sys.set_queue_capacity(lower, 2).unwrap();
        let m = LisModel::doubled(&sys);
        let mcm = marked_graph::mcm::minimum_cycle_mean(m.graph()).unwrap();
        assert!(mcm.mean >= Ratio::ONE);
    }

    #[test]
    fn queue_capacity_reflected_in_backedge_tokens() {
        let (mut sys, upper, _) = fig1();
        sys.set_queue_capacity(upper, 7).unwrap();
        let m = LisModel::doubled(&sys);
        let back = m.queue_backedge(upper).unwrap();
        assert_eq!(m.graph().tokens(back), 7);
    }

    #[test]
    fn multi_relay_station_chain() {
        let mut sys = LisSystem::new();
        let a = sys.add_block("A");
        let b = sys.add_block("B");
        let c = sys.add_channel(a, b);
        sys.add_relay_station(c);
        sys.add_relay_station(c);
        sys.add_relay_station(c);
        let m = LisModel::doubled(&sys);
        let g = m.graph();
        assert_eq!(m.relay_transitions(c).len(), 3);
        assert_eq!(m.forward_places(c).len(), 4);
        // tokens: 0 (into rs1), 0 (into rs2), 0 (into rs3), 1 (into B)
        let fwd: Vec<u64> = m.forward_places(c).iter().map(|&p| g.tokens(p)).collect();
        assert_eq!(fwd, vec![0, 0, 0, 1]);
        let back: Vec<u64> = m.backward_places(c).iter().map(|&p| g.tokens(p)).collect();
        assert_eq!(back, vec![2, 2, 2, 1]);
        // The whole channel ring holds 3 rs * 2 + 1 + 1 = ... check its mean:
        // forward+backward cycle through the full chain has 4+4 places.
        assert!(g.check_live().is_ok());
    }

    #[test]
    fn block_transition_mapping() {
        let (sys, _, _) = fig1();
        let m = LisModel::ideal(&sys);
        let a = sys.block_by_name("A").unwrap();
        assert_eq!(m.graph().transition_name(m.block_transition(a)), "A");
    }

    #[test]
    fn into_graph_and_graph_mut() {
        let (sys, upper, _) = fig1();
        let mut m = LisModel::doubled(&sys);
        let back = m.queue_backedge(upper).unwrap();
        m.graph_mut().add_tokens(back, 1);
        let g = m.into_graph();
        assert_eq!(g.tokens(back), 2);
    }
}
