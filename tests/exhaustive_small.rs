//! Exhaustive verification over *all* small systems: every directed graph
//! on three blocks with up to three channels and at most one relay station
//! per channel (232 systems). On each one:
//!
//! * `θ(d[G]) ≤ θ(G)` (backpressure never helps);
//! * the exact QS solution verifies and the heuristic's never beats it;
//! * the conservative uniform queue `q = r + 1` restores the ideal MST;
//! * on the degraded ones, both simulators sustain the analytic rate.

use lis::core::{conservative_fixed_q, fixed_q_preserves_mst, ideal_mst, practical_mst, LisSystem};
use lis::qs::{solve, verify_solution, Algorithm, QsConfig};
use lis::sim::{CoreModel, LisSimulator, Passthrough, QueueMode, RtlSimulator};

fn all_small_systems() -> Vec<LisSystem> {
    let pairs: Vec<(usize, usize)> = (0..3)
        .flat_map(|u| (0..3).map(move |v| (u, v)))
        .filter(|&(u, v)| u != v)
        .collect(); // 6 ordered pairs
    let mut out = Vec::new();
    // Choose 1..=3 distinct pairs, each with rs in {0, 1}.
    for a in 0..pairs.len() {
        for rs_mask in 0..(1 << 1) {
            out.push(build(&[(pairs[a], rs_mask & 1 == 1)]));
        }
        for b in a + 1..pairs.len() {
            for rs_mask in 0..(1 << 2) {
                out.push(build(&[
                    (pairs[a], rs_mask & 1 == 1),
                    (pairs[b], rs_mask & 2 == 2),
                ]));
            }
            for c in b + 1..pairs.len() {
                for rs_mask in 0..(1 << 3) {
                    out.push(build(&[
                        (pairs[a], rs_mask & 1 == 1),
                        (pairs[b], rs_mask & 2 == 2),
                        (pairs[c], rs_mask & 4 == 4),
                    ]));
                }
            }
        }
    }
    out
}

fn build(channels: &[((usize, usize), bool)]) -> LisSystem {
    let mut sys = LisSystem::new();
    let blocks: Vec<_> = (0..3).map(|i| sys.add_block(format!("b{i}"))).collect();
    for &((u, v), rs) in channels {
        let c = sys.add_channel(blocks[u], blocks[v]);
        if rs {
            sys.add_relay_station(c);
        }
    }
    sys
}

fn passthrough_cores(sys: &LisSystem) -> Vec<Box<dyn CoreModel>> {
    sys.block_ids()
        .map(|b| {
            let outs = sys
                .channel_ids()
                .filter(|&c| sys.channel_from(c) == b)
                .count();
            Box::new(Passthrough::new(outs, 0)) as Box<dyn CoreModel>
        })
        .collect()
}

#[test]
fn analysis_invariants_hold_on_every_small_system() {
    let systems = all_small_systems();
    assert_eq!(systems.len(), 232, "6 pairs: 12 + 60 + 160 systems");
    for (i, sys) in systems.iter().enumerate() {
        let ideal = ideal_mst(sys);
        let practical = practical_mst(sys);
        assert!(practical <= ideal, "#{i}: {practical} > {ideal}\n{sys}");

        let exact = solve(sys, Algorithm::Exact, &QsConfig::default())
            .unwrap_or_else(|e| panic!("#{i}: {e}\n{sys}"));
        assert!(exact.optimal, "#{i}");
        assert!(verify_solution(sys, &exact), "#{i}\n{sys}");
        let heur = solve(sys, Algorithm::Heuristic, &QsConfig::default()).expect("bounded");
        assert!(verify_solution(sys, &heur), "#{i}\n{sys}");
        assert!(heur.total_extra >= exact.total_extra, "#{i}");
        if practical == ideal {
            assert_eq!(exact.total_extra, 0, "#{i}: spent tokens needlessly");
        } else {
            assert!(exact.total_extra > 0, "#{i}");
        }

        let q = conservative_fixed_q(sys);
        assert!(fixed_q_preserves_mst(sys, q), "#{i}: q = {q} insufficient");
    }
}

#[test]
fn simulators_sustain_the_analytic_rate_on_every_degraded_small_system() {
    // Restrict to the degraded systems (the interesting dynamics) to keep
    // the runtime reasonable; connectivity makes the global MST the right
    // per-block expectation only when the doubled graph is strongly
    // connected, which degraded three-block systems here are.
    let mut checked = 0;
    for sys in all_small_systems() {
        if practical_mst(&sys) >= ideal_mst(&sys) {
            continue;
        }
        let analytic = practical_mst(&sys).to_f64();
        let mut mg = LisSimulator::new(&sys, passthrough_cores(&sys), QueueMode::Finite);
        mg.run(1500);
        let mut rtl = RtlSimulator::new(&sys, passthrough_cores(&sys));
        rtl.run(1500);
        for b in sys.block_ids() {
            let m = mg.throughput(b).to_f64();
            let r = rtl.throughput(b).to_f64();
            assert!((m - r).abs() < 0.03, "{b:?}: mg {m} vs rtl {r}\n{sys}");
            assert!(
                m >= analytic - 0.03,
                "{b:?}: mg {m} below {analytic}\n{sys}"
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "too few degraded systems: {checked}");
}
